//! Convolution support: zero/reflection padding, `im2col`/`col2im` and a
//! direct reference conv2d used by the `gld-nn` layers and their tests.
//!
//! Layout convention is NCHW: `[batch, channels, height, width]`.

use crate::tensor::{matmul_block, Tensor};
use rayon::prelude::*;

/// Convolution geometry: kernel size, stride and symmetric zero padding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride along height and width.
    pub stride: usize,
    /// Symmetric zero padding along height and width.
    pub pad: usize,
}

impl Conv2dGeometry {
    /// Creates a square-kernel geometry.
    pub fn new(k: usize, stride: usize, pad: usize) -> Self {
        Conv2dGeometry {
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// Output spatial size for an input of `h × w`.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.kh) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.kw) / self.stride + 1;
        (oh, ow)
    }
}

/// Pads an NCHW tensor with zeros by `pad` on each spatial side.
pub fn pad2d_zero(x: &Tensor, pad: usize) -> Tensor {
    if pad == 0 {
        return x.clone();
    }
    let (b, c, h, w) = nchw(x);
    let mut out = Tensor::zeros(&[b, c, h + 2 * pad, w + 2 * pad]);
    let ow = w + 2 * pad;
    let src = x.data();
    let dst = out.data_mut();
    for bi in 0..b {
        for ci in 0..c {
            for hi in 0..h {
                let s = ((bi * c + ci) * h + hi) * w;
                let d = ((bi * c + ci) * (h + 2 * pad) + hi + pad) * ow + pad;
                dst[d..d + w].copy_from_slice(&src[s..s + w]);
            }
        }
    }
    out
}

/// Pads an NCHW tensor by reflection (mirror without repeating the edge),
/// matching the paper's treatment of datasets whose spatial extent is smaller
/// than the training patch.
pub fn pad2d_reflect(x: &Tensor, pad: usize) -> Tensor {
    if pad == 0 {
        return x.clone();
    }
    let (b, c, h, w) = nchw(x);
    assert!(
        pad < h && pad < w,
        "reflection pad {pad} must be smaller than the spatial extent {h}x{w}"
    );
    let oh = h + 2 * pad;
    let ow = w + 2 * pad;
    let mut out = Tensor::zeros(&[b, c, oh, ow]);
    let reflect = |i: isize, n: usize| -> usize {
        let n = n as isize;
        let mut i = i;
        if i < 0 {
            i = -i;
        }
        if i >= n {
            i = 2 * (n - 1) - i;
        }
        i as usize
    };
    let src = x.data();
    let dst = out.data_mut();
    for bi in 0..b {
        for ci in 0..c {
            for hi in 0..oh {
                let sh = reflect(hi as isize - pad as isize, h);
                for wi in 0..ow {
                    let sw = reflect(wi as isize - pad as isize, w);
                    dst[((bi * c + ci) * oh + hi) * ow + wi] =
                        src[((bi * c + ci) * h + sh) * w + sw];
                }
            }
        }
    }
    out
}

/// Unfolds an NCHW tensor into column form for convolution-as-matmul.
///
/// Output shape: `[b, c*kh*kw, oh*ow]`.
pub fn im2col(x: &Tensor, geom: Conv2dGeometry) -> Tensor {
    let (b, c, h, w) = nchw(x);
    let (oh, ow) = geom.output_size(h, w);
    let cols = c * geom.kh * geom.kw;
    let mut out = vec![0.0f32; b * cols * oh * ow];
    let src = x.data();
    let pad = geom.pad as isize;
    out.par_chunks_mut(cols * oh * ow)
        .enumerate()
        .for_each(|(bi, chunk)| {
            for ci in 0..c {
                for khi in 0..geom.kh {
                    for kwi in 0..geom.kw {
                        let row = (ci * geom.kh + khi) * geom.kw + kwi;
                        for ohi in 0..oh {
                            let ih = (ohi * geom.stride) as isize + khi as isize - pad;
                            for owi in 0..ow {
                                let iw = (owi * geom.stride) as isize + kwi as isize - pad;
                                let v =
                                    if ih >= 0 && iw >= 0 && (ih as usize) < h && (iw as usize) < w
                                    {
                                        src[((bi * c + ci) * h + ih as usize) * w + iw as usize]
                                    } else {
                                        0.0
                                    };
                                chunk[row * oh * ow + ohi * ow + owi] = v;
                            }
                        }
                    }
                }
            }
        });
    Tensor::from_vec(out, &[b, cols, oh * ow])
}

/// Folds column form back into an NCHW tensor, accumulating overlaps.
/// This is the adjoint of [`im2col`] and is used in the convolution backward
/// pass with respect to the input.
pub fn col2im(cols: &Tensor, geom: Conv2dGeometry, c: usize, h: usize, w: usize) -> Tensor {
    let b = cols.dim(0);
    let (oh, ow) = geom.output_size(h, w);
    assert_eq!(
        cols.dim(1),
        c * geom.kh * geom.kw,
        "col2im channel mismatch"
    );
    assert_eq!(cols.dim(2), oh * ow, "col2im spatial mismatch");
    let mut out = vec![0.0f32; b * c * h * w];
    let src = cols.data();
    let pad = geom.pad as isize;
    out.par_chunks_mut(c * h * w)
        .enumerate()
        .for_each(|(bi, chunk)| {
            let base = bi * (c * geom.kh * geom.kw) * oh * ow;
            for ci in 0..c {
                for khi in 0..geom.kh {
                    for kwi in 0..geom.kw {
                        let row = (ci * geom.kh + khi) * geom.kw + kwi;
                        for ohi in 0..oh {
                            let ih = (ohi * geom.stride) as isize + khi as isize - pad;
                            if ih < 0 || ih as usize >= h {
                                continue;
                            }
                            for owi in 0..ow {
                                let iw = (owi * geom.stride) as isize + kwi as isize - pad;
                                if iw < 0 || iw as usize >= w {
                                    continue;
                                }
                                chunk[(ci * h + ih as usize) * w + iw as usize] +=
                                    src[base + row * oh * ow + ohi * ow + owi];
                            }
                        }
                    }
                }
            }
        });
    Tensor::from_vec(out, &[b, c, h, w])
}

/// Reference convolution: NCHW input, `[out_c, in_c, kh, kw]` weight, bias of
/// length `out_c`.  Implemented via im2col + matmul; this is both the
/// production path used by `gld-nn` and the reference for its tests.
pub fn conv2d(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>, geom: Conv2dGeometry) -> Tensor {
    let (b, c, h, w) = nchw(x);
    assert_eq!(
        weight.rank(),
        4,
        "conv2d weight must be [out_c, in_c, kh, kw]"
    );
    let out_c = weight.dim(0);
    assert_eq!(weight.dim(1), c, "conv2d weight in-channel mismatch");
    assert_eq!(weight.dim(2), geom.kh, "conv2d kernel height mismatch");
    assert_eq!(weight.dim(3), geom.kw, "conv2d kernel width mismatch");
    let (oh, ow) = geom.output_size(h, w);
    let cols = im2col(x, geom); // [b, c*kh*kw, oh*ow]
    let k = c * geom.kh * geom.kw;
    let n = oh * ow;
    let wmat = weight.reshape(&[out_c, k]);
    let mut out = vec![0.0f32; b * out_c * n];
    out.par_chunks_mut(out_c * n)
        .enumerate()
        .for_each(|(bi, chunk)| {
            let colb = &cols.data()[bi * k * n..(bi + 1) * k * n];
            matmul_block(wmat.data(), colb, chunk, out_c, k, n);
            if let Some(bias) = bias {
                for oc in 0..out_c {
                    let bv = bias.data()[oc];
                    for v in chunk[oc * n..(oc + 1) * n].iter_mut() {
                        *v += bv;
                    }
                }
            }
        });
    Tensor::from_vec(out, &[b, out_c, oh, ow])
}

/// Splits an NCHW shape into its four extents.
///
/// # Panics
/// Panics if the tensor is not rank 4.
pub fn nchw(x: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(x.rank(), 4, "expected NCHW tensor, got shape {}", x.shape());
    (x.dim(0), x.dim(1), x.dim(2), x.dim(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_conv2d(
        x: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        geom: Conv2dGeometry,
    ) -> Tensor {
        let (b, c, h, w) = nchw(x);
        let out_c = weight.dim(0);
        let (oh, ow) = geom.output_size(h, w);
        let mut out = Tensor::zeros(&[b, out_c, oh, ow]);
        for bi in 0..b {
            for oc in 0..out_c {
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut acc = bias.map(|bs| bs.data()[oc]).unwrap_or(0.0);
                        for ci in 0..c {
                            for khi in 0..geom.kh {
                                for kwi in 0..geom.kw {
                                    let ih = ohi as isize * geom.stride as isize + khi as isize
                                        - geom.pad as isize;
                                    let iw = owi as isize * geom.stride as isize + kwi as isize
                                        - geom.pad as isize;
                                    if ih < 0 || iw < 0 || ih as usize >= h || iw as usize >= w {
                                        continue;
                                    }
                                    acc += x.at(&[bi, ci, ih as usize, iw as usize])
                                        * weight.at(&[oc, ci, khi, kwi]);
                                }
                            }
                        }
                        out.set(&[bi, oc, ohi, owi], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn output_size_formula() {
        let g = Conv2dGeometry::new(3, 1, 1);
        assert_eq!(g.output_size(8, 8), (8, 8));
        let g = Conv2dGeometry::new(3, 2, 1);
        assert_eq!(g.output_size(8, 8), (4, 4));
        let g = Conv2dGeometry::new(4, 2, 1);
        assert_eq!(g.output_size(8, 8), (4, 4));
    }

    #[test]
    fn pad_zero_places_values() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let p = pad2d_zero(&x, 1);
        assert_eq!(p.dims(), &[1, 1, 4, 4]);
        assert_eq!(p.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(p.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(p.at(&[0, 0, 2, 2]), 1.0);
        assert_eq!(p.at(&[0, 0, 3, 3]), 0.0);
    }

    #[test]
    fn pad_reflect_mirrors() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        );
        let p = pad2d_reflect(&x, 1);
        assert_eq!(p.dims(), &[1, 1, 5, 5]);
        // Corner reflects both axes: the element at (1,1) of the original.
        assert_eq!(p.at(&[0, 0, 0, 0]), 5.0);
        // Top edge reflects row 1.
        assert_eq!(p.at(&[0, 0, 0, 1]), 4.0);
        // Interior untouched.
        assert_eq!(p.at(&[0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn conv2d_matches_naive_reference() {
        let mut rng = crate::random::TensorRng::new(7);
        let x = rng.randn(&[2, 3, 6, 6]);
        let w = rng.randn(&[4, 3, 3, 3]).scale(0.3);
        let b = rng.randn(&[4]);
        for (stride, pad) in [(1usize, 1usize), (2, 1), (1, 0)] {
            let geom = Conv2dGeometry::new(3, stride, pad);
            let fast = conv2d(&x, &w, Some(&b), geom);
            let slow = naive_conv2d(&x, &w, Some(&b), geom);
            assert_eq!(fast.dims(), slow.dims());
            let err = fast.sub(&slow).abs().max();
            assert!(
                err < 1e-4,
                "conv mismatch {err} at stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn im2col_col2im_adjointness() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
        // property of an adjoint pair, which the conv backward pass relies on.
        let mut rng = crate::random::TensorRng::new(11);
        let geom = Conv2dGeometry::new(3, 2, 1);
        let x = rng.randn(&[1, 2, 5, 5]);
        let cols = im2col(&x, geom);
        let y = rng.randn(cols.dims());
        let lhs = cols.dot(&y);
        let back = col2im(&y, geom, 2, 5, 5);
        let rhs = x.dot(&back);
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel with weight 1 reproduces the input channel.
        let x = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let geom = Conv2dGeometry::new(1, 1, 0);
        let y = conv2d(&x, &w, None, geom);
        assert_eq!(y, x);
    }
}
