//! Dataset containers: variables, specs and Table-1 style inventory rows.

use gld_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which scientific application a dataset mimics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Energy Exascale Earth System Model (climate).
    E3sm,
    /// S3D direct numerical combustion simulation.
    S3d,
    /// Johns Hopkins Turbulence Database (isotropic turbulence).
    Jhtdb,
}

impl DatasetKind {
    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::E3sm => "E3SM",
            DatasetKind::S3d => "S3D",
            DatasetKind::Jhtdb => "JHTDB",
        }
    }

    /// Application domain as listed in Table 1.
    pub fn domain(&self) -> &'static str {
        match self {
            DatasetKind::E3sm => "Climate",
            DatasetKind::S3d => "Combustion",
            DatasetKind::Jhtdb => "Turbulence",
        }
    }

    /// All supported kinds.
    pub fn all() -> [DatasetKind; 3] {
        [DatasetKind::E3sm, DatasetKind::S3d, DatasetKind::Jhtdb]
    }
}

/// Size specification for a generated dataset.
///
/// The defaults are intentionally small so tests finish quickly; the bench
/// harness scales them up via [`FieldSpec::bench`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Number of physical variables (channels).
    pub variables: usize,
    /// Number of timesteps.
    pub timesteps: usize,
    /// Spatial height of each frame.
    pub height: usize,
    /// Spatial width of each frame.
    pub width: usize,
}

impl FieldSpec {
    /// Creates a spec.
    pub fn new(variables: usize, timesteps: usize, height: usize, width: usize) -> Self {
        FieldSpec {
            variables,
            timesteps,
            height,
            width,
        }
    }

    /// Small spec for unit tests (2 variables, 16 frames of 16×16).
    pub fn tiny() -> Self {
        FieldSpec::new(2, 16, 16, 16)
    }

    /// Default spec for the benchmark harness (3 variables, 48 frames of
    /// 32×32), scaled to run the full experiment matrix on a single CPU core
    /// in reasonable time while preserving the paper's temporal structure
    /// (blocks of N = 16 frames).
    pub fn bench() -> Self {
        FieldSpec::new(3, 48, 32, 32)
    }

    /// Total number of scalar values.
    pub fn numel(&self) -> usize {
        self.variables * self.timesteps * self.height * self.width
    }

    /// Total uncompressed size in bytes (f32 storage).
    pub fn size_bytes(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }
}

/// One physical variable: a named `[T, H, W]` tensor.
#[derive(Clone, Debug)]
pub struct Variable {
    /// Variable name (e.g. "temperature", "species_07", "velocity_u").
    pub name: String,
    /// Frame stack of shape `[timesteps, height, width]`.
    pub frames: Tensor,
}

impl Variable {
    /// Creates a variable, validating the frame tensor rank.
    pub fn new(name: impl Into<String>, frames: Tensor) -> Self {
        assert_eq!(frames.rank(), 3, "variable frames must be [T, H, W]");
        Variable {
            name: name.into(),
            frames,
        }
    }

    /// Number of timesteps.
    pub fn timesteps(&self) -> usize {
        self.frames.dim(0)
    }

    /// One frame as an `[H, W]` tensor.
    pub fn frame(&self, t: usize) -> Tensor {
        self.frames.slice_axis(0, t, t + 1).squeeze(0)
    }

    /// Value range across all frames.
    pub fn range(&self) -> (f32, f32) {
        (self.frames.min(), self.frames.max())
    }
}

/// A generated dataset: several variables over a common grid.
#[derive(Clone, Debug)]
pub struct ScientificDataset {
    /// Which application the dataset mimics.
    pub kind: DatasetKind,
    /// The spec it was generated from.
    pub spec: FieldSpec,
    /// Per-variable frame stacks.
    pub variables: Vec<Variable>,
}

impl ScientificDataset {
    /// Stacks all variables into a single `[V, T, H, W]` tensor.
    pub fn as_tensor(&self) -> Tensor {
        let unsqueezed: Vec<Tensor> = self
            .variables
            .iter()
            .map(|v| v.frames.unsqueeze(0))
            .collect();
        let refs: Vec<&Tensor> = unsqueezed.iter().collect();
        Tensor::concat(&refs, 0)
    }

    /// Total number of scalar values.
    pub fn numel(&self) -> usize {
        self.variables.iter().map(|v| v.frames.numel()).sum()
    }

    /// Uncompressed size in bytes (f32 storage).
    pub fn size_bytes(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }

    /// Global value range across all variables.
    pub fn range(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for v in &self.variables {
            let (vl, vh) = v.range();
            lo = lo.min(vl);
            hi = hi.max(vh);
        }
        (lo, hi)
    }
}

/// A Table-1 style inventory row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Application domain.
    pub domain: String,
    /// Dimensions in `[V, T, H, W]` order.
    pub dims: [usize; 4],
    /// Total size in bytes.
    pub size_bytes: u64,
}

impl DatasetInfo {
    /// The paper's Table 1 row for E3SM (5 × 8640 × 240 × 1440, 59.7 GB).
    pub fn paper_e3sm() -> Self {
        DatasetInfo {
            name: "E3SM".into(),
            domain: "Climate".into(),
            dims: [5, 8640, 240, 1440],
            size_bytes: 59_700_000_000,
        }
    }

    /// The paper's Table 1 row for S3D (58 × 200 × 512 × 512, 24.3 GB).
    pub fn paper_s3d() -> Self {
        DatasetInfo {
            name: "S3D".into(),
            domain: "Combustion".into(),
            dims: [58, 200, 512, 512],
            size_bytes: 24_300_000_000,
        }
    }

    /// The paper's Table 1 row for JHTDB (64 × 256 × 512 × 512, 34.3 GB).
    pub fn paper_jhtdb() -> Self {
        DatasetInfo {
            name: "JHTDB".into(),
            domain: "Turbulence".into(),
            dims: [64, 256, 512, 512],
            size_bytes: 34_300_000_000,
        }
    }

    /// The synthetic stand-in row for a given kind and spec.
    pub fn synthetic(kind: DatasetKind, spec: &FieldSpec) -> Self {
        DatasetInfo {
            name: format!("{} (synthetic)", kind.name()),
            domain: kind.domain().into(),
            dims: [spec.variables, spec.timesteps, spec.height, spec.width],
            size_bytes: spec.size_bytes() as u64,
        }
    }

    /// Human-readable size ("24.3 GB", "1.5 MB", …).
    pub fn size_human(&self) -> String {
        let b = self.size_bytes as f64;
        if b >= 1e9 {
            format!("{:.1} GB", b / 1e9)
        } else if b >= 1e6 {
            format!("{:.1} MB", b / 1e6)
        } else if b >= 1e3 {
            format!("{:.1} KB", b / 1e3)
        } else {
            format!("{b} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accounting() {
        let spec = FieldSpec::new(2, 10, 8, 8);
        assert_eq!(spec.numel(), 2 * 10 * 8 * 8);
        assert_eq!(spec.size_bytes(), spec.numel() * 4);
    }

    #[test]
    fn variable_frame_access() {
        let frames = Tensor::arange(2 * 3 * 4).reshape(&[2, 3, 4]);
        let v = Variable::new("t", frames.clone());
        assert_eq!(v.timesteps(), 2);
        let f1 = v.frame(1);
        assert_eq!(f1.dims(), &[3, 4]);
        assert_eq!(f1.at(&[0, 0]), frames.at(&[1, 0, 0]));
    }

    #[test]
    fn dataset_stacks_variables() {
        let spec = FieldSpec::tiny();
        let v0 = Variable::new(
            "a",
            Tensor::zeros(&[spec.timesteps, spec.height, spec.width]),
        );
        let v1 = Variable::new(
            "b",
            Tensor::ones(&[spec.timesteps, spec.height, spec.width]),
        );
        let ds = ScientificDataset {
            kind: DatasetKind::E3sm,
            spec,
            variables: vec![v0, v1],
        };
        let t = ds.as_tensor();
        assert_eq!(t.dims(), &[2, spec.timesteps, spec.height, spec.width]);
        assert_eq!(ds.range(), (0.0, 1.0));
    }

    #[test]
    fn paper_table1_rows_match_paper() {
        let e = DatasetInfo::paper_e3sm();
        assert_eq!(e.dims, [5, 8640, 240, 1440]);
        assert_eq!(e.size_human(), "59.7 GB");
        let s = DatasetInfo::paper_s3d();
        assert_eq!(s.dims, [58, 200, 512, 512]);
        assert_eq!(s.size_human(), "24.3 GB");
        let j = DatasetInfo::paper_jhtdb();
        assert_eq!(j.dims, [64, 256, 512, 512]);
        assert_eq!(j.size_human(), "34.3 GB");
    }

    #[test]
    fn synthetic_info_reflects_spec() {
        let spec = FieldSpec::new(3, 48, 32, 32);
        let info = DatasetInfo::synthetic(DatasetKind::Jhtdb, &spec);
        assert_eq!(info.dims, [3, 48, 32, 32]);
        assert!(info.name.contains("JHTDB"));
        assert_eq!(info.size_bytes, spec.size_bytes() as u64);
    }

    #[test]
    fn kind_names() {
        assert_eq!(DatasetKind::E3sm.name(), "E3SM");
        assert_eq!(DatasetKind::S3d.domain(), "Combustion");
        assert_eq!(DatasetKind::all().len(), 3);
    }
}
