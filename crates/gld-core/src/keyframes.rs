//! Keyframe selection strategies (paper §4.4) and the interpolation-interval
//! ablation (§4.5).

use gld_diffusion::FramePartition;
use serde::{Deserialize, Serialize};

/// How the conditioning keyframes of an `N`-frame block are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyframeStrategy {
    /// Keyframes spread uniformly across the block with the given interval;
    /// the model interpolates between them (the paper's best strategy, with
    /// interval 3 the recommended default).
    Interpolation {
        /// Distance between consecutive keyframes.
        interval: usize,
    },
    /// The first `count` frames are keyframes; the rest are extrapolated
    /// (prediction-based strategy).
    Prediction {
        /// Number of leading keyframes.
        count: usize,
    },
    /// The first `count − 1` frames plus the final frame are keyframes.
    Mixed {
        /// Total number of keyframes.
        count: usize,
    },
}

impl KeyframeStrategy {
    /// The paper's default: interpolation with interval 3.
    pub fn paper_default() -> Self {
        KeyframeStrategy::Interpolation { interval: 3 }
    }

    /// Human-readable name for tables and plots.
    pub fn name(&self) -> String {
        match self {
            KeyframeStrategy::Interpolation { interval } => {
                format!("interpolation (interval {interval})")
            }
            KeyframeStrategy::Prediction { count } => {
                format!("prediction ({count} leading keyframes)")
            }
            KeyframeStrategy::Mixed { count } => format!("mixed ({count} keyframes)"),
        }
    }

    /// The conditioning indices for an `N`-frame block.
    pub fn conditioning_indices(&self, n: usize) -> Vec<usize> {
        assert!(n >= 2, "blocks must have at least two frames");
        match *self {
            KeyframeStrategy::Interpolation { interval } => {
                assert!(interval >= 1, "interval must be at least 1");
                let mut idx: Vec<usize> = (0..n).step_by(interval).collect();
                // Always keep the final frame as a keyframe so interpolation
                // never extrapolates past the last anchor.
                if *idx.last().unwrap() != n - 1 {
                    idx.push(n - 1);
                }
                idx
            }
            KeyframeStrategy::Prediction { count } => {
                let count = count.clamp(1, n - 1);
                (0..count).collect()
            }
            KeyframeStrategy::Mixed { count } => {
                let count = count.clamp(2, n - 1);
                let mut idx: Vec<usize> = (0..count - 1).collect();
                idx.push(n - 1);
                idx
            }
        }
    }

    /// Builds the frame partition for an `N`-frame block.
    pub fn partition(&self, n: usize) -> FramePartition {
        FramePartition::from_conditioning(n, &self.conditioning_indices(n))
    }

    /// The three strategies compared in Figure 2, configured exactly as in
    /// the paper (6 keyframes out of N = 16).
    pub fn figure2_strategies() -> Vec<KeyframeStrategy> {
        vec![
            KeyframeStrategy::Interpolation { interval: 3 },
            KeyframeStrategy::Prediction { count: 6 },
            KeyframeStrategy::Mixed { count: 6 },
        ]
    }
}

/// Storage accounting for a keyframe choice.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KeyframeSummary {
    /// Total frames per block.
    pub total_frames: usize,
    /// Number of keyframes stored.
    pub keyframes: usize,
    /// Fraction of frames whose latents must be stored.
    pub stored_fraction: f32,
}

impl KeyframeSummary {
    /// Summarises a strategy on `N`-frame blocks.
    pub fn of(strategy: &KeyframeStrategy, n: usize) -> Self {
        let k = strategy.conditioning_indices(n).len();
        KeyframeSummary {
            total_frames: n,
            keyframes: k,
            stored_fraction: k as f32 / n as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_matches_paper_indices() {
        // Paper (1-based): {1, 4, 7, 10, 13, 16} for N = 16, interval 3.
        let idx = KeyframeStrategy::Interpolation { interval: 3 }.conditioning_indices(16);
        assert_eq!(idx, vec![0, 3, 6, 9, 12, 15]);
    }

    #[test]
    fn prediction_matches_paper_indices() {
        // Paper (1-based): {1, 2, 3, 4, 5, 6}.
        let idx = KeyframeStrategy::Prediction { count: 6 }.conditioning_indices(16);
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn mixed_matches_paper_indices() {
        // Paper (1-based): {1, 2, 3, 4, 5, 16}.
        let idx = KeyframeStrategy::Mixed { count: 6 }.conditioning_indices(16);
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 15]);
    }

    #[test]
    fn interpolation_always_anchors_last_frame() {
        for interval in 2..=6 {
            for n in [8usize, 12, 16] {
                let idx = KeyframeStrategy::Interpolation { interval }.conditioning_indices(n);
                assert_eq!(*idx.last().unwrap(), n - 1, "interval {interval}, n {n}");
                assert_eq!(idx[0], 0);
            }
        }
    }

    #[test]
    fn partitions_are_valid() {
        for strategy in KeyframeStrategy::figure2_strategies() {
            let p = strategy.partition(16);
            assert_eq!(p.total, 16);
            assert_eq!(p.num_conditioning() + p.num_generated(), 16);
            assert!(p.num_generated() > 0);
        }
    }

    #[test]
    fn larger_interval_stores_fewer_keyframes() {
        let f2 = KeyframeSummary::of(&KeyframeStrategy::Interpolation { interval: 2 }, 16);
        let f6 = KeyframeSummary::of(&KeyframeStrategy::Interpolation { interval: 6 }, 16);
        assert!(f6.keyframes < f2.keyframes);
        assert!(f6.stored_fraction < f2.stored_fraction);
        assert!((f2.stored_fraction - f2.keyframes as f32 / 16.0).abs() < 1e-6);
    }

    #[test]
    fn strategy_names_are_informative() {
        assert!(KeyframeStrategy::paper_default()
            .name()
            .contains("interval 3"));
        assert!(KeyframeStrategy::Prediction { count: 6 }
            .name()
            .contains("prediction"));
    }
}
