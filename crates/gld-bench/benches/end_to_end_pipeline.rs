//! Criterion benchmark for the full pipeline: block compression and
//! decompression with a briefly trained model (wall-clock for the complete
//! encode/decode paths, the quantities Table 2 reports as MB/s).

use criterion::{criterion_group, criterion_main, Criterion};
use gld_core::{GldCompressor, GldConfig, GldTrainingBudget};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 13);
    let config = GldConfig::tiny();
    let budget = GldTrainingBudget {
        vae_steps: 60,
        diffusion_steps: 60,
        fine_tune_steps: 0,
        fine_tune_schedule: 16,
    };
    let compressor = GldCompressor::train(config, &ds.variables, budget);
    let block = ds.variables[0].frames.slice_axis(0, 0, config.block_frames);
    let compressed = compressor.compress_block(&block, None);
    let compressed_bounded = compressor.compress_block(&block, Some(1e-2));

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("compress_block_no_bound", |bench| {
        bench.iter(|| black_box(compressor.compress_block(black_box(&block), None)))
    });
    group.bench_function("compress_block_with_bound_1e-2", |bench| {
        bench.iter(|| black_box(compressor.compress_block(black_box(&block), Some(1e-2))))
    });
    group.bench_function("decompress_block", |bench| {
        bench.iter(|| black_box(compressor.decompress_block(black_box(&compressed))))
    });
    group.bench_function("decompress_block_with_correction", |bench| {
        bench.iter(|| black_box(compressor.decompress_block(black_box(&compressed_bounded))))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
