//! Property-based tests for the tensor substrate.

use gld_tensor::conv::{col2im, conv2d, im2col, Conv2dGeometry};
use gld_tensor::stats::{max_abs_error, nrmse};
use gld_tensor::{broadcast_shapes, Shape, Tensor, TensorRng};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_with_dims(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-100.0f32..100.0, n..=n)
        .prop_map(move |data| Tensor::from_vec(data, &dims))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_is_commutative(dims in small_dims()) {
        let mut rng = TensorRng::new(1);
        let a = rng.randn(&dims);
        let b = rng.randn(&dims);
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert!(max_abs_error(&ab, &ba) < 1e-6);
    }

    #[test]
    fn add_zero_is_identity(t in small_dims().prop_flat_map(tensor_with_dims)) {
        let z = Tensor::zeros(t.dims());
        prop_assert_eq!(t.add(&z), t.clone());
    }

    #[test]
    fn mul_by_one_is_identity(t in small_dims().prop_flat_map(tensor_with_dims)) {
        let ones = Tensor::ones(t.dims());
        prop_assert!(max_abs_error(&t.mul(&ones), &t) < 1e-6);
    }

    #[test]
    fn double_negation_is_identity(t in small_dims().prop_flat_map(tensor_with_dims)) {
        prop_assert_eq!(t.neg().neg(), t.clone());
    }

    #[test]
    fn reshape_preserves_sum(t in small_dims().prop_flat_map(tensor_with_dims)) {
        let flat = t.reshape(&[t.numel()]);
        prop_assert!((flat.sum() - t.sum()).abs() < 1e-3);
    }

    #[test]
    fn broadcast_shapes_is_symmetric(a in small_dims(), b in small_dims()) {
        let sa = Shape::new(&a);
        let sb = Shape::new(&b);
        prop_assert_eq!(broadcast_shapes(&sa, &sb), broadcast_shapes(&sb, &sa));
    }

    #[test]
    fn matmul_distributes_over_addition(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let mut rng = TensorRng::new(seed);
        let a = rng.randn(&[m, k]);
        let b = rng.randn(&[k, n]);
        let c = rng.randn(&[k, n]);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(max_abs_error(&lhs, &rhs) < 1e-3);
    }

    #[test]
    fn matmul_transpose_identity(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let mut rng = TensorRng::new(seed);
        let a = rng.randn(&[m, k]);
        let b = rng.randn(&[k, n]);
        let lhs = a.matmul(&b).transpose2();
        let rhs = b.transpose2().matmul(&a.transpose2());
        prop_assert!(max_abs_error(&lhs, &rhs) < 1e-3);
    }

    #[test]
    fn softmax_rows_are_probabilities(rows in 1usize..5, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = TensorRng::new(seed);
        let t = rng.randn(&[rows, cols]).scale(5.0);
        let s = t.softmax_last();
        for r in 0..rows {
            let mut sum = 0.0;
            for c in 0..cols {
                let v = s.at(&[r, c]);
                prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
                sum += v;
            }
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn sum_axis_totals_match_full_sum(seed in 0u64..1000) {
        let mut rng = TensorRng::new(seed);
        let t = rng.randn(&[3, 4, 5]);
        for axis in 0..3 {
            let partial = t.sum_axis(axis, false);
            prop_assert!((partial.sum() - t.sum()).abs() < 1e-3);
        }
    }

    #[test]
    fn minmax_normalization_bounds_and_roundtrip(t in small_dims().prop_flat_map(tensor_with_dims)) {
        let (n, min, max) = t.normalize_minmax();
        prop_assert!(n.min() >= -1.0 - 1e-5);
        prop_assert!(n.max() <= 1.0 + 1e-5);
        let back = n.denormalize_minmax(min, max);
        prop_assert!(max_abs_error(&back, &t) < 1e-3);
    }

    #[test]
    fn nrmse_zero_iff_equal(t in small_dims().prop_flat_map(tensor_with_dims)) {
        prop_assert_eq!(nrmse(&t, &t), 0.0);
    }

    #[test]
    fn concat_then_slice_roundtrip(seed in 0u64..1000, left in 1usize..4, right in 1usize..4) {
        let mut rng = TensorRng::new(seed);
        let a = rng.randn(&[left, 3]);
        let b = rng.randn(&[right, 3]);
        let c = Tensor::concat(&[&a, &b], 0);
        prop_assert_eq!(c.slice_axis(0, 0, left), a);
        prop_assert_eq!(c.slice_axis(0, left, left + right), b);
    }

    #[test]
    fn im2col_col2im_adjoint(seed in 0u64..200, stride in 1usize..3) {
        let mut rng = TensorRng::new(seed);
        let geom = Conv2dGeometry::new(3, stride, 1);
        let x = rng.randn(&[1, 2, 6, 6]);
        let cols = im2col(&x, geom);
        let y = rng.randn(cols.dims());
        let lhs = cols.dot(&y);
        let rhs = x.dot(&col2im(&y, geom, 2, 6, 6));
        prop_assert!((lhs - rhs).abs() < 1e-2);
    }

    #[test]
    fn conv2d_is_linear_in_input(seed in 0u64..200) {
        let mut rng = TensorRng::new(seed);
        let geom = Conv2dGeometry::new(3, 1, 1);
        let w = rng.randn(&[2, 1, 3, 3]).scale(0.2);
        let x1 = rng.randn(&[1, 1, 5, 5]);
        let x2 = rng.randn(&[1, 1, 5, 5]);
        let lhs = conv2d(&x1.add(&x2), &w, None, geom);
        let rhs = conv2d(&x1, &w, None, geom).add(&conv2d(&x2, &w, None, geom));
        prop_assert!(max_abs_error(&lhs, &rhs) < 1e-3);
    }

    #[test]
    fn permutation_roundtrip_3d(seed in 0u64..1000) {
        let mut rng = TensorRng::new(seed);
        let t = rng.randn(&[2, 3, 4]);
        let p = t.permute(&[1, 2, 0]);
        let back = p.permute(&[2, 0, 1]);
        prop_assert_eq!(back, t);
    }
}
