//! Chaos TCP proxy: a man-in-the-middle for resilience testing that
//! forwards bytes between clients and one upstream server while injecting
//! latency, partial writes, byte corruption, stalls, and connection
//! resets.  Shared by `tests/service_chaos.rs` and the `gld-bench`
//! `chaos_proxy` binary (the CI smoke job boots `gld-serviced` behind it
//! and gates on `gld-service-check`).
//!
//! Fault decisions come from a deterministic xorshift stream, so a seeded
//! run injects the same faults at the same byte boundaries every time.
//! An optional **fault budget** caps total injections; once it is spent
//! the proxy turns transparent, which guarantees that a workload driven by
//! a retrying client eventually completes.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What the proxy injects, and how often.  Probabilities are per forwarded
/// chunk (one upstream or downstream `read`), in `[0, 1]`.  The default is
/// fully transparent.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Added one-way delay: `(delay, probability)`.
    pub latency: Option<(Duration, f64)>,
    /// Probability of splitting a chunk into two writes with a small pause
    /// between them (exercises partial-read reassembly on both sides).
    pub partial_write_prob: f64,
    /// Probability of flipping one byte in a chunk (exercises checksum and
    /// protocol validation downstream).
    pub corrupt_prob: f64,
    /// A long one-way pause, `(duration, probability)` (exercises read
    /// timeouts).
    pub stall: Option<(Duration, f64)>,
    /// Probability of killing the connection mid-chunk (exercises
    /// reconnect-and-retry).
    pub reset_prob: f64,
    /// Cap on total injected faults; `None` is unlimited.  A spent budget
    /// makes the proxy transparent, so retried workloads terminate.
    pub fault_budget: Option<u64>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x9E37_79B9_7F4A_7C15,
            latency: None,
            partial_write_prob: 0.0,
            corrupt_prob: 0.0,
            stall: None,
            reset_prob: 0.0,
            fault_budget: None,
        }
    }
}

struct ProxyShared {
    config: ChaosConfig,
    shutdown: AtomicBool,
    /// Remaining fault budget (`u64::MAX` when unlimited).
    budget: AtomicU64,
    faults: AtomicU64,
    rng: Mutex<u64>,
}

impl ProxyShared {
    /// Rolls the fault stream against `prob`; a win consumes one unit of
    /// budget and counts as an injected fault.
    fn roll(&self, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        let unit = {
            let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
            *rng ^= *rng << 13;
            *rng ^= *rng >> 7;
            *rng ^= *rng << 17;
            (*rng >> 11) as f64 / (1u64 << 53) as f64
        };
        if unit >= prob {
            return false;
        }
        // Spend budget; a spent budget refuses the fault (transparent mode).
        if self
            .budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
            .is_err()
        {
            return false;
        }
        self.faults.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// A uniform index into `len` bytes (for picking the byte to corrupt).
    fn pick(&self, len: usize) -> usize {
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        (*rng >> 11) as usize % len.max(1)
    }
}

/// A running chaos proxy.  Dropping it (or calling
/// [`ChaosProxy::stop`]) shuts the listener and every relay down.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts proxying every accepted
    /// connection to `upstream` under `config`'s fault schedule.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let budget = config.fault_budget.unwrap_or(u64::MAX);
        let seed = config.seed | 1;
        let shared = Arc::new(ProxyShared {
            config,
            shutdown: AtomicBool::new(false),
            budget: AtomicU64::new(budget),
            faults: AtomicU64::new(0),
            rng: Mutex::new(seed),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            let mut relays: Vec<JoinHandle<()>> = Vec::new();
            loop {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((client, _)) => {
                        match TcpStream::connect(upstream) {
                            Ok(server) => {
                                let _ = client.set_nodelay(true);
                                let _ = server.set_nodelay(true);
                                // Two relay threads per connection, one per
                                // direction; each rolls its own faults.
                                if let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) {
                                    let up = Arc::clone(&accept_shared);
                                    let down = Arc::clone(&accept_shared);
                                    relays.push(std::thread::spawn(move || {
                                        relay(client, server, up);
                                    }));
                                    relays.push(std::thread::spawn(move || {
                                        relay(s2, c2, down);
                                    }));
                                }
                            }
                            // Upstream refused: drop the client, exactly
                            // like a dead server would.
                            Err(_) => drop(client),
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
            for relay in relays {
                let _ = relay.join();
            }
        });
        Ok(ChaosProxy {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — what clients dial instead of the
    /// real server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.shared.faults.load(Ordering::Relaxed)
    }

    /// Stops accepting, tears every relay down, and joins the threads.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Forwards `src` to `dst` chunk by chunk, rolling the fault schedule per
/// chunk, until EOF, an unrecoverable socket error, an injected reset, or
/// proxy shutdown.
fn relay(mut src: TcpStream, mut dst: TcpStream, shared: Arc<ProxyShared>) {
    // Short read timeout so the shutdown flag is observed promptly.
    let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match src.read(&mut chunk) {
            Ok(0) => {
                // Propagate the half-close so protocol-level EOF semantics
                // survive the proxy.
                let _ = dst.shutdown(Shutdown::Write);
                break;
            }
            Ok(n) => {
                let config = &shared.config;
                if shared.roll(config.reset_prob) {
                    let _ = src.shutdown(Shutdown::Both);
                    let _ = dst.shutdown(Shutdown::Both);
                    break;
                }
                if let Some((duration, prob)) = config.stall {
                    if shared.roll(prob) {
                        std::thread::sleep(duration);
                    }
                }
                if let Some((delay, prob)) = config.latency {
                    if shared.roll(prob) {
                        std::thread::sleep(delay);
                    }
                }
                if shared.roll(config.corrupt_prob) {
                    let at = shared.pick(n);
                    chunk[at] ^= 0xFF;
                }
                let split = if n > 1 && shared.roll(config.partial_write_prob) {
                    1 + shared.pick(n - 1)
                } else {
                    n
                };
                if dst.write_all(&chunk[..split]).is_err() {
                    let _ = src.shutdown(Shutdown::Both);
                    break;
                }
                if split < n {
                    let _ = dst.flush();
                    std::thread::sleep(Duration::from_millis(2));
                    if dst.write_all(&chunk[split..n]).is_err() {
                        let _ = src.shutdown(Shutdown::Both);
                        break;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Both);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An echo server good enough to proxy against.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let thread = std::thread::spawn(move || {
            // Serve exactly the connections the tests open.
            for stream in listener.incoming().take(2) {
                let Ok(mut stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = stream.read(&mut buf) {
                        if n == 0 || stream.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, thread)
    }

    #[test]
    fn transparent_proxy_relays_bytes_both_ways() {
        let (upstream, _echo) = echo_server();
        let mut proxy = ChaosProxy::start(upstream, ChaosConfig::default()).expect("proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("dial proxy");
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        client.write_all(b"chaos says hi").expect("send");
        let mut back = [0u8; 13];
        client.read_exact(&mut back).expect("echo back");
        assert_eq!(&back, b"chaos says hi");
        assert_eq!(proxy.faults_injected(), 0, "transparent by default");
        proxy.stop();
    }

    #[test]
    fn fault_budget_caps_injections_then_goes_transparent() {
        let (upstream, _echo) = echo_server();
        let mut proxy = ChaosProxy::start(
            upstream,
            ChaosConfig {
                corrupt_prob: 1.0,
                fault_budget: Some(1),
                ..ChaosConfig::default()
            },
        )
        .expect("proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("dial proxy");
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // First chunk eats the whole budget (corrupted on the way up),
        // later chunks pass untouched.
        client.write_all(b"aaaa").expect("send");
        let mut first = [0u8; 4];
        client.read_exact(&mut first).expect("echo back");
        assert_ne!(&first, b"aaaa", "the single budgeted fault fired");
        client.write_all(b"bbbb").expect("send");
        let mut second = [0u8; 4];
        client.read_exact(&mut second).expect("echo back");
        assert_eq!(&second, b"bbbb", "budget spent, proxy is transparent");
        assert_eq!(proxy.faults_injected(), 1);
        proxy.stop();
    }
}
