//! Entropy-coded compression of VAE latents and whole frames.
//!
//! [`LatentCodec`] implements the paper's keyframe bitstream: the quantised
//! latent `ŷ` is arithmetic-coded under the Gaussian conditional model whose
//! parameters come from the hyper-decoder, and the quantised hyper-latent
//! `ẑ` is coded with a histogram factorized prior that ships in the header.
//!
//! [`FrameCodec`] wraps the latent codec with per-frame normalisation so raw
//! scientific frames (values spanning ~10¹⁰) can be pushed through the VAE
//! directly.

use crate::model::Vae;
use gld_entropy::{GaussianConditionalModel, HistogramModel, RangeDecoder, RangeEncoder};
use gld_tensor::Tensor;

fn tensor_to_symbols(t: &Tensor) -> Vec<i32> {
    // Fused round-and-cast — one pass, no intermediate rounded tensor.
    t.quantized_symbols()
}

fn symbols_to_tensor(symbols: &[i32], dims: &[usize]) -> Tensor {
    Tensor::from_vec(symbols.iter().map(|&s| s as f32).collect(), dims)
}

/// Appends a rank-prefixed dimension list (`u8` rank + `u32` per dim) —
/// the framing every latent bitstream in the stack uses for tensor shapes.
pub fn write_dims(out: &mut Vec<u8>, dims: &[usize]) {
    out.push(dims.len() as u8);
    for &d in dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
}

/// Parses a dimension list written by [`write_dims`], returning the dims and
/// the number of bytes consumed.
pub fn read_dims(bytes: &[u8]) -> (Vec<usize>, usize) {
    let rank = bytes[0] as usize;
    let mut dims = Vec::with_capacity(rank);
    let mut off = 1;
    for _ in 0..rank {
        dims.push(u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize);
        off += 4;
    }
    (dims, off)
}

/// Compresses quantised latents with the hyperprior bitstream layout.
pub struct LatentCodec<'a> {
    vae: &'a Vae,
}

impl<'a> LatentCodec<'a> {
    /// Creates a codec bound to a (trained) model.
    pub fn new(vae: &'a Vae) -> Self {
        LatentCodec { vae }
    }

    /// Compresses already-quantised latents `ŷ` of shape `[K, L, h, w]`.
    pub fn compress(&self, y_quantized: &Tensor) -> Vec<u8> {
        assert_eq!(y_quantized.rank(), 4, "latents must be [K, L, h, w]");
        let z = self.vae.quantize_hyper(y_quantized);
        let (mu, sigma) = self.vae.predict_gaussian(&z);
        assert_eq!(mu.dims(), y_quantized.dims());

        let z_symbols = tensor_to_symbols(&z);
        let y_symbols = tensor_to_symbols(y_quantized);
        let z_model = HistogramModel::fit(&z_symbols);

        let mut out = Vec::new();
        write_dims(&mut out, y_quantized.dims());
        write_dims(&mut out, z.dims());
        let model_bytes = z_model.to_bytes();
        out.extend_from_slice(&(model_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&model_bytes);

        let mut enc = RangeEncoder::new();
        z_model.encode(&mut enc, &z_symbols);
        GaussianConditionalModel::new().encode(&mut enc, &y_symbols, mu.data(), sigma.data());
        let stream = enc.finish();
        out.extend_from_slice(&(stream.len() as u32).to_le_bytes());
        out.extend_from_slice(&stream);
        out
    }

    /// Decompresses latents produced by [`LatentCodec::compress`].
    pub fn decompress(&self, bytes: &[u8]) -> Tensor {
        let (y_dims, used) = read_dims(bytes);
        let mut off = used;
        let (z_dims, used) = read_dims(&bytes[off..]);
        off += used;
        let model_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        let (z_model, consumed) = HistogramModel::from_bytes(&bytes[off..off + model_len]);
        assert_eq!(consumed, model_len);
        off += model_len;
        let stream_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        let stream = &bytes[off..off + stream_len];

        let mut dec = RangeDecoder::new(stream);
        let z_count: usize = z_dims.iter().product();
        let z_symbols = z_model.decode(&mut dec, z_count);
        let z = symbols_to_tensor(&z_symbols, &z_dims);
        let (mu, sigma) = self.vae.predict_gaussian(&z);
        let y_symbols = GaussianConditionalModel::new().decode(&mut dec, mu.data(), sigma.data());
        symbols_to_tensor(&y_symbols, &y_dims)
    }
}

/// Per-frame normalisation metadata stored alongside the latent bitstream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameNorm {
    /// Mean removed before encoding.
    pub mean: f32,
    /// Value range used to scale to unit range.
    pub range: f32,
}

/// Compresses raw frames end to end through the VAE.
pub struct FrameCodec<'a> {
    vae: &'a Vae,
}

impl<'a> FrameCodec<'a> {
    /// Creates a codec bound to a (trained) model.
    pub fn new(vae: &'a Vae) -> Self {
        FrameCodec { vae }
    }

    /// Normalises frames `[N, H, W]` and returns `[N, 1, H, W]` plus the
    /// per-frame normalisation parameters.
    pub fn normalize(&self, frames: &Tensor) -> (Tensor, Vec<FrameNorm>) {
        assert_eq!(frames.rank(), 3, "frames must be [N, H, W]");
        let n = frames.dim(0);
        let mut norms = Vec::with_capacity(n);
        let mut normalized = Vec::with_capacity(n);
        for t in 0..n {
            let frame = frames.slice_axis(0, t, t + 1);
            let (norm, mean, range) = frame.normalize_mean_range();
            norms.push(FrameNorm { mean, range });
            normalized.push(norm);
        }
        let refs: Vec<&Tensor> = normalized.iter().collect();
        let stacked = Tensor::concat(&refs, 0);
        let (n, h, w) = (stacked.dim(0), stacked.dim(1), stacked.dim(2));
        (stacked.reshape(&[n, 1, h, w]), norms)
    }

    /// Undoes [`FrameCodec::normalize`] on decoded frames `[N, 1, H, W]`.
    pub fn denormalize(&self, frames: &Tensor, norms: &[FrameNorm]) -> Tensor {
        assert_eq!(frames.rank(), 4, "frames must be [N, 1, H, W]");
        let (n, h, w) = (frames.dim(0), frames.dim(2), frames.dim(3));
        assert_eq!(n, norms.len(), "normalisation metadata length mismatch");
        let flat = frames.reshape(&[n, h, w]);
        let mut out = Vec::with_capacity(n);
        for (t, norm) in norms.iter().enumerate() {
            let frame = flat.slice_axis(0, t, t + 1);
            out.push(frame.denormalize_mean_range(norm.mean, norm.range));
        }
        let refs: Vec<&Tensor> = out.iter().collect();
        Tensor::concat(&refs, 0)
    }

    /// Compresses frames `[N, H, W]` (every frame is coded — this is the
    /// path the CDC/VAE-SR style baselines use; the keyframe pipeline in
    /// `gld-core` codes only the conditioning frames).
    pub fn compress(&self, frames: &Tensor) -> Vec<u8> {
        let (normalized, norms) = self.normalize(frames);
        let y = self.vae.quantize_latent(&normalized);
        let latent_bytes = LatentCodec::new(self.vae).compress(&y);

        let mut out = Vec::new();
        out.extend_from_slice(&(frames.dim(0) as u32).to_le_bytes());
        out.extend_from_slice(&(frames.dim(1) as u32).to_le_bytes());
        out.extend_from_slice(&(frames.dim(2) as u32).to_le_bytes());
        for norm in &norms {
            out.extend_from_slice(&norm.mean.to_le_bytes());
            out.extend_from_slice(&norm.range.to_le_bytes());
        }
        out.extend_from_slice(&latent_bytes);
        out
    }

    /// Decompresses frames produced by [`FrameCodec::compress`].
    pub fn decompress(&self, bytes: &[u8]) -> Tensor {
        let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let _h = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let _w = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let mut off = 12;
        let mut norms = Vec::with_capacity(n);
        for _ in 0..n {
            let mean = f32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let range = f32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            norms.push(FrameNorm { mean, range });
            off += 8;
        }
        let y = LatentCodec::new(self.vae).decompress(&bytes[off..]);
        let decoded = self.vae.decode_latent(&y);
        self.denormalize(&decoded, &norms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VaeConfig;
    use gld_datasets::{generate, DatasetKind, FieldSpec};
    use gld_tensor::stats::nrmse;
    use gld_tensor::TensorRng;

    fn vae() -> Vae {
        Vae::new(VaeConfig::tiny())
    }

    #[test]
    fn latent_codec_is_lossless_for_quantized_latents() {
        let vae = vae();
        let mut rng = TensorRng::new(5);
        let frames = rng.rand_uniform(&[3, 1, 16, 16], -0.5, 0.5);
        let y = vae.quantize_latent(&frames);
        let codec = LatentCodec::new(&vae);
        let bytes = codec.compress(&y);
        let decoded = codec.decompress(&bytes);
        assert_eq!(decoded, y, "latent bitstream must be lossless");
        // Untrained models predict poor Gaussian parameters, so only a loose
        // size sanity bound applies here; real rate checks live in the
        // end-to-end tests that use a trained model.
        assert!(bytes.len() < y.numel() * 8 + 1024);
    }

    #[test]
    fn frame_codec_roundtrip_preserves_scale() {
        let vae = vae();
        let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 11);
        let frames = ds.variables[0].frames.slice_axis(0, 0, 3);
        let codec = FrameCodec::new(&vae);
        let bytes = codec.compress(&frames);
        let recon = codec.decompress(&bytes);
        assert_eq!(recon.dims(), frames.dims());
        // Even an untrained VAE must reproduce the right order of magnitude
        // because normalisation metadata is stored exactly.
        let err = nrmse(&frames, &recon);
        assert!(err < 1.0, "NRMSE {err} unexpectedly large");
        assert!(bytes.len() < frames.numel() * 4);
    }

    #[test]
    fn normalization_roundtrip_is_exact() {
        let vae = vae();
        let codec = FrameCodec::new(&vae);
        let mut rng = TensorRng::new(2);
        let frames = rng.randn(&[4, 16, 16]).scale(1e8).add_scalar(3e9);
        let (normalized, norms) = codec.normalize(&frames);
        assert_eq!(normalized.dims(), &[4, 1, 16, 16]);
        assert!(normalized.abs().max() <= 1.0 + 1e-5);
        let back = codec.denormalize(&normalized, &norms);
        let rel_err = nrmse(&frames, &back);
        assert!(rel_err < 1e-6, "normalisation round trip error {rel_err}");
    }

    #[test]
    fn compressed_size_scales_with_frame_count() {
        let vae = vae();
        let ds = generate(DatasetKind::S3d, &FieldSpec::tiny(), 3);
        let codec = FrameCodec::new(&vae);
        let two = codec
            .compress(&ds.variables[0].frames.slice_axis(0, 0, 2))
            .len();
        let eight = codec
            .compress(&ds.variables[0].frames.slice_axis(0, 0, 8))
            .len();
        assert!(eight > two);
        assert!(eight < two * 8, "per-frame cost should amortise headers");
    }
}
