//! The end-to-end generative latent diffusion compressor ("Ours").
//!
//! Compression of an `N`-frame block (paper Figure 1):
//!
//! 1. every frame is normalised to zero mean / unit range (constants kept in
//!    the header — a few bytes per frame);
//! 2. the **keyframes** selected by the [`crate::keyframes::KeyframeStrategy`]
//!    are pushed through the VAE encoder, rounded, and entropy-coded with the
//!    hyperprior bitstream of `gld-vae`;
//! 3. nothing else is stored for the remaining frames — at decompression the
//!    conditional latent diffusion model interpolates their latents from the
//!    keyframe latents (§3.3), the VAE decoder maps everything back to data
//!    space, and the per-frame normalisation is undone;
//! 4. optionally, the PCA error-bound module (§3.5) compares the encoder-side
//!    reconstruction with the original block and stores a small correction
//!    stream that guarantees the requested error bound (the decoder replays
//!    the exact same generation thanks to a stored sampling seed).
//!
//! The compression ratio follows Eq. 11: original bytes divided by the sum of
//! the latent bitstream and the auxiliary correction stream.

use crate::codec::{Codec, ErrorTarget};
use crate::container::{write_section, ByteReader, CodecId, ContainerError};
use crate::error_bound::{ErrorBoundConfig, ErrorBoundOutcome, PcaErrorBound};
use crate::keyframes::KeyframeStrategy;
use gld_datasets::Variable;
use gld_diffusion::{ConditionalDiffusion, DiffusionConfig, DiffusionTrainer, FramePartition};
use gld_tensor::{Tensor, TensorRng};
use gld_vae::codec::FrameNorm;
use gld_vae::{LatentCodec, Vae, VaeConfig, VaeTrainer};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the full compressor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GldConfig {
    /// VAE / hyperprior configuration (stage one).
    pub vae: VaeConfig,
    /// Diffusion configuration (stage two).
    pub diffusion: DiffusionConfig,
    /// Temporal block length N.
    pub block_frames: usize,
    /// Keyframe selection strategy.
    pub strategy: KeyframeStrategy,
    /// Denoising steps used at decompression time.
    pub denoising_steps: usize,
    /// Error-bound module configuration.
    pub error_bound: ErrorBoundConfig,
    /// Base sampling seed.  Every block's generation seed is derived from
    /// this and the block's temporal index (see [`derive_block_seed`]), so
    /// distinct blocks never share a noise realisation and parallel
    /// compression is bit-identical to sequential.
    pub seed: u64,
}

impl Default for GldConfig {
    fn default() -> Self {
        let vae = VaeConfig::default();
        let diffusion = DiffusionConfig {
            latent_channels: vae.latent_channels,
            ..DiffusionConfig::default()
        };
        GldConfig {
            vae,
            diffusion,
            block_frames: 16,
            strategy: KeyframeStrategy::paper_default(),
            denoising_steps: 8,
            error_bound: ErrorBoundConfig::default(),
            seed: 0x051D_5EED,
        }
    }
}

impl GldConfig {
    /// A small configuration for unit tests: N = 8 frames, few channels.
    pub fn tiny() -> Self {
        let vae = VaeConfig::tiny();
        let diffusion = DiffusionConfig {
            latent_channels: vae.latent_channels,
            ..DiffusionConfig::tiny()
        };
        GldConfig {
            vae,
            diffusion,
            block_frames: 8,
            strategy: KeyframeStrategy::Interpolation { interval: 3 },
            denoising_steps: 4,
            error_bound: ErrorBoundConfig::default(),
            seed: 0x051D_5EED,
        }
    }

    /// The frame partition induced by the strategy.
    pub fn partition(&self) -> FramePartition {
        self.strategy.partition(self.block_frames)
    }
}

/// Training step budgets for the two stages (and optional few-step
/// fine-tuning).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GldTrainingBudget {
    /// Stage-one (VAE) optimisation steps.
    pub vae_steps: usize,
    /// Stage-two (diffusion) optimisation steps at the full schedule.
    pub diffusion_steps: usize,
    /// Fine-tuning steps at the shortened schedule (0 disables fine-tuning).
    pub fine_tune_steps: usize,
    /// Schedule length used for fine-tuning and sampling.
    pub fine_tune_schedule: usize,
}

impl GldTrainingBudget {
    /// A very small budget for tests.
    pub fn tiny() -> Self {
        GldTrainingBudget {
            vae_steps: 120,
            diffusion_steps: 120,
            fine_tune_steps: 0,
            fine_tune_schedule: 32,
        }
    }
}

/// One compressed spatiotemporal block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompressedBlock {
    /// Number of frames N.
    pub frames: usize,
    /// Frame height.
    pub height: usize,
    /// Frame width.
    pub width: usize,
    /// Per-frame normalisation constants (stored for every frame).
    pub frame_norms: Vec<(f32, f32)>,
    /// Latent min-max normalisation range derived from the keyframes.
    pub latent_range: (f32, f32),
    /// Entropy-coded keyframe latents (hyperprior bitstream).
    pub keyframe_bytes: Vec<u8>,
    /// Error-bound correction stream (empty when no bound was requested).
    pub aux_bytes: Vec<u8>,
    /// Sampling seed the decoder must reuse to replay the generation.
    pub sampling_seed: u64,
    /// Denoising steps to use at decompression.
    pub denoising_steps: usize,
}

/// Derives the sampling seed of the block at temporal index `block_index`
/// from the configuration's base seed (SplitMix64 mixing).  Distinct indices
/// yield independent noise realisations; the same `(base, index)` pair always
/// yields the same seed, which is what makes parallel compression
/// bit-identical to sequential.
pub fn derive_block_seed(base: u64, block_index: u64) -> u64 {
    let mut z = base
        ^ block_index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CompressedBlock {
    /// Total compressed size in bytes (Eq. 11 denominator).  This is exactly
    /// `self.encode().len()` — the reported size *is* the serialized size
    /// (proven by `tests/container_roundtrip.rs`).
    pub fn total_bytes(&self) -> usize {
        // Fixed header: frames/height/width/steps (u32 each) + seed (u64) +
        // latent range (2 × f32), then per-frame norms and the two
        // length-prefixed streams.
        16 + 8
            + 8
            + self.frame_norms.len() * 8
            + (8 + self.keyframe_bytes.len())
            + (8 + self.aux_bytes.len())
    }

    /// Serialises the block into its container frame (the exact layout
    /// [`CompressedBlock::total_bytes`] accounts for).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_bytes());
        out.extend_from_slice(&(self.frames as u32).to_le_bytes());
        out.extend_from_slice(&(self.height as u32).to_le_bytes());
        out.extend_from_slice(&(self.width as u32).to_le_bytes());
        out.extend_from_slice(&(self.denoising_steps as u32).to_le_bytes());
        out.extend_from_slice(&self.sampling_seed.to_le_bytes());
        out.extend_from_slice(&self.latent_range.0.to_le_bytes());
        out.extend_from_slice(&self.latent_range.1.to_le_bytes());
        for &(mean, range) in &self.frame_norms {
            out.extend_from_slice(&mean.to_le_bytes());
            out.extend_from_slice(&range.to_le_bytes());
        }
        write_section(&mut out, &self.keyframe_bytes);
        write_section(&mut out, &self.aux_bytes);
        debug_assert_eq!(out.len(), self.total_bytes());
        out
    }

    /// Parses a frame produced by [`CompressedBlock::encode`].
    pub fn decode(frame: &[u8]) -> Result<Self, ContainerError> {
        let mut reader = ByteReader::new(frame);
        let frames = reader.read_u32()? as usize;
        let height = reader.read_u32()? as usize;
        let width = reader.read_u32()? as usize;
        let denoising_steps = reader.read_u32()? as usize;
        let sampling_seed = reader.read_u64()?;
        let latent_range = (reader.read_f32()?, reader.read_f32()?);
        if frames == 0 {
            return Err(ContainerError::Corrupt("block frame declares zero frames"));
        }
        // Validate the declared count against the bytes actually present
        // before allocating: a corrupt frame must surface as `Truncated`,
        // not as a multi-gigabyte allocation.
        if reader.remaining() / 8 < frames {
            return Err(ContainerError::Truncated {
                needed: frames.saturating_mul(8),
                available: reader.remaining(),
            });
        }
        let mut frame_norms = Vec::with_capacity(frames);
        for _ in 0..frames {
            frame_norms.push((reader.read_f32()?, reader.read_f32()?));
        }
        let keyframe_bytes = reader.read_section()?.to_vec();
        let aux_bytes = reader.read_section()?.to_vec();
        reader.expect_end()?;
        Ok(CompressedBlock {
            frames,
            height,
            width,
            frame_norms,
            latent_range,
            keyframe_bytes,
            aux_bytes,
            sampling_seed,
            denoising_steps,
        })
    }

    /// Number of uncompressed bytes the block represents.
    pub fn original_bytes(&self) -> usize {
        self.frames * self.height * self.width * std::mem::size_of::<f32>()
    }

    /// Compression ratio of this block.
    pub fn compression_ratio(&self) -> f64 {
        self.original_bytes() as f64 / self.total_bytes() as f64
    }
}

/// Errors surfaced by [`GldCompressor::try_train`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GldError {
    /// `train` was called with no variables at all.
    NoTrainingData,
    /// The VAE and diffusion configs disagree on latent channel count.
    LatentChannelMismatch {
        /// Channels the VAE produces.
        vae: usize,
        /// Channels the diffusion model expects.
        diffusion: usize,
    },
}

impl fmt::Display for GldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GldError::NoTrainingData => write!(
                f,
                "GldCompressor::train requires at least one training variable, got an empty slice"
            ),
            GldError::LatentChannelMismatch { vae, diffusion } => write!(
                f,
                "VAE and diffusion latent channel counts must match (VAE {vae}, diffusion {diffusion})"
            ),
        }
    }
}

impl std::error::Error for GldError {}

/// The trained generative latent diffusion compressor.
pub struct GldCompressor {
    config: GldConfig,
    vae: Vae,
    diffusion: ConditionalDiffusion,
    error_bound: PcaErrorBound,
}

impl GldCompressor {
    /// Trains both stages on the given variables (paper §3.4) and returns
    /// the ready-to-use compressor.  Panics with a descriptive message on
    /// invalid input; use [`GldCompressor::try_train`] to handle the error.
    pub fn train(config: GldConfig, variables: &[Variable], budget: GldTrainingBudget) -> Self {
        Self::try_train(config, variables, budget).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`GldCompressor::train`].
    pub fn try_train(
        config: GldConfig,
        variables: &[Variable],
        budget: GldTrainingBudget,
    ) -> Result<Self, GldError> {
        if config.vae.latent_channels != config.diffusion.latent_channels {
            return Err(GldError::LatentChannelMismatch {
                vae: config.vae.latent_channels,
                diffusion: config.diffusion.latent_channels,
            });
        }
        let Some(first) = variables.first() else {
            return Err(GldError::NoTrainingData);
        };
        // Stage one: VAE with hyperprior on random crops.
        let patch = first.frames.dim(1).min(first.frames.dim(2)).min(16);
        let mut vae_trainer = VaeTrainer::new(config.vae, patch, 2);
        vae_trainer.train(variables, budget.vae_steps);
        let vae = vae_trainer.into_model();

        // Stage two: freeze the encoder, train the latent diffusion model on
        // normalised latent blocks.
        let blocks = Self::latent_training_blocks(&config, &vae, variables);
        let partition = config.partition();
        let mut diff_trainer = DiffusionTrainer::new(config.diffusion);
        diff_trainer.train(&blocks, &partition, budget.diffusion_steps);
        if budget.fine_tune_steps > 0 {
            diff_trainer.fine_tune(
                &blocks,
                &partition,
                budget.fine_tune_schedule,
                budget.fine_tune_steps,
            );
        }
        let diffusion = diff_trainer.into_model();

        Ok(Self::from_parts(config, vae, diffusion))
    }

    /// Assembles a compressor from already-trained components.
    pub fn from_parts(config: GldConfig, vae: Vae, diffusion: ConditionalDiffusion) -> Self {
        GldCompressor {
            error_bound: PcaErrorBound::new(config.error_bound),
            config,
            vae,
            diffusion,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GldConfig {
        &self.config
    }

    /// The trained VAE (shared with the learned baselines in the benches).
    pub fn vae(&self) -> &Vae {
        &self.vae
    }

    /// The trained diffusion model.
    pub fn diffusion(&self) -> &ConditionalDiffusion {
        &self.diffusion
    }

    /// Mutable access to the diffusion model (used by the denoising-step
    /// ablation to retime the schedule).
    pub fn diffusion_mut(&mut self) -> &mut ConditionalDiffusion {
        &mut self.diffusion
    }

    /// Overrides the number of denoising steps used at decompression.
    pub fn set_denoising_steps(&mut self, steps: usize) {
        self.config.denoising_steps = steps.max(1);
    }

    /// Builds normalised latent training blocks from full-resolution
    /// variables: each temporal window of N frames is encoded frame-by-frame
    /// with the frozen VAE, quantised and min-max normalised to `[-1, 1]`
    /// (Algorithm 1, lines 3–5).  Windows are encoded in parallel; the
    /// returned order is deterministic (variable order, then temporal order)
    /// regardless of worker scheduling.
    pub fn latent_training_blocks(
        config: &GldConfig,
        vae: &Vae,
        variables: &[Variable],
    ) -> Vec<Tensor> {
        let jobs: Vec<(usize, usize)> = variables
            .iter()
            .enumerate()
            .flat_map(|(vi, variable)| {
                let count =
                    gld_datasets::blocks::temporal_window_count(variable, config.block_frames);
                (0..count).map(move |wi| (vi, wi))
            })
            .collect();
        assert!(
            !jobs.is_empty(),
            "no complete temporal windows available for training"
        );
        jobs.par_iter()
            .with_min_len(1)
            .map(|&(vi, wi)| {
                let window = gld_datasets::blocks::temporal_window_at(
                    &variables[vi],
                    config.block_frames,
                    wi,
                );
                let (normalized, _) = Self::normalize_frames(&window.data);
                let y = vae.quantize_latent(&normalized);
                let (y_norm, _, _) = y.normalize_minmax();
                y_norm
            })
            .collect()
    }

    fn normalize_frames(block: &Tensor) -> (Tensor, Vec<FrameNorm>) {
        let n = block.dim(0);
        let (h, w) = (block.dim(1), block.dim(2));
        let mut norms = Vec::with_capacity(n);
        let mut frames = Vec::with_capacity(n);
        for t in 0..n {
            let frame = block.slice_axis(0, t, t + 1);
            let (norm, mean, range) = frame.normalize_mean_range();
            norms.push(FrameNorm { mean, range });
            frames.push(norm);
        }
        let refs: Vec<&Tensor> = frames.iter().collect();
        (Tensor::concat(&refs, 0).reshape(&[n, 1, h, w]), norms)
    }

    fn denormalize_frames(frames: &Tensor, norms: &[(f32, f32)]) -> Tensor {
        let n = frames.dim(0);
        let (h, w) = (frames.dim(2), frames.dim(3));
        let flat = frames.reshape(&[n, h, w]);
        let mut out = Vec::with_capacity(n);
        for (t, &(mean, range)) in norms.iter().enumerate() {
            out.push(
                flat.slice_axis(0, t, t + 1)
                    .denormalize_mean_range(mean, range),
            );
        }
        let refs: Vec<&Tensor> = out.iter().collect();
        Tensor::concat(&refs, 0)
    }

    /// Compresses one block `[N, H, W]`.  When `nrmse_target` is given the
    /// error-bound module adds a correction stream guaranteeing that the
    /// decompressed block satisfies the bound.  Standalone blocks use
    /// temporal index 0; multi-block paths go through
    /// [`Codec::compress_variable`] which passes each window's real index.
    ///
    /// Note: this inherent method (structured [`CompressedBlock`] in/out)
    /// shadows [`Codec::compress_block`] (byte frames in/out) on the
    /// concrete type; call the trait method via UFCS or a `&dyn Codec` when
    /// you want the framed-bytes interface.
    pub fn compress_block(&self, block: &Tensor, nrmse_target: Option<f32>) -> CompressedBlock {
        let (compressed, _) = self.compress_block_with_outcome(block, nrmse_target);
        compressed
    }

    /// Like [`GldCompressor::compress_block`], also returning the error-bound
    /// diagnostics (when a bound was requested).
    pub fn compress_block_with_outcome(
        &self,
        block: &Tensor,
        nrmse_target: Option<f32>,
    ) -> (CompressedBlock, Option<ErrorBoundOutcome>) {
        self.compress_block_with_outcome_at(block, nrmse_target, 0)
    }

    /// Index-aware compression: the sampling seed is derived from the config
    /// seed and `block_index` so distinct blocks of one variable never share
    /// a noise realisation (the derived seed is stored in the block, keeping
    /// decompression deterministic).
    pub fn compress_block_with_outcome_at(
        &self,
        block: &Tensor,
        nrmse_target: Option<f32>,
        block_index: u64,
    ) -> (CompressedBlock, Option<ErrorBoundOutcome>) {
        assert_eq!(block.rank(), 3, "block must be [N, H, W]");
        assert_eq!(
            block.dim(0),
            self.config.block_frames,
            "block must have N = {} frames",
            self.config.block_frames
        );
        let partition = self.config.partition();
        let (normalized, norms) = Self::normalize_frames(block);
        let y_all = self.vae.quantize_latent(&normalized);
        let y_key = y_all.index_select(0, &partition.conditioning);
        let keyframe_bytes = LatentCodec::new(&self.vae).compress(&y_key);

        let sampling_seed = derive_block_seed(self.config.seed, block_index);
        let mut compressed = CompressedBlock {
            frames: block.dim(0),
            height: block.dim(1),
            width: block.dim(2),
            frame_norms: norms.iter().map(|n| (n.mean, n.range)).collect(),
            latent_range: (y_key.min(), y_key.max()),
            keyframe_bytes,
            aux_bytes: Vec::new(),
            sampling_seed,
            denoising_steps: self.config.denoising_steps,
        };

        let outcome = if let Some(target) = nrmse_target {
            // Replay the decoder to obtain the exact reconstruction the
            // correction must be computed against.
            let recon = self.decompress_block(&compressed);
            let tau = PcaErrorBound::tau_for_nrmse(block, target);
            let (_, aux, outcome) = self.error_bound.apply(block, &recon, tau);
            compressed.aux_bytes = aux;
            Some(outcome)
        } else {
            None
        };
        (compressed, outcome)
    }

    /// Decompresses a block produced by [`GldCompressor::compress_block`].
    pub fn decompress_block(&self, compressed: &CompressedBlock) -> Tensor {
        let partition = self.config.partition();
        assert_eq!(compressed.frames, partition.total, "partition mismatch");
        // 1. Decode keyframe latents (lossless).
        let y_key = LatentCodec::new(&self.vae).decompress(&compressed.keyframe_bytes);
        // 2. Min-max normalise latents using the keyframe range (identical on
        //    both sides because it is derived from decoded keyframes).
        let (lo, hi) = compressed.latent_range;
        let scale = if hi > lo { 2.0 / (hi - lo) } else { 1.0 };
        let y_key_norm = y_key.map(|v| (v - lo) * scale - 1.0);
        // 3. Assemble the conditioning block and generate the missing frames.
        let (kc, kl, kh, kw) = (
            y_key_norm.dim(0),
            y_key_norm.dim(1),
            y_key_norm.dim(2),
            y_key_norm.dim(3),
        );
        assert_eq!(kc, partition.num_conditioning());
        let mut y_cond = Tensor::zeros(&[partition.total, kl, kh, kw]);
        y_cond.index_assign(0, &partition.conditioning, &y_key_norm);
        let mut rng = TensorRng::new(compressed.sampling_seed);
        let y_gen_norm =
            self.diffusion
                .generate(&y_cond, &partition, compressed.denoising_steps, &mut rng);
        // 4. Undo latent normalisation and decode every frame.
        let y_full = y_gen_norm.map(|v| (v + 1.0) / scale + lo);
        let frames = self.vae.decode_latent(&y_full);
        let mut recon = Self::denormalize_frames(&frames, &compressed.frame_norms);
        // 5. Apply the error-bound correction, if present.
        if !compressed.aux_bytes.is_empty() {
            recon = self
                .error_bound
                .apply_from_aux(&recon, &compressed.aux_bytes);
        }
        recon
    }

    /// Compresses every complete temporal window of a variable through the
    /// unified [`Codec`] interface (streaming block executor: parallel,
    /// container-framed, peak memory bounded by the executor queue depth),
    /// returning the decoded per-block structures plus aggregate
    /// `(compression_ratio, nrmse)` statistics.
    pub fn compress_variable(
        &self,
        variable: &Variable,
        nrmse_target: Option<f32>,
    ) -> (Vec<CompressedBlock>, f64, f32) {
        let (container, stats) = Codec::compress_variable(
            self,
            variable,
            self.config.block_frames,
            nrmse_target.map(ErrorTarget::Nrmse),
        );
        let blocks = container
            .blocks()
            .iter()
            .map(|frame| CompressedBlock::decode(frame).expect("self-produced frame"))
            .collect();
        (blocks, stats.compression_ratio, stats.nrmse)
    }
}

impl Codec for GldCompressor {
    fn name(&self) -> &str {
        "Ours"
    }

    fn id(&self) -> CodecId {
        CodecId::Gld
    }

    fn compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        block_index: u64,
    ) -> Vec<u8> {
        let nrmse_target = target.map(|t| t.nrmse_for(block));
        let (compressed, _) = self.compress_block_with_outcome_at(block, nrmse_target, block_index);
        compressed.encode()
    }

    fn decompress_block(&self, frame: &[u8]) -> Tensor {
        let compressed = CompressedBlock::decode(frame)
            .unwrap_or_else(|e| panic!("invalid GLD block frame: {e}"));
        self.decompress_block(&compressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gld_datasets::{generate, DatasetKind, FieldSpec};
    use gld_tensor::stats::nrmse;

    fn quick_compressor() -> (GldCompressor, Variable) {
        let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 31);
        let config = GldConfig::tiny();
        let compressor = GldCompressor::train(config, &ds.variables, GldTrainingBudget::tiny());
        (compressor, ds.variables.into_iter().next().unwrap())
    }

    #[test]
    fn roundtrip_preserves_shape_and_keyframe_structure() {
        let (compressor, variable) = quick_compressor();
        let block = variable.frames.slice_axis(0, 0, 8);
        let compressed = compressor.compress_block(&block, None);
        assert_eq!(compressed.frames, 8);
        assert!(compressed.total_bytes() > 0);
        assert!(compressed.total_bytes() < compressed.original_bytes());
        let recon = compressor.decompress_block(&compressed);
        assert_eq!(recon.dims(), block.dims());
        assert!(recon.data().iter().all(|v| v.is_finite()));
        // Without the error-bound stream reconstruction error is bounded but
        // non-trivial.
        assert!(nrmse(&block, &recon) < 0.6);
    }

    #[test]
    fn decompression_is_deterministic() {
        let (compressor, variable) = quick_compressor();
        let block = variable.frames.slice_axis(0, 0, 8);
        let compressed = compressor.compress_block(&block, None);
        let a = compressor.decompress_block(&compressed);
        let b = compressor.decompress_block(&compressed);
        assert_eq!(a, b, "decompression must be reproducible (stored seed)");
    }

    #[test]
    fn error_bound_is_respected_end_to_end() {
        let (compressor, variable) = quick_compressor();
        let block = variable.frames.slice_axis(0, 0, 8);
        let target = 5e-3;
        let (compressed, outcome) = compressor.compress_block_with_outcome(&block, Some(target));
        assert!(outcome.is_some());
        assert!(!compressed.aux_bytes.is_empty() || outcome.unwrap().coefficients == 0);
        let recon = compressor.decompress_block(&compressed);
        let achieved = nrmse(&block, &recon);
        assert!(
            achieved <= target * 1.01,
            "NRMSE {achieved} exceeds requested bound {target}"
        );
    }

    #[test]
    fn keyframes_only_storage_beats_all_frame_storage() {
        // The headline structural claim: storing keyframe latents + diffusion
        // costs fewer bytes than storing every frame's latents through the
        // same VAE.
        let (compressor, variable) = quick_compressor();
        let block = variable.frames.slice_axis(0, 0, 8);
        let ours = compressor.compress_block(&block, None).total_bytes();
        let all_frames = gld_vae::FrameCodec::new(compressor.vae())
            .compress(&block)
            .len();
        assert!(
            ours < all_frames,
            "keyframe-only storage ({ours} B) should beat per-frame storage ({all_frames} B)"
        );
    }

    #[test]
    fn tighter_bound_costs_more_and_achieves_more() {
        let (compressor, variable) = quick_compressor();
        let block = variable.frames.slice_axis(0, 0, 8);
        let loose = compressor.compress_block(&block, Some(2e-2));
        let tight = compressor.compress_block(&block, Some(2e-3));
        assert!(tight.total_bytes() >= loose.total_bytes());
        let recon_tight = compressor.decompress_block(&tight);
        let recon_loose = compressor.decompress_block(&loose);
        assert!(nrmse(&block, &recon_tight) <= nrmse(&block, &recon_loose) + 1e-6);
    }

    #[test]
    fn compress_variable_aggregates_blocks() {
        let (compressor, variable) = quick_compressor();
        let (blocks, ratio, err) = compressor.compress_variable(&variable, Some(1e-2));
        assert_eq!(blocks.len(), 2); // 16 frames / N = 8
        assert!(ratio > 1.0, "aggregate ratio {ratio}");
        assert!(err <= 1e-2 * 1.01, "aggregate NRMSE {err}");
    }
}
