//! The denoising network: a compact UNet-style residual network with
//! factorized space-time attention (paper §3.2, adapted from the video
//! diffusion architecture of Ho et al.).
//!
//! The input is a latent block `[N, C, h, w]` where `N` is the temporal
//! dimension.  Temporal attention reshapes to `(h·w) × N × C` and attends
//! along time; spatial attention reshapes to `N × (h·w) × C` and attends
//! within each frame — exactly the factorization described in the paper.

use crate::config::DiffusionConfig;
use gld_nn::prelude::*;
use gld_tensor::TensorRng;

/// One residual convolution block with group normalisation and a timestep
/// shift.
struct ResBlock {
    norm1: GroupNorm,
    conv1: Conv2d,
    norm2: GroupNorm,
    conv2: Conv2d,
    time_proj: Linear,
}

impl ResBlock {
    fn new(name: &str, channels: usize, time_dim: usize, rng: &mut TensorRng) -> Self {
        ResBlock {
            norm1: GroupNorm::new(&format!("{name}.norm1"), 1, channels),
            conv1: Conv2d::new(&format!("{name}.conv1"), channels, channels, 3, 1, 1, rng),
            norm2: GroupNorm::new(&format!("{name}.norm2"), 1, channels),
            conv2: Conv2d::new(&format!("{name}.conv2"), channels, channels, 3, 1, 1, rng),
            time_proj: Linear::new(&format!("{name}.time"), time_dim, channels, true, rng),
        }
    }

    fn forward(&self, tape: &Tape, x: &Var, temb: &Var) -> Var {
        let channels = x.dim(1);
        let h = self.norm1.forward(tape, x).silu();
        let h = self.conv1.forward(tape, &h);
        // Timestep shift: [1, C] -> [1, C, 1, 1] broadcast over frames/space.
        let shift = self
            .time_proj
            .forward(tape, temb)
            .reshape(&[1, channels, 1, 1]);
        let h = h.add(&shift);
        let h = self.norm2.forward(tape, &h).silu();
        let h = self.conv2.forward(tape, &h);
        h.add(x)
    }

    fn parameters(&self) -> ParameterSet {
        let mut set = ParameterSet::new();
        set.extend(&self.norm1.parameters());
        set.extend(&self.conv1.parameters());
        set.extend(&self.norm2.parameters());
        set.extend(&self.conv2.parameters());
        set.extend(&self.time_proj.parameters());
        set
    }
}

/// Factorized space-time attention: temporal attention followed by spatial
/// attention, each with a residual connection.
struct SpaceTimeAttention {
    temporal: SelfAttention,
    spatial: SelfAttention,
}

impl SpaceTimeAttention {
    fn new(name: &str, channels: usize, heads: usize, rng: &mut TensorRng) -> Self {
        SpaceTimeAttention {
            temporal: SelfAttention::new(&format!("{name}.temporal"), channels, heads, rng),
            spatial: SelfAttention::new(&format!("{name}.spatial"), channels, heads, rng),
        }
    }

    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let dims = x.dims();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        // Temporal attention: [(h·w), N, C].
        let t_in = x.permute(&[2, 3, 0, 1]).reshape(&[h * w, n, c]);
        let t_out = self.temporal.forward(tape, &t_in);
        let t_res = t_in.add(&t_out);
        // Back to [N, C, h, w].
        let x = t_res.reshape(&[h, w, n, c]).permute(&[2, 3, 0, 1]);
        // Spatial attention: [N, (h·w), C].
        let s_in = x.permute(&[0, 2, 3, 1]).reshape(&[n, h * w, c]);
        let s_out = self.spatial.forward(tape, &s_in);
        let s_res = s_in.add(&s_out);
        s_res.reshape(&[n, h, w, c]).permute(&[0, 3, 1, 2])
    }

    fn parameters(&self) -> ParameterSet {
        let mut set = ParameterSet::new();
        set.extend(&self.temporal.parameters());
        set.extend(&self.spatial.parameters());
        set
    }
}

/// The denoising network ε_θ(yᴺ_t, t).
pub struct SpaceTimeUnet {
    config: DiffusionConfig,
    time_embed: TimeEmbedding,
    conv_in: Conv2d,
    res1: ResBlock,
    attn1: SpaceTimeAttention,
    res2: ResBlock,
    attn2: SpaceTimeAttention,
    norm_out: GroupNorm,
    conv_out: Conv2d,
}

impl SpaceTimeUnet {
    /// Builds the network with freshly initialised weights.
    pub fn new(config: DiffusionConfig) -> Self {
        let mut rng = TensorRng::new(config.seed.wrapping_add(17));
        let m = config.model_channels;
        let td = config.time_embed_dim;
        SpaceTimeUnet {
            config,
            time_embed: TimeEmbedding::new("unet.time", td, td, &mut rng),
            conv_in: Conv2d::new("unet.conv_in", config.latent_channels, m, 3, 1, 1, &mut rng),
            res1: ResBlock::new("unet.res1", m, td, &mut rng),
            attn1: SpaceTimeAttention::new("unet.attn1", m, config.heads, &mut rng),
            res2: ResBlock::new("unet.res2", m, td, &mut rng),
            attn2: SpaceTimeAttention::new("unet.attn2", m, config.heads, &mut rng),
            norm_out: GroupNorm::new("unet.norm_out", 1, m),
            conv_out: Conv2d::new(
                "unet.conv_out",
                m,
                config.latent_channels,
                3,
                1,
                1,
                &mut rng,
            ),
        }
    }

    /// The configuration used to build the network.
    pub fn config(&self) -> &DiffusionConfig {
        &self.config
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> ParameterSet {
        let mut set = ParameterSet::new();
        set.extend(&self.time_embed.parameters());
        set.extend(&self.conv_in.parameters());
        set.extend(&self.res1.parameters());
        set.extend(&self.attn1.parameters());
        set.extend(&self.res2.parameters());
        set.extend(&self.attn2.parameters());
        set.extend(&self.norm_out.parameters());
        set.extend(&self.conv_out.parameters());
        set
    }

    /// Predicts the noise for a latent block `[N, C, h, w]` at timestep `t`.
    pub fn forward(&self, tape: &Tape, y_t: &Var, t: usize) -> Var {
        assert_eq!(
            y_t.dim(1),
            self.config.latent_channels,
            "latent channel mismatch"
        );
        let temb = self.time_embed.forward(tape, &[t]); // [1, td]
        let h = self.conv_in.forward(tape, y_t);
        let h = self.res1.forward(tape, &h, &temb);
        let h = self.attn1.forward(tape, &h);
        let h = self.res2.forward(tape, &h, &temb);
        let h = self.attn2.forward(tape, &h);
        let h = self.norm_out.forward(tape, &h).silu();
        self.conv_out.forward(tape, &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gld_tensor::Tensor;

    #[test]
    fn forward_shape_matches_input() {
        let unet = SpaceTimeUnet::new(DiffusionConfig::tiny());
        let mut rng = TensorRng::new(3);
        let y = rng.randn(&[4, 3, 4, 4]);
        let tape = Tape::new();
        let out = unet.forward(&tape, &tape.constant(y.clone()), 10);
        assert_eq!(out.dims(), y.dims());
        assert!(out.value().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn output_depends_on_timestep() {
        let unet = SpaceTimeUnet::new(DiffusionConfig::tiny());
        let mut rng = TensorRng::new(5);
        let y = rng.randn(&[2, 3, 4, 4]);
        let tape = Tape::new();
        let a = unet.forward(&tape, &tape.constant(y.clone()), 1).value();
        let b = unet.forward(&tape, &tape.constant(y), 90).value();
        assert!(a.sub(&b).abs().max() > 1e-5, "timestep has no effect");
    }

    #[test]
    fn output_depends_on_other_frames_via_temporal_attention() {
        // Changing the content of frame 3 must change the prediction for
        // frame 0 — this is exactly what lets keyframe conditioning steer the
        // generated frames.
        let unet = SpaceTimeUnet::new(DiffusionConfig::tiny());
        let mut rng = TensorRng::new(7);
        let y = rng.randn(&[4, 3, 4, 4]);
        let mut y2 = y.clone();
        let altered = rng.randn(&[1, 3, 4, 4]).scale(3.0);
        y2.index_assign(0, &[3], &altered);
        let tape = Tape::new();
        let a = unet.forward(&tape, &tape.constant(y), 20).value();
        let b = unet.forward(&tape, &tape.constant(y2), 20).value();
        let frame0_diff = a
            .slice_axis(0, 0, 1)
            .sub(&b.slice_axis(0, 0, 1))
            .abs()
            .max();
        assert!(
            frame0_diff > 1e-6,
            "temporal attention does not propagate information across frames"
        );
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let unet = SpaceTimeUnet::new(DiffusionConfig::tiny());
        let mut rng = TensorRng::new(9);
        let y = rng.randn(&[2, 3, 4, 4]);
        let tape = Tape::new();
        let out = unet.forward(&tape, &tape.constant(y), 5);
        out.square().mean().backward();
        let params = unet.parameters();
        let with_grad = params.iter().filter(|p| p.grad().abs().max() > 0.0).count();
        // All parameters except possibly a few dead-path biases must receive
        // gradient signal.
        assert!(
            with_grad * 10 >= params.len() * 9,
            "only {with_grad}/{} parameters received gradients",
            params.len()
        );
    }

    #[test]
    fn parameter_count_is_reasonable() {
        let unet = SpaceTimeUnet::new(DiffusionConfig::tiny());
        let n = unet.parameters().num_scalars();
        assert!(n > 1_000 && n < 200_000, "unexpected parameter count {n}");
        let _ = Tensor::zeros(&[1]);
    }
}
