//! Rate–distortion sweep helpers shared by the integration tests and the
//! benchmark harness (Figure 3, Figure 4, Figure 5 and the headline-claim
//! summary all consume [`RateSweep`]s).

use serde::{Deserialize, Serialize};

/// One point on a compression-ratio / NRMSE curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Compression ratio (original bytes / compressed bytes).
    pub compression_ratio: f64,
    /// Normalised root mean squared error of the reconstruction.
    pub nrmse: f32,
}

/// A labelled rate–distortion curve for one compressor on one dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateSweep {
    /// Compressor name as shown in the paper's figures.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Swept points, ordered by decreasing error bound.
    pub points: Vec<RatePoint>,
}

impl RateSweep {
    /// Creates an empty sweep.
    pub fn new(method: impl Into<String>, dataset: impl Into<String>) -> Self {
        RateSweep {
            method: method.into(),
            dataset: dataset.into(),
            points: Vec::new(),
        }
    }

    /// Adds a point.
    pub fn push(&mut self, compression_ratio: f64, nrmse: f32) {
        self.points.push(RatePoint {
            compression_ratio,
            nrmse,
        });
    }

    /// The compression ratio this sweep achieves at (or below) the given
    /// NRMSE, estimated by linear interpolation between neighbouring points;
    /// `None` when the curve never reaches that error level.
    pub fn ratio_at_nrmse(&self, target: f32) -> Option<f64> {
        let mut points = self.points.clone();
        points.sort_by(|a, b| a.nrmse.partial_cmp(&b.nrmse).unwrap());
        if points.is_empty() || points[0].nrmse > target {
            return None;
        }
        let mut best = points[0].compression_ratio;
        for pair in points.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            if hi.nrmse <= target {
                best = best.max(hi.compression_ratio);
            } else if lo.nrmse <= target && target < hi.nrmse {
                let t = (target - lo.nrmse) / (hi.nrmse - lo.nrmse).max(1e-12);
                let interp =
                    lo.compression_ratio + (hi.compression_ratio - lo.compression_ratio) * t as f64;
                best = best.max(interp);
            }
        }
        Some(best)
    }

    /// Improvement factor of this sweep over `other` at a matched NRMSE
    /// (`> 1` means this sweep compresses better), or `None` when either
    /// curve does not reach the target error.
    pub fn improvement_over(&self, other: &RateSweep, target_nrmse: f32) -> Option<f64> {
        let ours = self.ratio_at_nrmse(target_nrmse)?;
        let theirs = other.ratio_at_nrmse(target_nrmse)?;
        Some(ours / theirs)
    }

    /// Serialises the sweep as a CSV fragment (`method,dataset,ratio,nrmse`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{:.3},{:.6}\n",
                self.method, self.dataset, p.compression_ratio, p.nrmse
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(points: &[(f64, f32)]) -> RateSweep {
        let mut s = RateSweep::new("m", "d");
        for &(r, e) in points {
            s.push(r, e);
        }
        s
    }

    #[test]
    fn ratio_at_nrmse_interpolates() {
        let s = sweep(&[(10.0, 1e-3), (50.0, 5e-3), (100.0, 1e-2)]);
        // Exact hits.
        assert!((s.ratio_at_nrmse(1e-3).unwrap() - 10.0).abs() < 1e-9);
        assert!((s.ratio_at_nrmse(1e-2).unwrap() - 100.0).abs() < 1e-9);
        // Between points: monotone interpolation.
        let mid = s.ratio_at_nrmse(7.5e-3).unwrap();
        assert!(mid > 50.0 && mid < 100.0);
        // Below the reachable range.
        assert!(s.ratio_at_nrmse(1e-4).is_none());
    }

    #[test]
    fn improvement_factor() {
        let ours = sweep(&[(40.0, 1e-3), (200.0, 1e-2)]);
        let baseline = sweep(&[(10.0, 1e-3), (50.0, 1e-2)]);
        let imp = ours.improvement_over(&baseline, 1e-2).unwrap();
        assert!((imp - 4.0).abs() < 1e-9);
        assert!(baseline.improvement_over(&ours, 1e-2).unwrap() < 1.0);
    }

    #[test]
    fn csv_output_contains_every_point() {
        let s = sweep(&[(10.0, 1e-3), (20.0, 2e-3)]);
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("m,d,10.000"));
    }
}
