//! Spatial resampling: average pooling and nearest-neighbour upsampling.
//!
//! The VAE decoder uses nearest-neighbour upsampling followed by a
//! convolution instead of transposed convolutions (this avoids checkerboard
//! artefacts and keeps the backward pass simple), so only these two
//! primitives are required.

use crate::conv::nchw;
use crate::tensor::Tensor;

/// Average-pools an NCHW tensor with a square window and matching stride.
pub fn avg_pool2d(x: &Tensor, k: usize) -> Tensor {
    assert!(k > 0, "pool window must be positive");
    let (b, c, h, w) = nchw(x);
    assert!(
        h % k == 0 && w % k == 0,
        "avg_pool2d requires spatial dims divisible by the window ({h}x{w} vs {k})"
    );
    let oh = h / k;
    let ow = w / k;
    let mut out = Tensor::zeros(&[b, c, oh, ow]);
    let inv = 1.0 / (k * k) as f32;
    let src = x.data();
    let dst = out.data_mut();
    for bi in 0..b {
        for ci in 0..c {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc = 0.0f32;
                    for dh in 0..k {
                        for dw in 0..k {
                            acc += src[((bi * c + ci) * h + ohi * k + dh) * w + owi * k + dw];
                        }
                    }
                    dst[((bi * c + ci) * oh + ohi) * ow + owi] = acc * inv;
                }
            }
        }
    }
    out
}

/// Backward of [`avg_pool2d`]: distributes each output gradient uniformly
/// over its `k × k` input window.
pub fn avg_pool2d_backward(grad_out: &Tensor, k: usize, h: usize, w: usize) -> Tensor {
    let (b, c, oh, ow) = nchw(grad_out);
    assert_eq!(oh * k, h, "avg_pool2d_backward height mismatch");
    assert_eq!(ow * k, w, "avg_pool2d_backward width mismatch");
    let mut out = Tensor::zeros(&[b, c, h, w]);
    let inv = 1.0 / (k * k) as f32;
    let src = grad_out.data();
    let dst = out.data_mut();
    for bi in 0..b {
        for ci in 0..c {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let g = src[((bi * c + ci) * oh + ohi) * ow + owi] * inv;
                    for dh in 0..k {
                        for dw in 0..k {
                            dst[((bi * c + ci) * h + ohi * k + dh) * w + owi * k + dw] += g;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Nearest-neighbour upsampling of an NCHW tensor by an integer factor.
pub fn upsample_nearest2d(x: &Tensor, factor: usize) -> Tensor {
    assert!(factor > 0, "upsample factor must be positive");
    let (b, c, h, w) = nchw(x);
    let oh = h * factor;
    let ow = w * factor;
    let mut out = Tensor::zeros(&[b, c, oh, ow]);
    let src = x.data();
    let dst = out.data_mut();
    for bi in 0..b {
        for ci in 0..c {
            for ohi in 0..oh {
                let sh = ohi / factor;
                for owi in 0..ow {
                    let sw = owi / factor;
                    dst[((bi * c + ci) * oh + ohi) * ow + owi] =
                        src[((bi * c + ci) * h + sh) * w + sw];
                }
            }
        }
    }
    out
}

/// Backward of [`upsample_nearest2d`]: sums the gradients of all output
/// pixels that map to the same input pixel.
pub fn upsample_nearest2d_backward(grad_out: &Tensor, factor: usize) -> Tensor {
    let (b, c, oh, ow) = nchw(grad_out);
    assert!(
        oh % factor == 0 && ow % factor == 0,
        "upsample backward requires dims divisible by the factor"
    );
    let h = oh / factor;
    let w = ow / factor;
    let mut out = Tensor::zeros(&[b, c, h, w]);
    let src = grad_out.data();
    let dst = out.data_mut();
    for bi in 0..b {
        for ci in 0..c {
            for ohi in 0..oh {
                let sh = ohi / factor;
                for owi in 0..ow {
                    let sw = owi / factor;
                    dst[((bi * c + ci) * h + sh) * w + sw] +=
                        src[((bi * c + ci) * oh + ohi) * ow + owi];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::TensorRng;

    #[test]
    fn avg_pool_known_values() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let y = avg_pool2d(&x, 2);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 3.5);
        assert_eq!(y.at(&[0, 0, 1, 1]), 13.5);
    }

    #[test]
    fn upsample_then_pool_is_identity() {
        let mut rng = TensorRng::new(3);
        let x = rng.randn(&[2, 3, 4, 4]);
        let up = upsample_nearest2d(&x, 2);
        assert_eq!(up.dims(), &[2, 3, 8, 8]);
        let back = avg_pool2d(&up, 2);
        assert!(back.sub(&x).abs().max() < 1e-6);
    }

    #[test]
    fn pool_backward_is_adjoint() {
        let mut rng = TensorRng::new(5);
        let x = rng.randn(&[1, 2, 4, 4]);
        let y = avg_pool2d(&x, 2);
        let gy = rng.randn(y.dims());
        let gx = avg_pool2d_backward(&gy, 2, 4, 4);
        // <pool(x), gy> == <x, pool_backward(gy)>
        let lhs = y.dot(&gy);
        let rhs = x.dot(&gx);
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn upsample_backward_is_adjoint() {
        let mut rng = TensorRng::new(9);
        let x = rng.randn(&[1, 2, 3, 3]);
        let y = upsample_nearest2d(&x, 2);
        let gy = rng.randn(y.dims());
        let gx = upsample_nearest2d_backward(&gy, 2);
        let lhs = y.dot(&gy);
        let rhs = x.dot(&gx);
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn upsample_replicates_pixels() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = upsample_nearest2d(&x, 3);
        assert_eq!(y.dims(), &[1, 1, 6, 6]);
        assert_eq!(y.at(&[0, 0, 0, 2]), 1.0);
        assert_eq!(y.at(&[0, 0, 2, 2]), 1.0);
        assert_eq!(y.at(&[0, 0, 5, 5]), 4.0);
    }
}
