//! Climate-field scenario: compress every variable of a synthetic E3SM-like
//! dataset and compare the learned pipeline against the rule-based SZ3-like
//! and ZFP-like compressors at a matched error bound — a miniature version
//! of the paper's Figure 3(a) experiment.
//!
//! Run with:
//! ```text
//! cargo run --release --example climate_field_compression
//! ```

use gld_baselines::{compression_ratio, ErrorBoundedCompressor, SzCompressor, ZfpLikeCompressor};
use gld_core::{GldCompressor, GldConfig, GldTrainingBudget};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_tensor::stats::{max_abs_error, nrmse};

fn main() {
    let spec = FieldSpec::new(3, 16, 16, 16);
    let dataset = generate(DatasetKind::E3sm, &spec, 7);
    let config = GldConfig::tiny();
    let budget = GldTrainingBudget {
        vae_steps: 250,
        diffusion_steps: 250,
        fine_tune_steps: 0,
        fine_tune_schedule: 16,
    };
    println!(
        "training the learned compressor on {} variables ...",
        dataset.variables.len()
    );
    let compressor = GldCompressor::train(config, &dataset.variables, budget);

    let target_nrmse = 5e-3;
    println!("\n{:<18} {:>14} {:>12}", "method", "ratio", "NRMSE");
    let mut ours_ratio = 0.0;
    for variable in &dataset.variables {
        let (_, ratio, err) = compressor.compress_variable(variable, Some(target_nrmse));
        ours_ratio += ratio / dataset.variables.len() as f64;
        println!(
            "{:<18} {:>13.1}x {:>12.2e}  ({})",
            "Ours", ratio, err, variable.name
        );
    }

    // Rule-based baselines at an absolute bound matched to the same NRMSE.
    for (name, compressor) in [
        (
            "SZ3-like",
            &SzCompressor::new() as &dyn ErrorBoundedCompressor,
        ),
        (
            "ZFP-like",
            &ZfpLikeCompressor::new() as &dyn ErrorBoundedCompressor,
        ),
    ] {
        let mut mean_ratio = 0.0;
        let mut worst_err = 0.0f32;
        for variable in &dataset.variables {
            let frames = &variable.frames;
            let range = frames.max() - frames.min();
            // The NRMSE bound is converted to the point-wise bound the
            // rule-based codecs understand (a conservative mapping).
            let abs_bound = target_nrmse * range;
            let (recon, size) = compressor.roundtrip(frames, abs_bound);
            assert!(max_abs_error(frames, &recon) <= abs_bound * 1.0001);
            mean_ratio += compression_ratio(frames, size) / dataset.variables.len() as f64;
            worst_err = worst_err.max(nrmse(frames, &recon));
        }
        println!("{name:<18} {mean_ratio:>13.1}x {worst_err:>12.2e}");
    }
    println!("\nlearned pipeline mean ratio: {ours_ratio:.1}x (see gld-bench for the full Figure 3 sweep)");
}
