//! # gld-obs
//!
//! Zero-dependency observability for the GLD stack, in the offline-shims
//! spirit: everything here is `std`-only and cheap enough to leave on in
//! production paths.
//!
//! * [`hist`] — fixed-bucket log2-scale latency histograms: lock-free
//!   `AtomicU64` buckets, allocation-free [`Histogram::record`], mergeable
//!   [`HistogramSnapshot`]s with p50/p90/p99/p99.9 interpolation.  Every
//!   estimate lands inside the bucket holding the exact nearest-rank value,
//!   so relative error is bounded by the 1/16 sub-bucket resolution.
//! * [`span`] — lightweight span tracing: [`span!`] opens a guard whose
//!   drop records a monotonic start/stop event into a bounded per-thread
//!   ring; [`span::record`] does the same for intervals measured across
//!   callbacks rather than scopes.
//! * [`log`] — a leveled logger configured by `GLD_LOG=level[,json]`
//!   (human-readable or JSON-lines on stderr) with free-form `key=value`
//!   context such as connection/request ids.
//! * [`flight`] — the flight recorder: recent span and log events, merged
//!   across threads and dumped as JSON-lines on panic (via
//!   [`flight::install_panic_hook`]), on fatal errors, or on demand.
//! * [`registry`] — a process-global registry of named histograms,
//!   counters, and gauges, rendered in Prometheus text exposition format.
//! * [`http`] — a hand-rolled HTTP/1.0 responder serving that exposition
//!   on a dedicated thread (`gld-serviced --metrics-addr`).
//!
//! The process-wide monotonic clock is [`now_ns`]: nanoseconds since the
//! first call in the process, safe to subtract across threads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flight;
pub mod hist;
pub mod http;
pub mod log;
pub mod registry;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use log::Level;
pub use registry::{Counter, Gauge, Registry};
pub use span::SpanGuard;

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide monotonic epoch (the first call in
/// this process).  Cheap, monotonic, and comparable across threads — the
/// timestamp every span, log, and flight event carries.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
