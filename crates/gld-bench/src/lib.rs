//! # gld-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation section on the synthetic datasets (see `DESIGN.md` §4 for the
//! per-experiment index and `EXPERIMENTS.md` for paper-vs-measured numbers).
//!
//! Figure/table binaries (run with `cargo run --release -p gld-bench --bin <name>`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1_datasets` | Table 1 — dataset inventory |
//! | `fig2_keyframe_strategies` | Figure 2 — keyframe strategy comparison |
//! | `fig3_rate_distortion` | Figure 3 — CR vs NRMSE curves on all datasets |
//! | `fig4_interval_ablation` | Figure 4 — interpolation-interval ablation |
//! | `fig5_denoising_steps` | Figure 5 — denoising-step ablation |
//! | `fig6_visual_comparison` | Figure 6 — reconstruction visualisation |
//! | `table2_throughput` | Table 2 — encode/decode throughput |
//! | `headline_summary` | §1/§4.7 headline claims |
//! | `pool_dispatch` | persistent pool vs scoped-thread dispatch, streaming executor |
//! | `service_throughput` | sharded service req/s + p50/p99 latency over the `GLDS` protocol |
//! | `entropy_stage` | container v3 `gld-lz` stage: ratio + throughput, stage-on vs stage-off, CI `--check` gate |
//!
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use gld_core::{
    Codec, ErrorTarget, GldCompressor, GldConfig, GldTrainingBudget, KeyframeStrategy, RateSweep,
};
use gld_datasets::{generate, DatasetKind, FieldSpec, ScientificDataset};
use gld_diffusion::DiffusionConfig;
use gld_vae::VaeConfig;
use std::path::{Path, PathBuf};

/// Sweeps one codec over a dataset through the unified [`Codec`] interface:
/// one [`gld_core::Container`]-accounted `compress_dataset` call per NRMSE
/// target, collected into a labelled rate–distortion curve.  Shared by the
/// Figure 3 and headline-claims binaries so both compute their curves
/// identically.
pub fn codec_sweep(
    codec: &dyn Codec,
    dataset: &ScientificDataset,
    block_frames: usize,
    targets: &[f32],
) -> RateSweep {
    let mut sweep = RateSweep::new(codec.name(), dataset.kind.name());
    for &target in targets {
        let (_, stats) = codec.compress_dataset(
            &dataset.variables,
            block_frames,
            Some(ErrorTarget::Nrmse(target)),
        );
        sweep.push(stats.compression_ratio, stats.nrmse);
    }
    sweep
}

/// Dataset spec used by the figure/table binaries: 2 variables, 32 frames of
/// 16×16.  Two complete N = 16 blocks per variable — small enough that the
/// whole experiment matrix runs on one CPU core, large enough to show the
/// paper's orderings.
pub fn bench_spec() -> FieldSpec {
    FieldSpec::new(2, 32, 16, 16)
}

/// Model configuration used by the figure/table binaries.
pub fn bench_config() -> GldConfig {
    let vae = VaeConfig {
        base_channels: 8,
        latent_channels: 4,
        hyper_channels: 4,
        quant_scale: 16.0,
        lambda: 2e-3,
        ..VaeConfig::default()
    };
    let diffusion = DiffusionConfig {
        latent_channels: vae.latent_channels,
        model_channels: 12,
        heads: 2,
        time_embed_dim: 16,
        train_steps: 200,
        seed: 0,
    };
    GldConfig {
        vae,
        diffusion,
        block_frames: 16,
        strategy: KeyframeStrategy::Interpolation { interval: 3 },
        denoising_steps: 8,
        error_bound: Default::default(),
        seed: 0x6E1D_5EED,
    }
}

/// Training budget used by the figure/table binaries.
pub fn bench_budget() -> GldTrainingBudget {
    GldTrainingBudget {
        vae_steps: 400,
        diffusion_steps: 400,
        fine_tune_steps: 100,
        fine_tune_schedule: 32,
    }
}

/// Generates a dataset and trains the full pipeline on it.
pub fn train_on(kind: DatasetKind, seed: u64) -> (GldCompressor, ScientificDataset) {
    let dataset = generate(kind, &bench_spec(), seed);
    let compressor = GldCompressor::train(bench_config(), &dataset.variables, bench_budget());
    (compressor, dataset)
}

/// Directory where the binaries drop their CSV/JSON artefacts.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes a text artefact into `results/` and reports where it went.
pub fn write_result(name: &str, contents: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write result file");
    println!("[written] {}", path.display());
}

/// Writes a text artefact into the repository root (next to `results/`),
/// used for the `BENCH_*.json` summaries CI consumes.
pub fn write_root_result(name: &str, contents: &str) {
    let path = results_dir()
        .parent()
        .expect("results dir has a parent")
        .join(name);
    std::fs::write(&path, contents).expect("write root result file");
    println!("[written] {}", path.display());
}

/// Formats a compression ratio / error pair the way the paper's plots label
/// points.
pub fn format_point(ratio: f64, nrmse: f32) -> String {
    format!("CR {ratio:8.1}x @ NRMSE {nrmse:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_configuration_is_consistent() {
        let cfg = bench_config();
        assert_eq!(cfg.vae.latent_channels, cfg.diffusion.latent_channels);
        assert_eq!(cfg.block_frames, 16);
        let spec = bench_spec();
        assert!(spec.timesteps >= cfg.block_frames);
        assert_eq!(spec.height % cfg.vae.downsample, 0);
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.exists());
    }

    #[test]
    fn format_point_is_stable() {
        assert_eq!(
            format_point(123.456, 1.5e-3),
            "CR    123.5x @ NRMSE 1.500e-3"
        );
    }
}
