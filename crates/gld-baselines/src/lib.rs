//! # gld-baselines
//!
//! Rule-based error-bounded lossy compressors used as the paper's
//! non-learned baselines:
//!
//! * [`szlike::SzCompressor`] — a prediction-based coder in the spirit of
//!   SZ3: a Lorenzo/interpolation predictor over the reconstructed
//!   neighbourhood, uniform quantisation of the prediction residual with a
//!   user-supplied absolute error bound, and arithmetic coding of the
//!   quantisation codes.
//! * [`zfplike::ZfpLikeCompressor`] — a transform-based coder in the spirit
//!   of ZFP: the data is tiled into small blocks, each block is decorrelated
//!   with the ZFP lifting transform, and coefficients are uniformly
//!   quantised with a conservatively chosen step so the reconstruction stays
//!   inside the requested bound.
//!
//! Both implement the [`ErrorBoundedCompressor`] trait so the benchmark
//! harness can sweep them alongside the learned pipeline.  Absolute ratios
//! differ from the heavily engineered C++ codecs, but the relevant ordering —
//! prediction-based beats transform-based on smooth scientific fields, and
//! both trail learned compressors at matched NRMSE — is preserved, which is
//! what the paper's Figure 3 relies on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod header;
pub mod reference;
pub mod szlike;
pub mod zfplike;

pub use header::BlockHeader;
pub use szlike::{SzCompressor, SzScratch};
pub use zfplike::{ZfpLikeCompressor, ZfpScratch};

use gld_tensor::Tensor;
use std::fmt;

/// Typed failure of a rule-based codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// The input tensor's rank is outside the supported 1–4 window.
    UnsupportedRank {
        /// Rank of the offending tensor.
        rank: usize,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::UnsupportedRank { rank } => write!(
                f,
                "unsupported tensor rank {rank}: rule-based codecs accept rank 1-4"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// A lossy compressor that guarantees a point-wise absolute error bound.
pub trait ErrorBoundedCompressor {
    /// Short display name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Compresses `data` so that every reconstructed value differs from the
    /// original by at most `abs_error`.
    fn compress(&self, data: &Tensor, abs_error: f32) -> Vec<u8>;

    /// Fallible variant of [`ErrorBoundedCompressor::compress`]: unsupported
    /// inputs (e.g. a rank-5 tensor) surface as a typed [`BaselineError`]
    /// instead of a panic.
    fn try_compress(&self, data: &Tensor, abs_error: f32) -> Result<Vec<u8>, BaselineError> {
        Ok(self.compress(data, abs_error))
    }

    /// Reconstructs the tensor from a buffer produced by
    /// [`ErrorBoundedCompressor::compress`].
    fn decompress(&self, bytes: &[u8]) -> Tensor;

    /// Convenience helper returning `(reconstruction, compressed_size)`.
    fn roundtrip(&self, data: &Tensor, abs_error: f32) -> (Tensor, usize) {
        let bytes = self.compress(data, abs_error);
        let size = bytes.len();
        (self.decompress(&bytes), size)
    }
}

/// Compression ratio of an f32 tensor against a compressed byte size.
pub fn compression_ratio(data: &Tensor, compressed_bytes: usize) -> f64 {
    let raw = data.numel() * std::mem::size_of::<f32>();
    raw as f64 / compressed_bytes.max(1) as f64
}
