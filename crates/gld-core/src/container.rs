//! Framed binary container for compressed variables.
//!
//! Every compressor in the stack emits per-block byte *frames*; a container
//! groups the frames of one variable behind a self-describing header so that
//! multi-block compressed output is a single `Vec<u8>` / `Write` stream whose
//! measured length **is** the reported compressed size (Eq. 11 denominator —
//! no hand-counted header arithmetic).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GLDC"
//! 4       2     format version (3 without profiles, 4 with; v1–v3 decode)
//! 6       1     codec id (see [`CodecId`])
//! 7       1     flags (v1/v2: must be 0; v3/v4: see below, unknown bits ignored)
//! 8       4     block count K
//! 12      ...   v4 only: the shared entropy-profile table (see below)
//! ...     ...   K frames, each:
//!                 v4:  u8 stage + u8 profile id + u64 payload length
//!                      + payload + u32 CRC-32 over (stage ‖ profile id ‖ payload)
//!                 v3:  u8 stage + u64 payload length + payload
//!                      + u32 CRC-32 over (stage byte ‖ payload)
//!                 v2:  u64 payload length + payload + u32 CRC-32
//!                 v1:  u64 payload length + payload
//! ```
//!
//! ## v3: the per-frame lossless stage
//!
//! Version 3 runs every frame through the general-purpose `gld-lz` stage
//! (hash-chain LZ77, sequences range-coded with adaptive models) and keeps
//! whichever is smaller, recording the choice in the frame's *stage* byte:
//!
//! | stage | meaning |
//! |---|---|
//! | 0 (`None`) | payload is the codec frame verbatim |
//! | 1 (`Lz`)   | payload is a `gld-lz` stream; decompress to get the frame |
//!
//! The stage squeezes the per-frame fixed costs the codecs cannot remove
//! themselves — serialised model tables, headers, escape literals — and the
//! stored-block economics of `gld-lz` guarantee a frame never grows by more
//! than the one stage byte.  The frame CRC covers the stage byte *and* the
//! payload, so a corrupted stage marker is caught before the stage decoder
//! runs.
//!
//! The v3 flags byte declares the entropy-coder generation of the frame
//! payloads: [`FLAG_RANGE_CODED`] is always set by this build's writers, and
//! a v3 stream *without* it is refused as
//! [`ContainerError::IncompatibleEntropyCoder`] — the typed cross-build
//! error for payloads written by a pre-range-coder build.  (Pre-v3 streams
//! carry no such marker: v2 payloads may come from either side of the
//! range-coder switch and decode on benefit of the doubt, while v1
//! learned-codec streams — which can only predate it — are refused with the
//! same typed error by [`Container::check_entropy_compat`].)  Unknown v3
//! flag bits are ignored so future markers never hard-break this reader.
//!
//! Version 2 appends a CRC-32/IEEE checksum to every frame, so payload
//! corruption surfaces as a typed [`ContainerError::ChecksumMismatch`]
//! naming the damaged block instead of a downstream codec panic.
//!
//! ## v4: shared entropy-model profiles
//!
//! Version 4 adds a **profile table** between the header and the frames:
//! entropy models fitted once per variable and referenced by a one-byte
//! per-frame profile id, so later frames stop paying the per-frame model
//! serialisation and the stage's cold adaptive-model ramp.  The table is
//! framed like a frame — its body runs through the same `gld-lz` stage
//! decision (model histograms and snapshots compress well, and the table
//! is the fixed cost every shared-coding saving has to amortise) and is
//! validated against its own CRC-32 before any entry is interpreted:
//!
//! ```text
//! u8            table stage byte (0 = raw body, 1 = gld-lz-staged body)
//! u64 + bytes   length-prefixed payload (de-stage to recover the body)
//! u32           CRC-32 over (stage byte ‖ payload)
//!
//! body:
//! u8            profile count P (frames reference 1..=P; 0 = no profile)
//! P entries:    u8  generation       (must be PROFILE_GENERATION)
//!               u8  codec id         (must equal the container codec)
//!               u8  dictionary mode  (0 = none, 1 = the container's first block)
//!               u64 length + bytes   shared HistogramModel (empty = none)
//!               u64 length + bytes   gld-lz warm-start snapshot (empty = none)
//! ```
//!
//! A staged (`Lz`) frame whose profile id is non-zero de-stages through the
//! profile's warm adaptive models, with the container's **first block** as
//! seed dictionary when the dictionary mode says so (the first block itself
//! always de-stages dictionary-free — it *is* the dictionary).  A frame's
//! codec payload may reference the profile's histogram model through the
//! codec's own sentinel (see `gld-baselines`); the container just guarantees
//! the profile is validated and available before any payload decodes.
//! Profile references fail **typed**: unknown ids, damaged tables,
//! generation or codec mismatches each surface as their own
//! [`ContainerError`] variant, never a panic.
//!
//! Decoders accept all four versions; [`Container::encode`] writes v4 when
//! the container carries profiles and v3 otherwise ([`Container::encode_v3`]
//! forces the profile-less current format), and [`Container::encode_v2`] /
//! [`Container::encode_v1`] remain for interop with older readers and the
//! version-compat tests.

use crate::crc32::{crc32, Crc32};
use gld_entropy::HistogramModel;
use gld_lz::{LzProfile, LzScratch};
use std::cell::RefCell;
use std::fmt;
use std::io::{Read, Write};

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"GLDC";

/// The staged container version without a profile table (written by
/// [`Container::encode`] for profile-less containers; the v3 framing rules
/// apply to every version at or above this one).
pub const VERSION: u16 = 3;

/// The shared-entropy-profile container version (written by
/// [`Container::encode`] when the container carries profiles).
pub const VERSION_V4: u16 = 4;

/// Generation marker of a serialised entropy profile.  Bumped whenever the
/// coder state a profile snapshots changes shape, so a profile written by an
/// incompatible build fails typed instead of decoding garbage.
pub const PROFILE_GENERATION: u8 = 1;

/// Most profiles one container can carry (ids are one byte, 0 = none).
pub const MAX_PROFILES: usize = 255;

/// The checksummed but stage-less container version (still decodable;
/// written for stage-incapable peers by [`Container::encode_v2`]).
pub const VERSION_V2: u16 = 2;

/// The initial, checksum-less container version (still decodable).
pub const VERSION_V1: u16 = 1;

/// v3 flags bit: frame payloads are entropy-coded with the table-driven
/// range coder (always set by this build's writers).
pub const FLAG_RANGE_CODED: u8 = 0b1;

/// Frame stage byte: the payload is the codec frame verbatim.
pub const STAGE_NONE: u8 = 0;

/// Frame stage byte: the payload is a `gld-lz` stream.
pub const STAGE_LZ: u8 = 1;

/// Bytes of per-frame checksum trailer in a v2/v3 container.
pub const FRAME_CRC_LEN: usize = 4;

/// Bytes of per-frame stage marker in a v3 container.
pub const FRAME_STAGE_LEN: usize = 1;

/// Hard cap on a container's **total** de-staged frame bytes — matches the
/// wire protocol's body cap.  The budget is shared by every frame of one
/// decode, so a malicious container of many tiny `Lz` frames each
/// declaring gigabytes cannot amplify a few wire bytes into unbounded
/// allocation (each frame's cap is whatever budget the earlier frames left
/// over).
pub const MAX_DESTAGE_BUDGET: usize = 1 << 30;

/// Fixed header length in bytes (magic + version + codec + flags + count).
pub const HEADER_LEN: usize = 12;

thread_local! {
    /// Stage scratch for the buffered container paths (`push`,
    /// `from_blocks`, `ContainerWriter::write_frame`); the streaming
    /// executor carries its own in `CodecScratch`.
    static STAGE_SCRATCH: RefCell<LzScratch> = RefCell::new(LzScratch::new());
}

/// Runs the adaptive stage decision for one frame: `Some(stream)` iff the
/// staged stream is strictly smaller than the frame — the single definition
/// shared by the buffered paths here and the executor's worker threads
/// (`CodecScratch`), which is what keeps their containers bit-identical.
pub fn stage_frame(frame: &[u8], scratch: &mut LzScratch) -> Option<Vec<u8>> {
    let t0_ns = gld_obs::now_ns();
    let staged = gld_lz::compress_if_smaller(frame, scratch);
    stage_lz_ns().record(gld_obs::now_ns().saturating_sub(t0_ns));
    staged
}

/// Pre-resolved stage-latency histogram (`gld_stage_lz_ns`): covers the
/// whole per-frame stage decision — compress plus the smaller-than-input
/// test — on every path, cold or warm.  One registry lookup per process.
fn stage_lz_ns() -> &'static gld_obs::Histogram {
    static H: std::sync::OnceLock<std::sync::Arc<gld_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| gld_obs::registry::histogram("gld_stage_lz_ns", &[]))
}

/// The v4 stage decision under a shared profile: warm adaptive models plus
/// the profile's seed dictionary.  Same economics as [`stage_frame`] — the
/// staged stream is returned only when strictly smaller — and the same
/// single-definition rule: the executor's workers and the buffered paths
/// both call this, so parallel and sequential v4 containers stay
/// bit-identical.
pub fn stage_frame_profiled(
    frame: &[u8],
    dict: &[u8],
    profile: &LzProfile,
    scratch: &mut LzScratch,
) -> Option<Vec<u8>> {
    let t0_ns = gld_obs::now_ns();
    let staged = gld_lz::compress_if_smaller_profiled(frame, dict, profile, scratch);
    stage_lz_ns().record(gld_obs::now_ns().saturating_sub(t0_ns));
    staged
}

/// How a profile seeds the stage's match window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum DictMode {
    /// No seed dictionary: every frame's window starts empty.
    #[default]
    None = 0,
    /// The container's **first block** (its unstaged codec bytes) seeds the
    /// window of every later frame.  The first block itself de-stages
    /// dictionary-free, so the dictionary costs nothing on the wire — the
    /// decoder reuses bytes it has already produced.
    FirstBlock = 1,
}

impl DictMode {
    fn from_u8(byte: u8) -> Result<Self, ContainerError> {
        match byte {
            0 => Ok(DictMode::None),
            1 => Ok(DictMode::FirstBlock),
            _ => Err(ContainerError::Corrupt("unknown profile dictionary mode")),
        }
    }
}

/// One shared entropy-model profile: everything a variable's frames reuse
/// instead of refitting per frame.  Serialised once in the v4 profile table
/// and referenced by the frames' one-byte profile id.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EntropyProfile {
    /// Histogram model shared by the frame payloads (codecs reference it
    /// through their model-external sentinel instead of embedding a
    /// per-frame copy).  `None` when only the stage is profiled.
    pub model: Option<HistogramModel>,
    /// Warm-start snapshot for the `gld-lz` stage's adaptive models.
    pub lz: Option<LzProfile>,
    /// How the stage's match window is seeded.
    pub dict_mode: DictMode,
}

impl EntropyProfile {
    /// Serialised size of this profile's table entry in bytes.
    fn entry_len(&self) -> usize {
        3 + 8
            + self.model.as_ref().map_or(0, |m| m.header_bytes())
            + 8
            + self.lz.as_ref().map_or(0, |_| gld_lz::PROFILE_BYTES)
    }

    /// The seed dictionary this profile selects for `block` out of the
    /// container's unstaged frames (the first block is its own dictionary
    /// and therefore seeds empty).
    pub fn dict_for_block<'a>(&self, block: usize, blocks: &'a [Vec<u8>]) -> &'a [u8] {
        match self.dict_mode {
            DictMode::None => &[],
            DictMode::FirstBlock => {
                if block == 0 {
                    &[]
                } else {
                    blocks.first().map(Vec::as_slice).unwrap_or(&[])
                }
            }
        }
    }
}

fn stage_frame_pooled(frame: &[u8]) -> Option<Vec<u8>> {
    STAGE_SCRATCH.with(|slot| match slot.try_borrow_mut() {
        Ok(mut scratch) => stage_frame(frame, &mut scratch),
        // Re-entrant call on this thread (a codec staging from inside a
        // staging callback): fall back to a fresh scratch — output is
        // identical either way.
        Err(_) => stage_frame(frame, &mut LzScratch::new()),
    })
}

/// Identifies which compressor produced the frames in a container.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// The generative latent diffusion compressor ("Ours").
    Gld = 1,
    /// SZ3-like prediction-based rule compressor.
    SzLike = 2,
    /// ZFP-like transform-based rule compressor.
    ZfpLike = 3,
    /// CDC analogue, signal-predicting variant.
    CdcX = 4,
    /// CDC analogue, noise-predicting variant.
    CdcEps = 5,
    /// GCD analogue (3-D block-based CDC).
    Gcd = 6,
    /// VAE with super-resolution refinement.
    VaeSr = 7,
}

impl CodecId {
    /// Parses a codec id byte.
    pub fn from_u8(byte: u8) -> Result<Self, ContainerError> {
        Ok(match byte {
            1 => CodecId::Gld,
            2 => CodecId::SzLike,
            3 => CodecId::ZfpLike,
            4 => CodecId::CdcX,
            5 => CodecId::CdcEps,
            6 => CodecId::Gcd,
            7 => CodecId::VaeSr,
            other => return Err(ContainerError::UnknownCodec(other)),
        })
    }

    /// Whether this codec's frames embed latent entropy bitstreams from the
    /// learned pipeline (GLD and the learned baselines).  Containers of
    /// these codecs at version 1 can only have been written before the
    /// range-coder switch, which is what
    /// [`Container::check_entropy_compat`] keys on.
    pub fn learned(self) -> bool {
        matches!(
            self,
            CodecId::Gld | CodecId::CdcX | CodecId::CdcEps | CodecId::Gcd | CodecId::VaeSr
        )
    }
}

/// Errors produced while decoding a container or a block frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainerError {
    /// The stream does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The stream's format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The codec id byte is not a known [`CodecId`].
    UnknownCodec(u8),
    /// The stream ended before the declared content.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bytes remained after the declared content.
    TrailingBytes(usize),
    /// A v2/v3 frame's content does not match its stored CRC-32.
    ChecksumMismatch {
        /// Index of the damaged block.
        block: usize,
        /// Checksum stored in the stream.
        stored: u32,
        /// Checksum computed over the content actually present.
        computed: u32,
    },
    /// A v3 frame's stage byte is not a known stage.
    UnknownStage {
        /// Index of the offending block.
        block: usize,
        /// The unrecognised stage byte.
        stage: u8,
    },
    /// A v3 frame's `Lz` stage payload failed to de-stage.
    StageDecode {
        /// Index of the offending block.
        block: usize,
        /// The stage decoder's typed failure.
        error: gld_lz::LzError,
    },
    /// The stream's entropy payloads were written by a build whose coder
    /// this build cannot replay: a v3 stream without [`FLAG_RANGE_CODED`],
    /// or a v1 learned-codec stream (which can only predate the range
    /// coder).  v2 streams carry no coder marker and decode on benefit of
    /// the doubt — re-encode them with a current writer to get the explicit
    /// v3 marker.
    IncompatibleEntropyCoder {
        /// The stream's container version.
        version: u16,
        /// The codec whose payloads are unreadable.
        codec: CodecId,
    },
    /// A frame references a profile id the table does not define.
    UnknownProfile {
        /// Index of the offending block.
        block: usize,
        /// The undefined profile id.
        profile: u8,
    },
    /// The v4 profile table does not match its stored CRC-32.
    ProfileChecksumMismatch {
        /// Checksum stored in the stream.
        stored: u32,
        /// Checksum computed over the table actually present.
        computed: u32,
    },
    /// A profile entry was written by an incompatible coder generation.
    ProfileGenerationMismatch {
        /// Index of the offending profile entry (0-based).
        profile: usize,
        /// The generation byte found (this build writes
        /// [`PROFILE_GENERATION`]).
        generation: u8,
    },
    /// A profile entry's codec id does not match the container's codec.
    ProfileCodecMismatch {
        /// Index of the offending profile entry (0-based).
        profile: usize,
        /// The codec id byte the entry declares.
        codec: u8,
    },
    /// A profile entry's shared histogram model failed to deserialise.
    ProfileModel {
        /// Index of the offending profile entry (0-based).
        profile: usize,
        /// The model deserialiser's typed failure.
        error: gld_entropy::ModelDecodeError,
    },
    /// A profile entry's stage warm-start snapshot failed to deserialise.
    ProfileStage {
        /// Index of the offending profile entry (0-based).
        profile: usize,
        /// The stage codec's typed failure.
        error: gld_lz::LzError,
    },
    /// The v4 profile table's staged body failed to de-stage.
    ProfileTableDecode {
        /// The stage decoder's typed failure.
        error: gld_lz::LzError,
    },
    /// A block frame violated its own invariants.
    Corrupt(&'static str),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::BadMagic(found) => {
                write!(f, "bad container magic {found:?}, expected {MAGIC:?}")
            }
            ContainerError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported container version {v}, this build reads up to {VERSION_V4}"
                )
            }
            ContainerError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            ContainerError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated stream: needed {needed} bytes, had {available}"
                )
            }
            ContainerError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after container content")
            }
            ContainerError::ChecksumMismatch {
                block,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "block {block} content corrupt: stored CRC-32 {stored:#010x}, computed {computed:#010x}"
                )
            }
            ContainerError::UnknownStage { block, stage } => {
                write!(f, "block {block} carries unknown stage byte {stage}")
            }
            ContainerError::StageDecode { block, error } => {
                write!(f, "block {block} stage payload failed to decode: {error}")
            }
            ContainerError::IncompatibleEntropyCoder { version, codec } => {
                write!(
                    f,
                    "container (version {version}, {codec:?}) carries entropy payloads from a \
                     pre-range-coder build; this build decodes range-coded payloads only — \
                     re-encode the variable with a current writer"
                )
            }
            ContainerError::UnknownProfile { block, profile } => {
                write!(f, "block {block} references undefined profile id {profile}")
            }
            ContainerError::ProfileChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "profile table corrupt: stored CRC-32 {stored:#010x}, computed {computed:#010x}"
                )
            }
            ContainerError::ProfileGenerationMismatch {
                profile,
                generation,
            } => {
                write!(
                    f,
                    "profile {profile} written by coder generation {generation}, this build \
                     reads {PROFILE_GENERATION}"
                )
            }
            ContainerError::ProfileCodecMismatch { profile, codec } => {
                write!(
                    f,
                    "profile {profile} declares codec id {codec}, container codec differs"
                )
            }
            ContainerError::ProfileModel { profile, error } => {
                write!(f, "profile {profile} histogram model invalid: {error}")
            }
            ContainerError::ProfileStage { profile, error } => {
                write!(f, "profile {profile} stage snapshot invalid: {error}")
            }
            ContainerError::ProfileTableDecode { error } => {
                write!(f, "profile table stage payload failed to decode: {error}")
            }
            ContainerError::Corrupt(what) => write!(f, "corrupt block frame: {what}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Bounds-checked little-endian reader over a byte slice, shared by the
/// container and block-frame decoders.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `len` raw bytes.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], ContainerError> {
        if self.remaining() < len {
            return Err(ContainerError::Truncated {
                // Saturate: `len` may be a corrupt u64 length prefix near
                // usize::MAX, and a corrupt frame must surface as an error,
                // never as an arithmetic-overflow panic.
                needed: self.pos.saturating_add(len),
                available: self.bytes.len(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, ContainerError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> Result<u16, ContainerError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, ContainerError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, ContainerError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&mut self) -> Result<f32, ContainerError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte section (`u64` length + payload).
    pub fn read_section(&mut self) -> Result<&'a [u8], ContainerError> {
        let len = self.read_u64()? as usize;
        self.take(len)
    }

    /// Asserts that the whole input was consumed.
    pub fn expect_end(&self) -> Result<(), ContainerError> {
        if self.remaining() != 0 {
            return Err(ContainerError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Appends a length-prefixed byte section (`u64` length + payload).
pub fn write_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Appends the fixed container header — the one definition shared by the
/// buffered encoders and the incremental [`ContainerWriter`].
fn encode_header(out: &mut Vec<u8>, version: u16, codec: CodecId, count: u32) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(codec as u8);
    out.push(if version >= VERSION {
        FLAG_RANGE_CODED
    } else {
        0
    });
    out.extend_from_slice(&count.to_le_bytes());
}

/// The `container.frame` failpoint: with `corrupt` armed, flips the last
/// pre-CRC byte of the frame just appended to `out` — after its checksum
/// was computed, so the damage models exactly the stored-container bit-rot
/// [`Container::decode_salvage`] exists to survive.
fn inject_frame_fault(out: &mut [u8]) {
    if !fail::active() {
        return;
    }
    match fail::check("container.frame") {
        Some(fail::Action::Corrupt) => {
            let at = out.len() - FRAME_CRC_LEN - 1;
            out[at] ^= 0xFF;
        }
        Some(fail::Action::Delay(d)) => std::thread::sleep(d),
        _ => {}
    }
}

/// The `container.destage` failpoint: forces a stage-decode failure (or a
/// stall) as if the staged payload were unreadable.
fn inject_destage_fault() -> Option<ContainerError> {
    if !fail::active() {
        return None;
    }
    match fail::check("container.destage")? {
        fail::Action::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        _ => Some(ContainerError::Corrupt("injected de-stage fault")),
    }
}

/// Appends one v3 frame: stage byte, length-prefixed payload, CRC over the
/// stage byte and payload.
fn encode_v3_frame(out: &mut Vec<u8>, raw: &[u8], lz: Option<&[u8]>) {
    let (stage, payload) = match lz {
        Some(staged) => (STAGE_LZ, staged),
        None => (STAGE_NONE, raw),
    };
    out.push(stage);
    write_section(out, payload);
    let mut crc = Crc32::new();
    crc.update(&[stage]);
    crc.update(payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    inject_frame_fault(out);
}

/// Encoded length of one v3 frame given the stage decision.
fn v3_frame_len(raw_len: usize, lz_len: Option<usize>) -> usize {
    FRAME_STAGE_LEN + 8 + lz_len.unwrap_or(raw_len) + FRAME_CRC_LEN
}

/// Appends one v4 frame: stage byte, profile id, length-prefixed payload,
/// CRC over the stage byte, profile id and payload.
fn encode_v4_frame(out: &mut Vec<u8>, raw: &[u8], profile: u8, lz: Option<&[u8]>) {
    let (stage, payload) = match lz {
        Some(staged) => (STAGE_LZ, staged),
        None => (STAGE_NONE, raw),
    };
    out.push(stage);
    out.push(profile);
    write_section(out, payload);
    let mut crc = Crc32::new();
    crc.update(&[stage, profile]);
    crc.update(payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    inject_frame_fault(out);
}

/// Encoded length of one v4 frame given the stage decision.
fn v4_frame_len(raw_len: usize, lz_len: Option<usize>) -> usize {
    FRAME_STAGE_LEN + 1 + 8 + lz_len.unwrap_or(raw_len) + FRAME_CRC_LEN
}

/// De-stage allocation cap for a v4 profile table: far above any real table
/// ([`MAX_PROFILES`] entries of a few KiB each), far below harm.
const MAX_PROFILE_TABLE_BUDGET: usize = 1 << 22;

/// Serialises the body of a v4 profile table (count byte + entries) — the
/// bytes the table's own stage decision runs over.
fn profile_table_body(codec: CodecId, profiles: &[EntropyProfile]) -> Vec<u8> {
    debug_assert!(!profiles.is_empty() && profiles.len() <= MAX_PROFILES);
    let mut body = Vec::with_capacity(
        1 + profiles
            .iter()
            .map(EntropyProfile::entry_len)
            .sum::<usize>(),
    );
    body.push(profiles.len() as u8);
    for profile in profiles {
        body.push(PROFILE_GENERATION);
        body.push(codec as u8);
        body.push(profile.dict_mode as u8);
        match &profile.model {
            Some(model) => write_section(&mut body, &model.to_bytes()),
            None => write_section(&mut body, &[]),
        }
        match &profile.lz {
            Some(lz) => write_section(&mut body, &lz.to_bytes()),
            None => write_section(&mut body, &[]),
        }
    }
    body
}

/// Serialised length of a v4 profile table (stage byte + length-prefixed,
/// possibly staged, body + CRC-32).  Runs the same deterministic stage
/// decision as [`encode_profile_table`].
fn profile_table_len(codec: CodecId, profiles: &[EntropyProfile]) -> usize {
    let body = profile_table_body(codec, profiles);
    let staged = stage_frame_pooled(&body);
    FRAME_STAGE_LEN + 8 + staged.map_or(body.len(), |s| s.len()) + 4
}

/// Appends the v4 profile table: stage byte, length-prefixed body (itself
/// `gld-lz`-staged when that is strictly smaller — model histograms and
/// stage snapshots compress well, and the table is the per-variable fixed
/// cost every shared-coding saving has to amortise), CRC-32 over stage byte
/// and payload.
fn encode_profile_table(out: &mut Vec<u8>, codec: CodecId, profiles: &[EntropyProfile]) {
    let body = profile_table_body(codec, profiles);
    let staged = stage_frame_pooled(&body);
    let (stage, payload) = match staged.as_deref() {
        Some(s) => (STAGE_LZ, s),
        None => (STAGE_NONE, body.as_slice()),
    };
    out.push(stage);
    write_section(out, payload);
    let mut crc = Crc32::new();
    crc.update(&[stage]);
    crc.update(payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
}

/// Parses and validates the v4 profile table.  Structure first (to find the
/// table's extent), then the CRC over the wire bytes, then de-staging, and
/// only then the per-entry semantics — no entry is interpreted before the
/// bytes are vetted.
fn decode_profile_table(
    reader: &mut ByteReader<'_>,
    codec: CodecId,
) -> Result<Vec<EntropyProfile>, ContainerError> {
    let stage = reader.read_u8()?;
    let payload = reader.read_section()?;
    let mut crc = Crc32::new();
    crc.update(&[stage]);
    crc.update(payload);
    let computed = crc.finish();
    let stored = reader.read_u32()?;
    if stored != computed {
        return Err(ContainerError::ProfileChecksumMismatch { stored, computed });
    }
    let body = match stage {
        STAGE_NONE => payload.to_vec(),
        STAGE_LZ => gld_lz::decompress(payload, MAX_PROFILE_TABLE_BUDGET)
            .map_err(|error| ContainerError::ProfileTableDecode { error })?,
        _ => return Err(ContainerError::Corrupt("profile table stage byte unknown")),
    };
    let mut body_reader = ByteReader::new(&body);
    let count = body_reader.read_u8()? as usize;
    if count == 0 {
        // Writers only emit v4 for containers that carry profiles, so an
        // empty table can only be damage (and accepting it would break the
        // decode→re-encode bit-identity invariant).
        return Err(ContainerError::Corrupt("v4 container without profiles"));
    }
    let mut raw = Vec::with_capacity(count);
    for _ in 0..count {
        let head: [u8; 3] = body_reader.take(3)?.try_into().unwrap();
        let model = body_reader.read_section()?;
        let lz = body_reader.read_section()?;
        raw.push((head, model, lz));
    }
    body_reader.expect_end()?;
    let mut profiles = Vec::with_capacity(count);
    for (index, ([generation, entry_codec, dict], model, lz)) in raw.into_iter().enumerate() {
        if generation != PROFILE_GENERATION {
            return Err(ContainerError::ProfileGenerationMismatch {
                profile: index,
                generation,
            });
        }
        if entry_codec != codec as u8 {
            return Err(ContainerError::ProfileCodecMismatch {
                profile: index,
                codec: entry_codec,
            });
        }
        let dict_mode = DictMode::from_u8(dict)?;
        let model = if model.is_empty() {
            None
        } else {
            let (parsed, used) = HistogramModel::try_from_bytes(model).map_err(|error| {
                ContainerError::ProfileModel {
                    profile: index,
                    error,
                }
            })?;
            if used != model.len() {
                return Err(ContainerError::Corrupt(
                    "profile model section has trailing bytes",
                ));
            }
            // Build the decode LUT once, here: every frame that references
            // this profile decodes against the same warm clone.
            parsed.prepare_decode();
            Some(parsed)
        };
        let lz = if lz.is_empty() {
            None
        } else {
            Some(
                LzProfile::try_from_bytes(lz).map_err(|error| ContainerError::ProfileStage {
                    profile: index,
                    error,
                })?,
            )
        };
        profiles.push(EntropyProfile {
            model,
            lz,
            dict_mode,
        });
    }
    Ok(profiles)
}

/// A decoded (or under-construction) container: codec identity plus the
/// per-block frames, in temporal order.
///
/// Per-frame stage-decision cache.  Staging is a pure function of the
/// frame bytes, so `Unknown` entries can always be resolved on demand —
/// the point of the cache is that hot paths (the executor's workers, v3
/// decode) already hold the answer, while pure-read paths (decoding a
/// legacy stream that will never be re-encoded) never pay compressor-grade
/// CPU for it.
#[derive(Clone, Debug)]
enum StageCache {
    /// Not yet computed (legacy-stream decode); resolved lazily by the v3
    /// encode paths.
    Unknown,
    /// The staged stream beat the raw frame.
    Lz(Vec<u8>),
    /// The raw frame is at least as small as its staged stream.
    Raw,
}

impl StageCache {
    /// Staged-payload length of the v3 encode decision for `frame`
    /// (`None` = the raw frame wins), without cloning a cached stream;
    /// `Unknown` is resolved on the fly (deterministic, so every
    /// resolution yields the same answer).
    fn staged_len(&self, frame: &[u8]) -> Option<usize> {
        match self {
            StageCache::Unknown => stage_frame_pooled(frame).map(|s| s.len()),
            StageCache::Lz(stream) => Some(stream.len()),
            StageCache::Raw => None,
        }
    }

    fn from_decision(lz: Option<Vec<u8>>) -> Self {
        match lz {
            Some(stream) => StageCache::Lz(stream),
            None => StageCache::Raw,
        }
    }
}

/// Frames are held **unstaged** — `blocks()` always returns the codec's own
/// bytes, whatever version the stream came from — with the adaptive `gld-lz`
/// stage decision cached alongside each frame so `encoded_len` stays exact
/// and `encode` never compresses a frame twice.  Logical identity is the
/// codec plus the raw frames; the cached stage payloads are derived state
/// and excluded from equality.
#[derive(Clone, Debug)]
pub struct Container {
    codec: CodecId,
    blocks: Vec<Vec<u8>>,
    /// Per-frame stage cache (see [`StageCache`]).
    staged: Vec<StageCache>,
    /// Shared entropy profiles (v4).  Empty for profile-less containers.
    profiles: Vec<EntropyProfile>,
    /// Per-frame profile id, parallel to `blocks` whenever `profiles` is
    /// non-empty (0 = no profile, N = `profiles[N - 1]`).
    frame_profiles: Vec<u8>,
    /// Per-frame *profiled* stage cache, parallel to `blocks` whenever
    /// `profiles` is non-empty: the staged stream under the frame's profile
    /// (`None` = the raw frame wins).  Kept separate from the cold
    /// [`StageCache`] because a profiled stream only decodes under its
    /// profile — `encode_v3` must never reuse it.
    profiled_lz: Vec<Option<Vec<u8>>>,
    /// The container version this instance was decoded from ([`VERSION`]
    /// for locally built containers) — what the cross-build
    /// [`Container::check_entropy_compat`] check keys on.  Derived state,
    /// excluded from equality; re-encoding always writes the current
    /// version.
    wire_version: u16,
}

impl PartialEq for Container {
    fn eq(&self, other: &Self) -> bool {
        self.codec == other.codec && self.blocks == other.blocks
    }
}

impl Eq for Container {}

impl Container {
    /// An empty container for `codec`.
    pub fn new(codec: CodecId) -> Self {
        Container {
            codec,
            blocks: Vec::new(),
            staged: Vec::new(),
            profiles: Vec::new(),
            frame_profiles: Vec::new(),
            profiled_lz: Vec::new(),
            wire_version: VERSION,
        }
    }

    /// An empty container carrying shared entropy profiles; frames arrive
    /// through [`Container::push_profiled`] and [`Container::encode`] writes
    /// the v4 format.
    pub fn with_profiles(codec: CodecId, profiles: Vec<EntropyProfile>) -> Self {
        assert!(
            profiles.len() <= MAX_PROFILES,
            "a container carries at most {MAX_PROFILES} profiles"
        );
        let mut c = Container::new(codec);
        c.profiles = profiles;
        c
    }

    /// Wraps existing frames (the stage decision is computed per frame).
    pub fn from_blocks(codec: CodecId, blocks: Vec<Vec<u8>>) -> Self {
        let staged = blocks
            .iter()
            .map(|b| StageCache::from_decision(stage_frame_pooled(b)))
            .collect();
        Container {
            codec,
            blocks,
            staged,
            profiles: Vec::new(),
            frame_profiles: Vec::new(),
            profiled_lz: Vec::new(),
            wire_version: VERSION,
        }
    }

    /// The codec that produced these frames.
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// The container version this instance was decoded from, or [`VERSION`]
    /// for locally built containers.
    pub fn wire_version(&self) -> u16 {
        self.wire_version
    }

    /// The frames, in temporal order (always unstaged codec bytes).
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }

    /// Consumes the container, returning the frames.
    pub fn into_blocks(self) -> Vec<Vec<u8>> {
        self.blocks
    }

    /// Appends one block frame, computing its stage decision.
    pub fn push(&mut self, frame: Vec<u8>) {
        let staged = stage_frame_pooled(&frame);
        self.push_staged(frame, staged);
    }

    /// Appends one block frame with a stage decision already computed (the
    /// streaming executor stages on its worker threads; `lz` must be
    /// exactly [`stage_frame`]'s output for `frame`).
    pub fn push_staged(&mut self, frame: Vec<u8>, lz: Option<Vec<u8>>) {
        debug_assert!(
            lz.as_ref().is_none_or(|s| s.len() < frame.len()),
            "staged payload must be strictly smaller than the frame"
        );
        if !self.profiles.is_empty() {
            // A profiled container keeps its parallel vectors in lock-step;
            // a plain push is a frame with no profile reference.
            self.frame_profiles.push(0);
            self.profiled_lz.push(None);
        }
        self.blocks.push(frame);
        self.staged.push(StageCache::from_decision(lz));
    }

    /// Appends one block frame of a profiled container: `profile` is the
    /// frame's profile id (0 = none, N = the Nth profile) and `lz` the stage
    /// decision computed under that profile via [`stage_frame_profiled`]
    /// (`None` = store raw).
    pub fn push_profiled(&mut self, frame: Vec<u8>, profile: u8, lz: Option<Vec<u8>>) {
        assert!(
            (profile as usize) <= self.profiles.len(),
            "profile id {profile} undefined ({} profiles)",
            self.profiles.len()
        );
        debug_assert!(
            lz.as_ref().is_none_or(|s| s.len() < frame.len()),
            "staged payload must be strictly smaller than the frame"
        );
        self.frame_profiles.push(profile);
        self.profiled_lz.push(lz);
        self.blocks.push(frame);
        // The cold decision for this frame is unknown (and usually never
        // needed — only an explicit `encode_v3` downgrade resolves it).
        self.staged.push(StageCache::Unknown);
    }

    /// The shared entropy profiles this container carries (empty for
    /// profile-less containers).
    pub fn profiles(&self) -> &[EntropyProfile] {
        &self.profiles
    }

    /// The profile id of block `index` (0 = none).
    pub fn frame_profile(&self, index: usize) -> u8 {
        self.frame_profiles.get(index).copied().unwrap_or(0)
    }

    /// The profile block `index` references, if any.
    pub fn profile_for_block(&self, index: usize) -> Option<&EntropyProfile> {
        match self.frame_profile(index) {
            0 => None,
            id => self.profiles.get(id as usize - 1),
        }
    }

    /// The staged-payload length frame `index` of a profiled container
    /// encodes with (`None` = the raw frame wins): the cached profiled
    /// decision for frames with a profile, the cold decision otherwise.
    fn v4_staged_len(&self, index: usize) -> Option<usize> {
        if self.frame_profiles[index] == 0 {
            self.staged[index].staged_len(&self.blocks[index])
        } else {
            self.profiled_lz[index].as_ref().map(Vec::len)
        }
    }

    /// Number of frames whose [`Container::encode`] output takes the `Lz`
    /// stage (the staged stream beat the raw frame) — under each frame's
    /// profile for a profiled container, cold otherwise — resolving lazily
    /// for frames whose decision is not yet cached.
    pub fn staged_frames(&self) -> usize {
        if self.profiles.is_empty() {
            self.blocks
                .iter()
                .zip(&self.staged)
                .filter(|(b, s)| s.staged_len(b).is_some())
                .count()
        } else {
            (0..self.blocks.len())
                .filter(|&i| self.v4_staged_len(i).is_some())
                .count()
        }
    }

    /// Exact size of [`Container::encode`]'s output, without encoding.
    pub fn encoded_len(&self) -> usize {
        if self.profiles.is_empty() {
            self.encoded_len_v3()
        } else {
            HEADER_LEN
                + profile_table_len(self.codec, &self.profiles)
                + (0..self.blocks.len())
                    .map(|i| v4_frame_len(self.blocks[i].len(), self.v4_staged_len(i)))
                    .sum::<usize>()
        }
    }

    /// Exact size of [`Container::encode_v3`]'s output, without encoding.
    fn encoded_len_v3(&self) -> usize {
        HEADER_LEN
            + self
                .blocks
                .iter()
                .zip(&self.staged)
                .map(|(b, s)| v3_frame_len(b.len(), s.staged_len(b)))
                .sum::<usize>()
    }

    /// Serialised table bytes [`Container::encode`] spends on the shared
    /// profiles (0 for a profile-less container) — the per-variable fixed
    /// cost the per-frame savings have to amortise.
    pub fn profile_table_bytes(&self) -> usize {
        if self.profiles.is_empty() {
            0
        } else {
            profile_table_len(self.codec, &self.profiles)
        }
    }

    /// Serialises the container to bytes: the v4 shared-profile format when
    /// the container carries profiles, the v3 per-frame format otherwise.
    pub fn encode(&self) -> Vec<u8> {
        if self.profiles.is_empty() {
            self.encode_v3()
        } else {
            self.encode_v4()
        }
    }

    /// Serialises the container in the profile-less v3 (per-frame stage +
    /// CRC-32) format — the downgrade path for peers without profile
    /// support.  Profiled stage caches are never reused here (they only
    /// decode under their profile); cold decisions are resolved lazily.
    pub fn encode_v3(&self) -> Vec<u8> {
        // Capacity from the stage-less upper bound (staged payloads only
        // shrink frames): an exact `encoded_len` here would resolve every
        // `Unknown` frame a second time just to pre-size the buffer.
        let upper = HEADER_LEN
            + self
                .blocks
                .iter()
                .map(|b| v3_frame_len(b.len(), None))
                .sum::<usize>();
        let mut out = Vec::with_capacity(upper);
        encode_header(&mut out, VERSION, self.codec, self.blocks.len() as u32);
        for (block, s) in self.blocks.iter().zip(&self.staged) {
            // Borrow cached streams; compress at most once for `Unknown`.
            match s {
                StageCache::Raw => encode_v3_frame(&mut out, block, None),
                StageCache::Lz(stream) => encode_v3_frame(&mut out, block, Some(stream)),
                StageCache::Unknown => {
                    let lz = stage_frame_pooled(block);
                    encode_v3_frame(&mut out, block, lz.as_deref());
                }
            }
        }
        debug_assert_eq!(out.len(), self.encoded_len_v3());
        out
    }

    /// Serialises the container in the v4 shared-profile format.
    fn encode_v4(&self) -> Vec<u8> {
        let upper = HEADER_LEN
            + profile_table_len(self.codec, &self.profiles)
            + self
                .blocks
                .iter()
                .map(|b| v4_frame_len(b.len(), None))
                .sum::<usize>();
        let mut out = Vec::with_capacity(upper);
        encode_header(&mut out, VERSION_V4, self.codec, self.blocks.len() as u32);
        encode_profile_table(&mut out, self.codec, &self.profiles);
        for (index, block) in self.blocks.iter().enumerate() {
            let profile = self.frame_profiles[index];
            if profile == 0 {
                match &self.staged[index] {
                    StageCache::Raw => encode_v4_frame(&mut out, block, 0, None),
                    StageCache::Lz(stream) => encode_v4_frame(&mut out, block, 0, Some(stream)),
                    StageCache::Unknown => {
                        let lz = stage_frame_pooled(block);
                        encode_v4_frame(&mut out, block, 0, lz.as_deref());
                    }
                }
            } else {
                encode_v4_frame(&mut out, block, profile, self.profiled_lz[index].as_deref());
            }
        }
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Serialises the container in the v2 (stage-less, per-frame CRC-32)
    /// format — what stage-incapable peers negotiate and what the
    /// version-compat tests pin.
    pub fn encode_v2(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            HEADER_LEN
                + self
                    .blocks
                    .iter()
                    .map(|b| 8 + b.len() + FRAME_CRC_LEN)
                    .sum::<usize>(),
        );
        encode_header(&mut out, VERSION_V2, self.codec, self.blocks.len() as u32);
        for block in &self.blocks {
            write_section(&mut out, block);
            out.extend_from_slice(&crc32(block).to_le_bytes());
        }
        out
    }

    /// Serialises the container in the legacy v1 (checksum-less) format, for
    /// interop with v1-only readers and the version-compat tests.
    pub fn encode_v1(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(HEADER_LEN + self.blocks.iter().map(|b| 8 + b.len()).sum::<usize>());
        encode_header(&mut out, VERSION_V1, self.codec, self.blocks.len() as u32);
        for block in &self.blocks {
            write_section(&mut out, block);
        }
        out
    }

    /// Streams the encoded container into `writer`.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(&self.encode())
    }

    /// Parses a container, validating magic, version, codec id, per-frame
    /// CRC-32 (v2+), stage markers (v3+), the coder-generation flag (v3+)
    /// and the profile table with every frame's profile reference (v4), and
    /// rejecting truncated or over-long input.  All of v1–v4 streams
    /// decode; frames come back unstaged.
    pub fn decode(bytes: &[u8]) -> Result<Self, ContainerError> {
        Self::decode_with_budget(bytes, MAX_DESTAGE_BUDGET)
    }

    /// [`Container::decode`] with an explicit de-stage budget (exposed so
    /// the budget exhaustion path is testable without gigabyte fixtures).
    fn decode_with_budget(bytes: &[u8], budget: usize) -> Result<Self, ContainerError> {
        let mut reader = ByteReader::new(bytes);
        let magic: [u8; 4] = reader.take(4)?.try_into().unwrap();
        if magic != MAGIC {
            return Err(ContainerError::BadMagic(magic));
        }
        let version = reader.read_u16()?;
        if !(VERSION_V1..=VERSION_V4).contains(&version) {
            return Err(ContainerError::UnsupportedVersion(version));
        }
        let codec = CodecId::from_u8(reader.read_u8()?)?;
        let flags = reader.read_u8()?;
        if version < VERSION {
            if flags != 0 {
                return Err(ContainerError::Corrupt("nonzero reserved flags"));
            }
        } else if flags & FLAG_RANGE_CODED == 0 {
            // A v3 stream explicitly declaring pre-range-coder payloads (or
            // a corrupted flags byte): refuse with the cross-build error
            // instead of decoding garbage.  Unknown high bits are ignored.
            return Err(ContainerError::IncompatibleEntropyCoder { version, codec });
        }
        let count = reader.read_u32()? as usize;
        let profiles = if version == VERSION_V4 {
            decode_profile_table(&mut reader, codec)?
        } else {
            Vec::new()
        };
        let mut blocks = Vec::with_capacity(count.min(1 << 20));
        let mut staged = Vec::with_capacity(count.min(1 << 20));
        let mut frame_profiles = Vec::new();
        let mut profiled_lz = Vec::new();
        // One de-stage budget for the whole container: a frame may only
        // spend what earlier frames left over, so total decode memory is
        // bounded no matter how many tiny bomb frames a stream declares.
        let mut destage_budget = budget;
        for index in 0..count {
            if version == VERSION_V4 {
                let stage = reader.read_u8()?;
                let profile = reader.read_u8()?;
                let payload = reader.read_section()?;
                let stored = reader.read_u32()?;
                let mut crc = Crc32::new();
                crc.update(&[stage, profile]);
                crc.update(payload);
                let computed = crc.finish();
                if stored != computed {
                    return Err(ContainerError::ChecksumMismatch {
                        block: index,
                        stored,
                        computed,
                    });
                }
                if profile as usize > profiles.len() {
                    return Err(ContainerError::UnknownProfile {
                        block: index,
                        profile,
                    });
                }
                match stage {
                    STAGE_NONE => {
                        blocks.push(payload.to_vec());
                        // A profiled frame's *cold* decision is unknown —
                        // stage-raw under the profile says nothing about the
                        // profile-less stage an `encode_v3` downgrade runs.
                        staged.push(if profile == 0 {
                            StageCache::Raw
                        } else {
                            StageCache::Unknown
                        });
                        frame_profiles.push(profile);
                        profiled_lz.push(None);
                    }
                    STAGE_LZ => {
                        if let Some(e) = inject_destage_fault() {
                            return Err(e);
                        }
                        let raw = if profile == 0 {
                            gld_lz::decompress(payload, destage_budget)
                        } else {
                            let entry = &profiles[profile as usize - 1];
                            let lz = entry.lz.as_ref().ok_or(ContainerError::Corrupt(
                                "staged frame references a profile without a stage snapshot",
                            ))?;
                            let dict = entry.dict_for_block(index, &blocks);
                            gld_lz::decompress_profiled(payload, dict, lz, destage_budget)
                        }
                        .map_err(|error| ContainerError::StageDecode {
                            block: index,
                            error,
                        })?;
                        destage_budget -= raw.len();
                        blocks.push(raw);
                        if profile == 0 {
                            staged.push(StageCache::Lz(payload.to_vec()));
                            profiled_lz.push(None);
                        } else {
                            staged.push(StageCache::Unknown);
                            profiled_lz.push(Some(payload.to_vec()));
                        }
                        frame_profiles.push(profile);
                    }
                    other => {
                        return Err(ContainerError::UnknownStage {
                            block: index,
                            stage: other,
                        })
                    }
                }
            } else if version >= VERSION {
                let stage = reader.read_u8()?;
                let payload = reader.read_section()?;
                let stored = reader.read_u32()?;
                let mut crc = Crc32::new();
                crc.update(&[stage]);
                crc.update(payload);
                let computed = crc.finish();
                if stored != computed {
                    return Err(ContainerError::ChecksumMismatch {
                        block: index,
                        stored,
                        computed,
                    });
                }
                match stage {
                    STAGE_NONE => {
                        blocks.push(payload.to_vec());
                        staged.push(StageCache::Raw);
                    }
                    STAGE_LZ => {
                        if let Some(e) = inject_destage_fault() {
                            return Err(e);
                        }
                        let raw = gld_lz::decompress(payload, destage_budget).map_err(|error| {
                            ContainerError::StageDecode {
                                block: index,
                                error,
                            }
                        })?;
                        destage_budget -= raw.len();
                        blocks.push(raw);
                        staged.push(StageCache::Lz(payload.to_vec()));
                    }
                    other => {
                        return Err(ContainerError::UnknownStage {
                            block: index,
                            stage: other,
                        })
                    }
                }
            } else {
                let payload = reader.read_section()?;
                if version >= VERSION_V2 {
                    let stored = reader.read_u32()?;
                    let computed = crc32(payload);
                    if stored != computed {
                        return Err(ContainerError::ChecksumMismatch {
                            block: index,
                            stored,
                            computed,
                        });
                    }
                }
                blocks.push(payload.to_vec());
                // The stage decision is left unresolved: pure-read callers
                // (the service's decompress path for legacy uploads) never
                // pay compressor CPU for it, while a later re-encode
                // resolves it lazily to exactly what a current writer would
                // produce.
                staged.push(StageCache::Unknown);
            }
        }
        reader.expect_end()?;
        Ok(Container {
            codec,
            blocks,
            staged,
            profiles,
            frame_profiles,
            profiled_lz,
            wire_version: version,
        })
    }

    /// The typed cross-build compatibility check: refuses streams whose
    /// entropy payloads this build's coder cannot replay — v1 learned-codec
    /// streams can only have been written by the pre-range-coder arithmetic
    /// build, so running today's decoder over them would yield garbage
    /// latents or a panic deep inside the codec.  `decompress_container`
    /// (and the service's decompress path under it) runs this before
    /// touching any payload.
    pub fn check_entropy_compat(&self) -> Result<(), ContainerError> {
        if self.wire_version == VERSION_V1 && self.codec.learned() {
            return Err(ContainerError::IncompatibleEntropyCoder {
                version: self.wire_version,
                codec: self.codec,
            });
        }
        Ok(())
    }

    /// Reads and parses a container from `reader` (e.g. a file or socket).
    pub fn read_from<R: Read>(reader: &mut R) -> std::io::Result<Result<Self, ContainerError>> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Ok(Self::decode(&bytes))
    }

    /// Best-effort decode of a damaged container: where [`Container::decode`]
    /// fails the whole stream on the first bad byte, salvage keeps every
    /// frame whose checksum still holds and reports the rest as typed
    /// losses instead.
    ///
    /// What it survives, per damage site:
    ///
    /// * **Frame payload / CRC damage** — the frame is lost, every other
    ///   frame is recovered (the per-frame CRC is the oracle).
    /// * **Frame length-prefix damage** — framing is re-synchronised by
    ///   scanning for the next offset from which a checksum-valid frame
    ///   chain runs to the end of the input; the frames behind the damage
    ///   come back under their correct indices.
    /// * **A damaged v4 profile table** — profile-referencing staged frames
    ///   are lost (their coder state is gone), but cold frames (profile id
    ///   0) and raw-stored frames still decode.
    /// * **A lost dictionary frame** — v4 frames whose profile seeds the
    ///   stage window from block 0 ([`DictMode::FirstBlock`]) are reported
    ///   lost when block 0 itself did not survive, instead of de-staging
    ///   garbage.
    /// * **Truncation** — everything before the cut is recovered.
    ///
    /// Only an unusable fixed header (bad magic, unknown version or codec,
    /// an incompatible coder flag) makes salvage itself fail: without it
    /// there is no codec identity to hand the frames to.  v1 streams carry
    /// no checksums, so their salvage is structural only — undetected
    /// corruption decodes as-is, exactly like [`Container::decode`].
    ///
    /// Recovered frames are bit-identical to the originals (CRC-vetted,
    /// v2+); the report pairs every lost index with the typed reason, so
    /// `recovered + lost = declared` accounts for every frame.
    pub fn decode_salvage(bytes: &[u8]) -> Result<Salvage, ContainerError> {
        let mut reader = ByteReader::new(bytes);
        let magic: [u8; 4] = reader.take(4)?.try_into().unwrap();
        if magic != MAGIC {
            return Err(ContainerError::BadMagic(magic));
        }
        let version = reader.read_u16()?;
        if !(VERSION_V1..=VERSION_V4).contains(&version) {
            return Err(ContainerError::UnsupportedVersion(version));
        }
        let codec = CodecId::from_u8(reader.read_u8()?)?;
        let flags = reader.read_u8()?;
        if version < VERSION {
            if flags != 0 {
                return Err(ContainerError::Corrupt("nonzero reserved flags"));
            }
        } else if flags & FLAG_RANGE_CODED == 0 {
            return Err(ContainerError::IncompatibleEntropyCoder { version, codec });
        }
        let declared = reader.read_u32()? as usize;
        // Bound every allocation by what the input could physically hold: a
        // corrupted count byte must not become an allocation bomb.
        let min_frame = match version {
            VERSION_V4 => FRAME_STAGE_LEN + 1 + 8 + FRAME_CRC_LEN,
            VERSION => FRAME_STAGE_LEN + 8 + FRAME_CRC_LEN,
            VERSION_V2 => 8 + FRAME_CRC_LEN,
            _ => 8,
        };
        let count = declared.min(bytes.len().saturating_sub(reader.pos) / min_frame + 1);

        let mut profiles = Vec::new();
        let mut profile_table_error = None;
        let mut needs_resync = false;
        if version == VERSION_V4 {
            let table_start = reader.pos;
            match decode_profile_table(&mut reader, codec) {
                Ok(p) => profiles = p,
                Err(error) => {
                    profile_table_error = Some(error);
                    // Find the table's extent structurally (stage byte +
                    // length-prefixed payload + CRC) so the frames behind it
                    // stay reachable — but only trust that extent when a
                    // checksum-valid frame chain actually starts there.  A
                    // damaged table *length prefix* fails the test and falls
                    // into the frame-chain resync instead.
                    let extent = {
                        let mut probe = ByteReader::new(bytes);
                        probe.pos = table_start;
                        probe
                            .read_u8()
                            .and_then(|_| probe.read_section())
                            .and_then(|_| probe.read_u32())
                            .map(|_| probe.pos)
                    };
                    match extent {
                        Ok(end)
                            if (count == 0 && end == bytes.len())
                                || salvage_scan_chain(bytes, end, version, count)
                                    == Some(count) =>
                        {
                            reader.pos = end;
                        }
                        _ => {
                            // Rewind so the resync scan starts at the
                            // damaged table, not wherever its decode died.
                            reader.pos = table_start;
                            needs_resync = true;
                        }
                    }
                }
            }
        }

        let mut frames: Vec<Option<Vec<u8>>> = Vec::with_capacity(count.min(1 << 20));
        let mut lost: Vec<LostFrame> = Vec::new();
        let mut budget = MAX_DESTAGE_BUDGET;
        let mut index = 0usize;
        let unreachable = ContainerError::Corrupt("frame unreachable behind damaged framing");

        // Marks every frame up to (not including) `upto` as lost.
        fn lose_until(
            upto: usize,
            index: &mut usize,
            frames: &mut Vec<Option<Vec<u8>>>,
            lost: &mut Vec<LostFrame>,
            error: &ContainerError,
        ) {
            while *index < upto {
                frames.push(None);
                lost.push(LostFrame {
                    block: *index,
                    error: error.clone(),
                });
                *index += 1;
            }
        }

        if needs_resync {
            match salvage_resync(bytes, reader.pos + 1, version, count) {
                Some((offset, found)) => {
                    lose_until(
                        count - found,
                        &mut index,
                        &mut frames,
                        &mut lost,
                        &unreachable,
                    );
                    reader.pos = offset;
                }
                None => lose_until(count, &mut index, &mut frames, &mut lost, &unreachable),
            }
        }

        while index < count {
            match salvage_parse_frame(bytes, reader.pos, version, index) {
                Ok((stage, profile, payload, next)) => {
                    reader.pos = next;
                    match salvage_destage(
                        stage,
                        profile,
                        payload,
                        index,
                        version,
                        &profiles,
                        profile_table_error.is_some(),
                        &frames,
                        &mut budget,
                    ) {
                        Ok(block) => frames.push(Some(block)),
                        Err(error) => {
                            frames.push(None);
                            lost.push(LostFrame {
                                block: index,
                                error,
                            });
                        }
                    }
                    index += 1;
                }
                Err(damage) => {
                    let scan_from = reader.pos + 1;
                    frames.push(None);
                    lost.push(LostFrame {
                        block: index,
                        error: damage.error,
                    });
                    index += 1;
                    // First try trusting the frame's declared extent —
                    // payload or checksum damage leaves the boundaries
                    // intact, and the stream behind them validates.
                    if let Some(skip) = damage.skip_to {
                        if skip == bytes.len()
                            || salvage_parse_frame(bytes, skip, version, index).is_ok()
                        {
                            reader.pos = skip;
                            continue;
                        }
                    }
                    // The length prefix itself is untrustworthy: hunt for
                    // the next offset from which a checksum-valid frame
                    // chain reaches the end of the input, and map its
                    // frames back onto the trailing indices.
                    match salvage_resync(bytes, scan_from, version, count - index) {
                        Some((offset, found)) => {
                            lose_until(
                                count - found,
                                &mut index,
                                &mut frames,
                                &mut lost,
                                &unreachable,
                            );
                            reader.pos = offset;
                        }
                        None => lose_until(count, &mut index, &mut frames, &mut lost, &unreachable),
                    }
                }
            }
        }

        Ok(Salvage {
            frames,
            report: SalvageReport {
                codec,
                version,
                declared_frames: declared,
                lost,
                profile_table_error,
            },
        })
    }
}

/// One frame [`Container::decode_salvage`] could not recover.
#[derive(Clone, Debug, PartialEq)]
pub struct LostFrame {
    /// The frame's index in the container's declared order.
    pub block: usize,
    /// Why it is unrecoverable.
    pub error: ContainerError,
}

/// What [`Container::decode_salvage`] learned about a damaged container.
#[derive(Clone, Debug, PartialEq)]
pub struct SalvageReport {
    /// The codec the container's frames belong to.
    pub codec: CodecId,
    /// Container wire version.
    pub version: u16,
    /// The header's frame count — what an undamaged decode would return.
    pub declared_frames: usize,
    /// Every unrecovered frame in index order, with its typed reason.
    pub lost: Vec<LostFrame>,
    /// The error that invalidated the v4 profile table, when it was hit:
    /// profile-referencing staged frames are lost, cold frames survive.
    pub profile_table_error: Option<ContainerError>,
}

/// Best-effort decode result: one slot per declared frame — recovered
/// bytes or `None` — plus the account of what was lost and why.
#[derive(Clone, Debug, PartialEq)]
pub struct Salvage {
    /// `frames[i]` holds frame `i`'s bytes when it was recovered.
    pub frames: Vec<Option<Vec<u8>>>,
    /// Recovery/loss accounting for the whole container.
    pub report: SalvageReport,
}

impl Salvage {
    /// Number of recovered frames.
    pub fn recovered(&self) -> usize {
        self.frames.iter().filter(|f| f.is_some()).count()
    }

    /// Indices of the recovered frames, ascending.
    pub fn recovered_indices(&self) -> Vec<usize> {
        self.frames
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|_| i))
            .collect()
    }

    /// Whether every declared frame came back and the profile table (if
    /// any) was intact — i.e. the container needed no salvage at all.
    pub fn is_complete(&self) -> bool {
        self.report.lost.is_empty()
            && self.report.profile_table_error.is_none()
            && self.frames.len() == self.report.declared_frames
    }
}

/// Structural damage found while parsing one frame during salvage.
struct FrameDamage {
    error: ContainerError,
    /// Where the frame's length prefix claims the next frame starts, when
    /// the prefix itself was readable and in bounds.  `None` when even the
    /// framing is unreadable (truncation, out-of-range section length).
    skip_to: Option<usize>,
}

/// Parses the frame at `pos` without de-staging it: `(stage, profile,
/// payload, next_pos)` when the frame is structurally sound and (v2+) its
/// checksum holds.  Versions below v4 report profile 0; versions below v3
/// report [`STAGE_NONE`].
fn salvage_parse_frame(
    bytes: &[u8],
    pos: usize,
    version: u16,
    block: usize,
) -> Result<(u8, u8, &[u8], usize), FrameDamage> {
    let mut reader = ByteReader::new(bytes);
    reader.pos = pos;
    let hard = |error: ContainerError| FrameDamage {
        error,
        skip_to: None,
    };
    if version == VERSION_V1 {
        let payload = reader.read_section().map_err(hard)?;
        return Ok((STAGE_NONE, 0, payload, reader.pos));
    }
    if version == VERSION_V2 {
        let payload = reader.read_section().map_err(hard)?;
        let stored = reader.read_u32().map_err(hard)?;
        let next = reader.pos;
        let computed = crc32(payload);
        if stored != computed {
            return Err(FrameDamage {
                error: ContainerError::ChecksumMismatch {
                    block,
                    stored,
                    computed,
                },
                skip_to: Some(next),
            });
        }
        return Ok((STAGE_NONE, 0, payload, next));
    }
    let stage = reader.read_u8().map_err(hard)?;
    let profile = if version == VERSION_V4 {
        reader.read_u8().map_err(hard)?
    } else {
        0
    };
    let payload = reader.read_section().map_err(hard)?;
    let stored = reader.read_u32().map_err(hard)?;
    let next = reader.pos;
    let mut crc = Crc32::new();
    if version == VERSION_V4 {
        crc.update(&[stage, profile]);
    } else {
        crc.update(&[stage]);
    }
    crc.update(payload);
    let computed = crc.finish();
    if stored != computed {
        return Err(FrameDamage {
            error: ContainerError::ChecksumMismatch {
                block,
                stored,
                computed,
            },
            skip_to: Some(next),
        });
    }
    if stage > STAGE_LZ {
        return Err(FrameDamage {
            error: ContainerError::UnknownStage { block, stage },
            skip_to: Some(next),
        });
    }
    Ok((stage, profile, payload, next))
}

/// Counts the checksum-valid frame chain running from `start` to *exactly*
/// the end of the input.  `None` when any frame fails, the chain overruns
/// `max_frames`, or (v1) there is no checksum oracle to validate against.
/// Cheap at bogus offsets: a random 8-byte length prefix is almost always
/// out of bounds and rejects before any checksum work.
fn salvage_scan_chain(
    bytes: &[u8],
    start: usize,
    version: u16,
    max_frames: usize,
) -> Option<usize> {
    if version == VERSION_V1 {
        return None;
    }
    let mut pos = start;
    let mut frames = 0usize;
    while pos < bytes.len() {
        let (_, _, _, next) = salvage_parse_frame(bytes, pos, version, 0).ok()?;
        frames += 1;
        if frames > max_frames {
            return None;
        }
        pos = next;
    }
    (frames > 0).then_some(frames)
}

/// Scans forward from `from` for the first offset where a checksum-valid
/// frame chain of at most `max_frames` frames reaches exactly the end of
/// the input — the resynchronisation point after framing damage.
fn salvage_resync(
    bytes: &[u8],
    from: usize,
    version: u16,
    max_frames: usize,
) -> Option<(usize, usize)> {
    if max_frames == 0 {
        return None;
    }
    (from..bytes.len()).find_map(|start| {
        salvage_scan_chain(bytes, start, version, max_frames).map(|frames| (start, frames))
    })
}

/// De-stages one structurally-sound frame during salvage, resolving its
/// profile against whatever survived of the table and its dictionary
/// against whatever earlier frames were recovered.
#[allow(clippy::too_many_arguments)]
fn salvage_destage(
    stage: u8,
    profile: u8,
    payload: &[u8],
    block: usize,
    version: u16,
    profiles: &[EntropyProfile],
    table_lost: bool,
    frames: &[Option<Vec<u8>>],
    budget: &mut usize,
) -> Result<Vec<u8>, ContainerError> {
    if stage == STAGE_NONE {
        return Ok(payload.to_vec());
    }
    let raw = if version == VERSION_V4 && profile != 0 {
        if table_lost {
            return Err(ContainerError::Corrupt(
                "staged frame references the damaged profile table",
            ));
        }
        let entry = profiles
            .get(profile as usize - 1)
            .ok_or(ContainerError::UnknownProfile { block, profile })?;
        let lz = entry.lz.as_ref().ok_or(ContainerError::Corrupt(
            "staged frame references a profile without a stage snapshot",
        ))?;
        let dict: &[u8] = match entry.dict_mode {
            DictMode::None => &[],
            DictMode::FirstBlock if block == 0 => &[],
            DictMode::FirstBlock => match frames.first().and_then(|f| f.as_deref()) {
                Some(first) => first,
                None => {
                    return Err(ContainerError::Corrupt(
                        "dictionary frame (block 0) was not recovered",
                    ))
                }
            },
        };
        gld_lz::decompress_profiled(payload, dict, lz, *budget)
    } else {
        gld_lz::decompress(payload, *budget)
    }
    .map_err(|error| ContainerError::StageDecode { block, error })?;
    *budget = (*budget).saturating_sub(raw.len());
    Ok(raw)
}

/// Which wire format a [`ContainerWriter`] emits — v4 with the shared
/// profile table, v3 with the per-frame lossless stage, or the stage-less
/// v2 that pre-stage peers negotiate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ContainerFormat {
    /// Shared-profile format: profile table + per-frame profile ids
    /// (constructed through [`ContainerWriter::with_profile_table`], which
    /// supplies the profiles the header must carry).
    V4,
    /// Per-frame format: adaptive `gld-lz` stage + CRC-32.
    #[default]
    V3,
    /// Legacy checksummed format, frames stored unstaged.
    V2,
}

impl ContainerFormat {
    /// The container version this format writes.
    pub fn version(self) -> u16 {
        match self {
            ContainerFormat::V4 => VERSION_V4,
            ContainerFormat::V3 => VERSION,
            ContainerFormat::V2 => VERSION_V2,
        }
    }
}

/// Incremental container encoder: writes the header up front and each frame
/// as it arrives, so a multi-block variable can stream to a file or socket
/// while later blocks are still being compressed — frames never accumulate
/// in memory.  This is the sink the streaming block executor emits into
/// (`Codec::compress_variable_into`); the executor stages frames on its
/// worker threads and hands them to [`ContainerWriter::write_staged_frame`],
/// while [`ContainerWriter::write_frame`] stages inline for callers without
/// a scratch.
pub struct ContainerWriter<W: Write> {
    writer: W,
    format: ContainerFormat,
    declared: u32,
    written: u32,
    bytes: usize,
    frame_buf: Vec<u8>,
}

impl<W: Write> ContainerWriter<W> {
    /// Writes the v3 container header for `count` upcoming frames.
    pub fn new(writer: W, codec: CodecId, count: u32) -> std::io::Result<Self> {
        Self::with_format(writer, codec, count, ContainerFormat::V3)
    }

    /// Writes the header of the chosen `format` for `count` upcoming frames.
    /// The v4 format needs its profile table at header time — use
    /// [`ContainerWriter::with_profile_table`] for it.
    pub fn with_format(
        mut writer: W,
        codec: CodecId,
        count: u32,
        format: ContainerFormat,
    ) -> std::io::Result<Self> {
        assert!(
            format != ContainerFormat::V4,
            "the v4 format carries a profile table; construct it with with_profile_table"
        );
        let mut header = Vec::with_capacity(HEADER_LEN);
        encode_header(&mut header, format.version(), codec, count);
        writer.write_all(&header)?;
        Ok(ContainerWriter {
            writer,
            format,
            declared: count,
            written: 0,
            bytes: header.len(),
            frame_buf: Vec::new(),
        })
    }

    /// Writes a v4 container header plus the shared profile table for
    /// `count` upcoming frames; frames then arrive through
    /// [`ContainerWriter::write_profiled_frame`].
    pub fn with_profile_table(
        mut writer: W,
        codec: CodecId,
        count: u32,
        profiles: &[EntropyProfile],
    ) -> std::io::Result<Self> {
        assert!(
            !profiles.is_empty() && profiles.len() <= MAX_PROFILES,
            "a v4 container carries 1..={MAX_PROFILES} profiles"
        );
        let mut header = Vec::with_capacity(HEADER_LEN + profile_table_len(codec, profiles));
        encode_header(&mut header, VERSION_V4, codec, count);
        encode_profile_table(&mut header, codec, profiles);
        writer.write_all(&header)?;
        Ok(ContainerWriter {
            writer,
            format: ContainerFormat::V4,
            declared: count,
            written: 0,
            bytes: header.len(),
            frame_buf: Vec::new(),
        })
    }

    /// The wire format this writer emits.
    pub fn format(&self) -> ContainerFormat {
        self.format
    }

    /// Appends one frame, staging it inline when the format calls for it
    /// (a v4 writer stages cold and records no profile reference).  Frames
    /// must arrive in temporal order; the caller may not exceed the
    /// declared count.
    pub fn write_frame(&mut self, payload: &[u8]) -> std::io::Result<()> {
        match self.format {
            ContainerFormat::V4 | ContainerFormat::V3 => {
                let staged = stage_frame_pooled(payload);
                self.write_staged_frame(payload, staged.as_deref())
            }
            ContainerFormat::V2 => self.write_staged_frame(payload, None),
        }
    }

    /// Appends one frame whose stage decision was already computed (`lz`
    /// must be exactly [`stage_frame`]'s output for `raw`; it is ignored by
    /// a v2 writer, and a v4 writer records it with no profile reference).
    pub fn write_staged_frame(&mut self, raw: &[u8], lz: Option<&[u8]>) -> std::io::Result<()> {
        self.emit_frame(raw, 0, lz)
    }

    /// Appends one frame of a v4 container: `profile` is the frame's
    /// profile id (0 = none) and `lz` the stage decision computed under that
    /// profile via [`stage_frame_profiled`] (`None` = store raw).
    pub fn write_profiled_frame(
        &mut self,
        raw: &[u8],
        profile: u8,
        lz: Option<&[u8]>,
    ) -> std::io::Result<()> {
        assert!(
            self.format == ContainerFormat::V4,
            "profiled frames require the v4 format"
        );
        self.emit_frame(raw, profile, lz)
    }

    fn emit_frame(&mut self, raw: &[u8], profile: u8, lz: Option<&[u8]>) -> std::io::Result<()> {
        assert!(
            self.written < self.declared,
            "container declared {} frames, attempted to write more",
            self.declared
        );
        let mut buf = std::mem::take(&mut self.frame_buf);
        buf.clear();
        match self.format {
            ContainerFormat::V4 => encode_v4_frame(&mut buf, raw, profile, lz),
            ContainerFormat::V3 => encode_v3_frame(&mut buf, raw, lz),
            ContainerFormat::V2 => {
                write_section(&mut buf, raw);
                buf.extend_from_slice(&crc32(raw).to_le_bytes());
            }
        }
        let result = self.writer.write_all(&buf);
        let len = buf.len();
        self.frame_buf = buf;
        result?;
        self.written += 1;
        self.bytes += len;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u32 {
        self.written
    }

    /// Total encoded bytes pushed into the underlying writer so far —
    /// `Container::encoded_len` for the frames written, measured rather
    /// than recomputed, so stats cannot drift from the stream.
    pub fn bytes_written(&self) -> usize {
        self.bytes
    }

    /// Finishes the stream, asserting every declared frame arrived, and
    /// returns the underlying writer.
    pub fn finish(self) -> std::io::Result<W> {
        assert_eq!(
            self.written, self.declared,
            "container declared {} frames but only {} were written",
            self.declared, self.written
        );
        Ok(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        Container::from_blocks(
            CodecId::Gld,
            vec![vec![1, 2, 3], Vec::new(), vec![0xFF; 300]],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let c = sample();
        let bytes = c.encode();
        assert_eq!(bytes.len(), c.encoded_len());
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION);
        let back = Container::decode(&bytes).unwrap();
        assert_eq!(back, c);
        // Re-encoding a decoded container reproduces the stream bit for bit
        // (the stage decisions ride along).
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn compressible_frames_take_the_lz_stage() {
        // A frame of 300 repeated bytes must stage (and shrink), and the
        // declared length must match the stream.
        let c = sample();
        let staged_len = c.encode().len();
        let unstaged_len = c.encode_v2().len();
        assert!(
            staged_len < unstaged_len,
            "stage saved nothing: v3 {staged_len} vs v2 {unstaged_len}"
        );
        assert_eq!(Container::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn incompressible_frames_cost_one_stage_byte() {
        // Pseudo-random frames cannot stage; v3 must cost exactly the v2
        // length plus one stage byte per frame.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let noise: Vec<u8> = (0..600)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        let c = Container::from_blocks(CodecId::SzLike, vec![noise]);
        assert_eq!(c.encode().len(), c.encode_v2().len() + FRAME_STAGE_LEN);
        assert_eq!(Container::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn rejects_bad_magic_version_codec() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::BadMagic(_))
        ));

        let mut bytes = sample().encode();
        bytes[4] = 0xEE;
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::UnsupportedVersion(_))
        ));

        let mut bytes = sample().encode();
        bytes[6] = 0;
        assert_eq!(
            Container::decode(&bytes),
            Err(ContainerError::UnknownCodec(0))
        );
    }

    #[test]
    fn v3_flags_declare_the_coder_generation() {
        // Clearing the range-coder bit turns the stream into a declared
        // pre-range-coder container: typed refusal, not garbage.
        let mut bytes = sample().encode();
        assert_eq!(bytes[7] & FLAG_RANGE_CODED, FLAG_RANGE_CODED);
        bytes[7] &= !FLAG_RANGE_CODED;
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::IncompatibleEntropyCoder {
                version: VERSION,
                codec: CodecId::Gld,
            })
        ));

        // Unknown high flag bits are ignored — future markers must not
        // hard-break this reader.
        let mut bytes = sample().encode();
        bytes[7] |= 0b1010_0000;
        assert_eq!(Container::decode(&bytes).unwrap(), sample());
    }

    #[test]
    fn v1_learned_streams_fail_the_entropy_compat_check() {
        // A v1 learned-codec stream can only have been written by the
        // pre-range-coder build: the compat check refuses it by name.
        let learned = sample();
        let decoded = Container::decode(&learned.encode_v1()).unwrap();
        assert_eq!(decoded.wire_version(), VERSION_V1);
        assert_eq!(
            decoded.check_entropy_compat(),
            Err(ContainerError::IncompatibleEntropyCoder {
                version: VERSION_V1,
                codec: CodecId::Gld,
            })
        );

        // Rule-based v1 streams (whose frame layout the compat suite pins)
        // pass, as do current-version streams of any codec.
        let rule = Container::from_blocks(CodecId::SzLike, vec![vec![9, 9, 9]]);
        let decoded = Container::decode(&rule.encode_v1()).unwrap();
        assert_eq!(decoded.check_entropy_compat(), Ok(()));
        let decoded = Container::decode(&learned.encode()).unwrap();
        assert_eq!(decoded.wire_version(), VERSION);
        assert_eq!(decoded.check_entropy_compat(), Ok(()));
    }

    #[test]
    fn destage_budget_is_shared_across_frames() {
        // Two highly compressible 4 KiB frames.  With a budget that covers
        // only the first, the second must fail typed — the aggregate bound
        // that stops a few wire bytes from amplifying into unbounded
        // allocation (the real budget is MAX_DESTAGE_BUDGET).
        let frame = vec![7u8; 4096];
        let c = Container::from_blocks(CodecId::SzLike, vec![frame.clone(), frame.clone()]);
        let bytes = c.encode();
        assert_eq!(c.staged_frames(), 2, "both frames must stage");
        assert_eq!(Container::decode_with_budget(&bytes, 8192).unwrap(), c);
        match Container::decode_with_budget(&bytes, 6000) {
            Err(ContainerError::StageDecode { block: 1, error }) => {
                assert!(
                    matches!(error, gld_lz::LzError::TooLarge { max: 1904, .. }),
                    "second frame's cap must be the leftover budget: {error:?}"
                );
            }
            other => panic!("expected StageDecode at block 1, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        let bytes = sample().encode();
        for cut in [3, HEADER_LEN - 1, HEADER_LEN + 4, bytes.len() - 1] {
            assert!(
                matches!(
                    Container::decode(&bytes[..cut]),
                    Err(ContainerError::Truncated { .. })
                ),
                "cut at {cut} not detected"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            Container::decode(&long),
            Err(ContainerError::TrailingBytes(1))
        );

        // A corrupt u64 section length near usize::MAX must surface as a
        // Truncated error, not an arithmetic-overflow panic (the `needed`
        // field saturates).  The length prefix sits after the stage byte.
        let mut huge_len = bytes.clone();
        huge_len[HEADER_LEN + FRAME_STAGE_LEN..HEADER_LEN + FRAME_STAGE_LEN + 8]
            .copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Container::decode(&huge_len),
            Err(ContainerError::Truncated { .. })
        ));
    }

    #[test]
    fn write_to_matches_encode() {
        let c = sample();
        let mut sink = Vec::new();
        c.write_to(&mut sink).unwrap();
        assert_eq!(sink, c.encode());
        let parsed = Container::read_from(&mut sink.as_slice()).unwrap().unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn v1_and_v2_streams_still_decode() {
        let c = sample();
        let v1 = c.encode_v1();
        assert_eq!(u16::from_le_bytes([v1[4], v1[5]]), VERSION_V1);
        let back = Container::decode(&v1).unwrap();
        assert_eq!(back, c, "v1 decode must reproduce the same frames");

        let v2 = c.encode_v2();
        assert_eq!(u16::from_le_bytes([v2[4], v2[5]]), VERSION_V2);
        assert_eq!(
            v2.len(),
            HEADER_LEN
                + c.blocks()
                    .iter()
                    .map(|b| 8 + b.len() + FRAME_CRC_LEN)
                    .sum::<usize>()
        );
        let back = Container::decode(&v2).unwrap();
        assert_eq!(back, c, "v2 decode must reproduce the same frames");
        // A legacy stream re-encodes to exactly what a current writer
        // produces for the same frames.
        assert_eq!(back.encode(), c.encode());
    }

    #[test]
    fn payload_corruption_is_caught_by_the_frame_crc() {
        let c = sample();
        let mut bytes = c.encode();
        // Flip one bit inside the first frame's payload (first payload byte
        // sits after the header, the stage byte and the u64 length prefix).
        bytes[HEADER_LEN + FRAME_STAGE_LEN + 8] ^= 0x40;
        match Container::decode(&bytes) {
            Err(ContainerError::ChecksumMismatch {
                block,
                stored,
                computed,
            }) => {
                assert_eq!(block, 0);
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // A corrupted *stage byte* is caught by the same CRC — a frame can
        // never be de-staged the wrong way undetected.
        let mut bytes = c.encode();
        bytes[HEADER_LEN] ^= 0x01;
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::ChecksumMismatch { block: 0, .. })
        ));
        // The same corruption in a v1 stream goes undetected — exactly the
        // gap the v2 version bump closed.
        let mut v1 = c.encode_v1();
        v1[HEADER_LEN + 8] ^= 0x40;
        assert!(Container::decode(&v1).is_ok());
    }

    #[test]
    fn incremental_writer_matches_buffered_encode() {
        let c = sample();
        let mut writer =
            ContainerWriter::new(Vec::new(), c.codec(), c.blocks().len() as u32).unwrap();
        for frame in c.blocks() {
            writer.write_frame(frame).unwrap();
        }
        assert_eq!(writer.frames_written(), 3);
        assert_eq!(writer.bytes_written(), c.encoded_len());
        let streamed = writer.finish().unwrap();
        assert_eq!(streamed, c.encode());
    }

    #[test]
    fn v2_writer_matches_buffered_v2_encode() {
        let c = sample();
        let mut writer = ContainerWriter::with_format(
            Vec::new(),
            c.codec(),
            c.blocks().len() as u32,
            ContainerFormat::V2,
        )
        .unwrap();
        for frame in c.blocks() {
            writer.write_frame(frame).unwrap();
        }
        let streamed = writer.finish().unwrap();
        assert_eq!(streamed, c.encode_v2());
        let back = Container::decode(&streamed).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    #[should_panic(expected = "declared 2 frames but only 1")]
    fn incremental_writer_rejects_missing_frames() {
        let mut writer = ContainerWriter::new(Vec::new(), CodecId::Gld, 2).unwrap();
        writer.write_frame(&[1, 2, 3]).unwrap();
        let _ = writer.finish();
    }

    /// Pseudo-random bytes: incompressible alone, so only the first-block
    /// dictionary can make near-copies of them stage.
    fn noise(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    /// A v4 container: frame 0 is noise (the dictionary), frame 1 a
    /// near-copy of it, frame 2 a compressible profile-less frame.
    fn profiled_sample() -> Container {
        let f0 = noise(0x5EED, 600);
        let mut f1 = f0.clone();
        f1[17] ^= 0x20;
        f1[303] ^= 0x01;
        let mut scratch = LzScratch::new();
        let lz = LzProfile::fit(&f0, &mut scratch);
        let profile = EntropyProfile {
            model: None,
            lz: Some(lz.clone()),
            dict_mode: DictMode::FirstBlock,
        };
        let mut c = Container::with_profiles(CodecId::SzLike, vec![profile]);
        let s0 = stage_frame_profiled(&f0, &[], &lz, &mut scratch);
        c.push_profiled(f0.clone(), 1, s0);
        let s1 = stage_frame_profiled(&f1, &f0, &lz, &mut scratch);
        assert!(
            s1.is_some(),
            "the near-copy must stage under the dictionary"
        );
        c.push_profiled(f1, 1, s1);
        let trailer = vec![9u8; 40];
        let s2 = stage_frame(&trailer, &mut scratch);
        c.push_staged(trailer, s2);
        c
    }

    #[test]
    fn v4_roundtrip_preserves_profiles_and_reencodes_bit_identically() {
        let c = profiled_sample();
        let bytes = c.encode();
        assert_eq!(bytes.len(), c.encoded_len());
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION_V4);
        let back = Container::decode(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.wire_version(), VERSION_V4);
        assert_eq!(back.profiles(), c.profiles());
        assert_eq!(back.frame_profile(0), 1);
        assert_eq!(back.frame_profile(1), 1);
        assert_eq!(back.frame_profile(2), 0);
        assert_eq!(
            back.encode(),
            bytes,
            "decode → re-encode must be bit-identical"
        );
        assert!(c.profile_table_bytes() > 0);
        assert_eq!(back.check_entropy_compat(), Ok(()));
    }

    #[test]
    fn first_block_dictionary_beats_the_cold_stage() {
        let c = profiled_sample();
        let f0 = &c.blocks()[0];
        let f1 = &c.blocks()[1];
        let mut scratch = LzScratch::new();
        // Cold, the near-copy is incompressible noise: the stage stores it.
        assert!(stage_frame(f1, &mut scratch).is_none());
        // Under the first-block dictionary it collapses to a few matches.
        let lz = c.profiles()[0].lz.clone().unwrap();
        let warm = stage_frame_profiled(f1, f0, &lz, &mut scratch).unwrap();
        assert!(
            warm.len() < f1.len() / 4,
            "dictionary matches should collapse the near-copy: {} vs {}",
            warm.len(),
            f1.len()
        );
    }

    #[test]
    fn v4_downgrades_to_v3_per_frame_coding() {
        // `encode_v3` of a profiled container must produce exactly what a
        // profile-less writer produces for the same frames — including after
        // a v4 decode (whose cold stage decisions start out Unknown).
        let c = profiled_sample();
        let v3 = c.encode_v3();
        assert_eq!(u16::from_le_bytes([v3[4], v3[5]]), VERSION);
        let back = Container::decode(&v3).unwrap();
        assert_eq!(back, c);
        assert!(back.profiles().is_empty());
        assert_eq!(
            Container::from_blocks(c.codec(), c.blocks().to_vec()).encode(),
            v3
        );
        let from_v4 = Container::decode(&c.encode()).unwrap();
        assert_eq!(from_v4.encode_v3(), v3);
    }

    #[test]
    fn v4_profile_table_corruption_is_caught_before_interpretation() {
        let c = profiled_sample();
        let mut bytes = c.encode();
        // Flip a byte inside the table's (possibly staged) payload, just
        // past the stage byte and length prefix; the CRC must fire before
        // any entry is interpreted — bytes are vetted first.
        bytes[HEADER_LEN + FRAME_STAGE_LEN + 8 + 1] ^= 0x04;
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::ProfileChecksumMismatch { .. })
        ));
        // Truncations inside the table and inside the frames stay typed.
        let whole = c.encode();
        for cut in [HEADER_LEN, HEADER_LEN + 2, HEADER_LEN + 40, whole.len() - 2] {
            assert!(matches!(
                Container::decode(&whole[..cut]),
                Err(ContainerError::Truncated { .. })
            ));
        }
    }

    /// A v4 stream with a hand-crafted profile table body (count byte +
    /// entries), wrapped unstaged with a valid CRC so decode reaches the
    /// per-entry semantic checks.
    fn v4_with_table_body(body: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_header(&mut out, VERSION_V4, CodecId::SzLike, 0);
        out.push(STAGE_NONE);
        write_section(&mut out, body);
        let mut crc = Crc32::new();
        crc.update(&[STAGE_NONE]);
        crc.update(body);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out
    }

    /// A v4 stream with a single hand-crafted profile entry.
    fn v4_with_table_entry(entry: &[u8]) -> Vec<u8> {
        let mut body = vec![1u8];
        body.extend_from_slice(entry);
        v4_with_table_body(&body)
    }

    fn table_entry(generation: u8, codec: u8, dict: u8, model: &[u8], lz: &[u8]) -> Vec<u8> {
        let mut e = vec![generation, codec, dict];
        write_section(&mut e, model);
        write_section(&mut e, lz);
        e
    }

    #[test]
    fn v4_profile_semantics_fail_typed() {
        // Generation from an incompatible build.
        let bytes = v4_with_table_entry(&table_entry(9, CodecId::SzLike as u8, 0, &[], &[]));
        assert_eq!(
            Container::decode(&bytes),
            Err(ContainerError::ProfileGenerationMismatch {
                profile: 0,
                generation: 9,
            })
        );
        // Profile fitted for a different codec than the container's.
        let bytes = v4_with_table_entry(&table_entry(
            PROFILE_GENERATION,
            CodecId::Gld as u8,
            0,
            &[],
            &[],
        ));
        assert_eq!(
            Container::decode(&bytes),
            Err(ContainerError::ProfileCodecMismatch {
                profile: 0,
                codec: CodecId::Gld as u8,
            })
        );
        // Unknown dictionary mode.
        let bytes = v4_with_table_entry(&table_entry(
            PROFILE_GENERATION,
            CodecId::SzLike as u8,
            7,
            &[],
            &[],
        ));
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::Corrupt(_))
        ));
        // Malformed histogram model.
        let bytes = v4_with_table_entry(&table_entry(
            PROFILE_GENERATION,
            CodecId::SzLike as u8,
            0,
            &[1, 2, 3],
            &[],
        ));
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::ProfileModel { profile: 0, .. })
        ));
        // Wrong-sized stage snapshot.
        let bytes = v4_with_table_entry(&table_entry(
            PROFILE_GENERATION,
            CodecId::SzLike as u8,
            0,
            &[],
            &[0u8; 10],
        ));
        assert_eq!(
            Container::decode(&bytes),
            Err(ContainerError::ProfileStage {
                profile: 0,
                error: gld_lz::LzError::BadProfile {
                    len: 10,
                    expected: gld_lz::PROFILE_BYTES,
                },
            })
        );
        // A v4 stream with an empty table can only be damage.
        let empty = v4_with_table_body(&[0u8]);
        assert!(matches!(
            Container::decode(&empty),
            Err(ContainerError::Corrupt(_))
        ));
        // A staged table whose payload is not a valid stage stream.
        let mut bad_stage = Vec::new();
        encode_header(&mut bad_stage, VERSION_V4, CodecId::SzLike, 0);
        bad_stage.push(STAGE_LZ);
        write_section(&mut bad_stage, &[0xff, 0xee, 0xdd]);
        let mut crc = Crc32::new();
        crc.update(&[STAGE_LZ]);
        crc.update(&[0xff, 0xee, 0xdd]);
        bad_stage.extend_from_slice(&crc.finish().to_le_bytes());
        assert!(matches!(
            Container::decode(&bad_stage),
            Err(ContainerError::ProfileTableDecode { .. })
        ));
    }

    #[test]
    fn v4_frame_profile_references_are_validated() {
        // A frame naming an undefined profile id fails typed.  The writer
        // does not validate ids against the table, which is exactly what
        // lets this test produce the stream a buggy peer would.
        let profiles = [EntropyProfile::default()];
        let mut w =
            ContainerWriter::with_profile_table(Vec::new(), CodecId::SzLike, 1, &profiles).unwrap();
        w.write_profiled_frame(&[1, 2, 3], 5, None).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(
            Container::decode(&bytes),
            Err(ContainerError::UnknownProfile {
                block: 0,
                profile: 5,
            })
        );
        // A staged frame referencing a profile without a stage snapshot is
        // structurally impossible for our writers — typed refusal.
        let frame = vec![7u8; 256];
        let mut scratch = LzScratch::new();
        let staged = stage_frame(&frame, &mut scratch).expect("repetitive frame must stage");
        let mut w =
            ContainerWriter::with_profile_table(Vec::new(), CodecId::SzLike, 1, &profiles).unwrap();
        w.write_profiled_frame(&frame, 1, Some(&staged)).unwrap();
        let bytes = w.finish().unwrap();
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::Corrupt(_))
        ));
        // Flipping a payload bit in a valid v4 frame is the frame CRC's job.
        let c = profiled_sample();
        let mut bytes = c.encode();
        let last = bytes.len() - FRAME_CRC_LEN - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::ChecksumMismatch { block: 2, .. })
        ));
    }

    #[test]
    fn v4_writer_matches_buffered_encode() {
        let c = profiled_sample();
        let lz = c.profiles()[0].lz.clone().unwrap();
        let mut scratch = LzScratch::new();
        let mut w = ContainerWriter::with_profile_table(
            Vec::new(),
            c.codec(),
            c.blocks().len() as u32,
            c.profiles(),
        )
        .unwrap();
        assert_eq!(w.format(), ContainerFormat::V4);
        for (index, frame) in c.blocks().iter().enumerate() {
            match c.frame_profile(index) {
                0 => {
                    let staged = stage_frame(frame, &mut scratch);
                    w.write_staged_frame(frame, staged.as_deref()).unwrap();
                }
                id => {
                    let dict = c.profiles()[id as usize - 1].dict_for_block(index, c.blocks());
                    let staged = stage_frame_profiled(frame, dict, &lz, &mut scratch);
                    w.write_profiled_frame(frame, id, staged.as_deref())
                        .unwrap();
                }
            }
        }
        assert_eq!(w.bytes_written(), c.encoded_len());
        assert_eq!(w.finish().unwrap(), c.encode());
    }
}
