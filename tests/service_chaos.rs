//! Resilience contract tests: a live in-process server behind the chaos
//! TCP proxy, driven through [`ResilientClient`].
//!
//! * A mixed ping/compress/decompress/status workload under connection
//!   resets, stalls, latency, and partial writes completes with **zero
//!   unhandled errors** and every payload **bit-identical** to a fault-free
//!   reference run — those faults all surface as retryable I/O conditions
//!   the client masks completely.
//! * Byte corruption has no app-layer checksum on the GLDS frames, so the
//!   contract there is weaker and explicit: every op returns `Ok` or a
//!   typed error (never a panic or a hang), and once the proxy's fault
//!   budget is spent the workload self-heals and completes exactly.
//! * Idle-connection reaping: a server with `idle_timeout` set reclaims a
//!   parked connection (visible in the wire `Status` counters), and the
//!   resilient client transparently reconnects over the reaped socket.
//!
//! Runs green under `RAYON_NUM_THREADS=1` and `=8`; CI's matrix exercises
//! both.

use gld_core::{CodecId, Container};
use gld_datasets::{generate, DatasetKind, FieldSpec, ScientificDataset};
use gld_service::{
    ChaosConfig, ChaosProxy, CodecRegistry, ResilientClient, Server, ServiceClient, ServiceConfig,
    ServiceMetricsSnapshot,
};
use std::time::{Duration, Instant};

fn dataset() -> ScientificDataset {
    generate(DatasetKind::E3sm, &FieldSpec::new(2, 24, 16, 16), 71)
}

fn start_server(config: ServiceConfig) -> Server {
    Server::start(config, CodecRegistry::rule_based()).expect("bind an ephemeral port")
}

/// A retry policy tuned for a chaotic but local link: fast backoff, short
/// request deadlines, a generous attempt budget.
fn chaos_policy(seed: u64) -> gld_service::RetryPolicy {
    gld_service::RetryPolicy {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Some(Duration::from_secs(2)),
        max_retries: 8,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        seed,
    }
}

#[test]
fn mixed_workload_through_chaos_is_bit_identical_and_error_free() {
    let server = start_server(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    });
    let upstream = server.local_addr();
    let ds = dataset();
    let preferences = [CodecId::SzLike, CodecId::ZfpLike];

    // Fault-free reference run, straight at the server.
    let mut reference_client = ServiceClient::connect(upstream).expect("direct connect");
    reference_client.hello(&preferences).expect("direct hello");
    let mut reference_bytes = Vec::new();
    let mut reference_blocks = Vec::new();
    for variable in &ds.variables {
        let bytes = reference_client
            .compress(&variable.name, variable, 8, None)
            .expect("reference compress");
        let blocks = reference_client
            .decompress(&variable.name, &bytes)
            .expect("reference decompress");
        reference_bytes.push(bytes);
        reference_blocks.push(blocks);
    }

    // Resets, stalls, latency and partial writes — everything the client
    // can mask completely.  The budget guarantees termination.
    let mut proxy = ChaosProxy::start(
        upstream,
        ChaosConfig {
            seed: 0xC4A0_5157,
            latency: Some((Duration::from_millis(2), 0.10)),
            partial_write_prob: 0.20,
            stall: Some((Duration::from_millis(30), 0.05)),
            reset_prob: 0.05,
            fault_budget: Some(30),
            ..ChaosConfig::default()
        },
    )
    .expect("start chaos proxy");

    let mut client =
        ResilientClient::connect(proxy.addr().to_string(), &preferences, chaos_policy(7))
            .expect("resilient connect through chaos");

    for round in 0..3 {
        client
            .ping()
            .unwrap_or_else(|e| panic!("round {round}: ping: {e}"));
        for (index, variable) in ds.variables.iter().enumerate() {
            let bytes = client
                .compress(&variable.name, variable, 8, None)
                .unwrap_or_else(|e| panic!("round {round}: compress {index}: {e}"));
            assert_eq!(
                bytes, reference_bytes[index],
                "round {round}: compress {index} must be bit-identical through chaos"
            );
            let blocks = client
                .decompress(&variable.name, &bytes)
                .unwrap_or_else(|e| panic!("round {round}: decompress {index}: {e}"));
            assert_eq!(blocks.len(), reference_blocks[index].len());
            for (got, want) in blocks.iter().zip(&reference_blocks[index]) {
                assert_eq!(got.dims(), want.dims(), "round {round}: dims differ");
                assert_eq!(got.data(), want.data(), "round {round}: data differs");
            }
        }
        let status = client
            .status()
            .unwrap_or_else(|e| panic!("round {round}: status: {e}"));
        assert!(status.connections_active >= 1, "we are connected");
    }

    assert!(
        proxy.faults_injected() > 0,
        "the fault schedule must actually have fired for this test to mean anything"
    );
    proxy.stop();
    let metrics: ServiceMetricsSnapshot = server.shutdown();
    assert!(metrics.completed() >= 2 * ds.variables.len());
}

#[test]
fn corruption_is_survived_and_the_workload_self_heals_once_the_budget_is_spent() {
    let server = start_server(ServiceConfig::default());
    let upstream = server.local_addr();
    let ds = dataset();
    let variable = &ds.variables[0];
    let preferences = [CodecId::SzLike];

    let mut reference_client = ServiceClient::connect(upstream).expect("direct connect");
    reference_client.hello(&preferences).expect("direct hello");
    let reference = reference_client
        .compress(&variable.name, variable, 8, None)
        .expect("reference compress");

    const BUDGET: u64 = 12;
    let mut proxy = ChaosProxy::start(
        upstream,
        ChaosConfig {
            seed: 0xB17_F11F,
            corrupt_prob: 0.30,
            partial_write_prob: 0.20,
            fault_budget: Some(BUDGET),
            ..ChaosConfig::default()
        },
    )
    .expect("start chaos proxy");

    // GLDS frames carry no checksum, so a corrupted byte can surface as a
    // torn frame (retried internally), a typed refusal (the server read a
    // corrupted request), an exactly-right response, or — for a corrupted
    // response body — bytes that differ from the reference but still obey
    // the container's own per-frame CRCs on decode.  What must NEVER
    // happen: a panic, a hang, or an untyped failure.
    let mut exact = 0usize;
    let mut typed_failures = 0usize;
    let mut response_corruptions = 0usize;
    let deadline = Instant::now() + Duration::from_secs(60);
    while proxy.faults_injected() < BUDGET && Instant::now() < deadline {
        let mut client = ResilientClient::connect(
            proxy.addr().to_string(),
            &preferences,
            chaos_policy(proxy.faults_injected() + 11),
        );
        let attempt = client.as_mut().map_err(|_| ()).and_then(|c| {
            c.compress(&variable.name, variable, 8, None)
                .map_err(|_| ())
        });
        match attempt {
            Ok(bytes) if bytes == reference => exact += 1,
            Ok(bytes) => {
                // Either leg of the connection was corrupted; the container
                // machinery must classify the result, not crash on it.
                if Container::decode(&bytes).is_err() {
                    response_corruptions += 1;
                }
            }
            Err(()) => typed_failures += 1,
        }
    }
    assert!(
        proxy.faults_injected() >= BUDGET,
        "the fault schedule must exhaust its budget (injected {}, exact {exact}, \
         typed failures {typed_failures}, detected corruptions {response_corruptions})",
        proxy.faults_injected()
    );

    // Budget spent → the proxy is transparent → the workload self-heals.
    let mut healed =
        ResilientClient::connect(proxy.addr().to_string(), &preferences, chaos_policy(23))
            .expect("connect once the proxy is transparent");
    let bytes = healed
        .compress(&variable.name, variable, 8, None)
        .expect("compress once the proxy is transparent");
    assert_eq!(bytes, reference, "the self-healed run is bit-identical");

    proxy.stop();
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_and_the_resilient_client_recovers() {
    let idle_timeout = Duration::from_millis(150);
    let server = start_server(ServiceConfig {
        idle_timeout: Some(idle_timeout),
        ..ServiceConfig::default()
    });
    let addr = server.local_addr();
    let preferences = [CodecId::SzLike];

    // Park a resilient session...
    let mut parked =
        ResilientClient::connect(addr.to_string(), &preferences, chaos_policy(3)).expect("connect");
    parked.ping().expect("ping before idling");
    assert_eq!(parked.reconnects(), 0);

    // ...and watch the server reap it: a *fresh* observer connection per
    // poll, so the observer itself never trips the idle timer.
    let deadline = Instant::now() + Duration::from_secs(10);
    let reaped = loop {
        let mut observer = ServiceClient::connect(addr).expect("observer connect");
        observer.hello(&preferences).expect("observer hello");
        let status = observer.status().expect("observer status");
        if status.reaped_idle >= 1 {
            break status.reaped_idle;
        }
        assert!(
            Instant::now() < deadline,
            "server never reaped the idle connection (status: {status:?})"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(reaped >= 1, "the parked connection was reaped");

    // The reaped socket is dead, but the resilient client masks that: the
    // next op reconnects (with a full re-Hello) and succeeds.
    parked.ping().expect("ping after the reap");
    assert_eq!(
        parked.reconnects(),
        1,
        "exactly one transparent reconnect rebuilt the parked session"
    );

    let metrics = server.shutdown();
    assert!(
        metrics.connections_reaped_idle >= 1,
        "the reap is visible in the service metrics"
    );
}
