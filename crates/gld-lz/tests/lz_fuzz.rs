//! Stage-decoder fuzz battery, mirroring the service's `protocol_fuzz.rs`:
//! the `gld-lz` decoder must never panic, never allocate beyond the
//! declared (and caller-capped) decompressed size, and always return a
//! typed [`LzError`] on bad input — over arbitrary bytes, truncations of
//! valid streams, and single-bit flips of valid streams.

use gld_lz::{compress, decompress, LzError, LzScratch, TAG_LZ, TAG_STORED};
use proptest::prelude::*;

/// A corpus of byte strings with LZ-relevant structure: runs, periodic
/// patterns and noise mixed by the seed.
fn corpus_bytes(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let phase = (seed % 7) as usize;
            match (i / 97 + phase) % 3 {
                0 => (seed as u8).wrapping_add((i % 11) as u8),
                1 => ((i * 31 + seed as usize) % 256) as u8,
                _ => (i as f32 * 0.37).sin().to_bits() as u8,
            }
        })
        .collect()
}

/// Drives the decoder with a cap and asserts the hardening contract: no
/// panic (a panic fails the test), output within the cap when `Ok`, typed
/// error otherwise.
fn drive_decoder(stream: &[u8], cap: usize) {
    match decompress(stream, cap) {
        Ok(out) => assert!(
            out.len() <= cap,
            "decoder produced {} bytes past the {cap}-byte cap",
            out.len()
        ),
        Err(
            LzError::Empty
            | LzError::BadTag(_)
            | LzError::TooLarge { .. }
            | LzError::Truncated
            | LzError::BadOffset { .. }
            | LzError::Overrun,
        ) => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn roundtrip_arbitrary_inputs(bytes in prop::collection::vec(0u32..256, 0..2048)) {
        let data: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let mut scratch = LzScratch::new();
        let stream = compress(&data, &mut scratch);
        prop_assert_eq!(decompress(&stream, data.len()).unwrap(), data);
    }

    #[test]
    fn arbitrary_streams_never_panic(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let stream: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        drive_decoder(&stream, 1 << 16);
    }

    #[test]
    fn arbitrary_lz_tagged_streams_never_panic(
        bytes in prop::collection::vec(0u32..256, 0..256),
        declared in 0u64..(1 << 20),
    ) {
        // Spend fuzz cases past the tag/length gate: a well-formed prefix
        // followed by garbage coded bytes.
        let mut stream = vec![TAG_LZ];
        let mut v = declared;
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 { stream.push(byte); break; }
            stream.push(byte | 0x80);
        }
        stream.extend(bytes.into_iter().map(|b| b as u8));
        drive_decoder(&stream, 1 << 20);
    }

    #[test]
    fn truncations_of_valid_streams_never_panic(
        seed in 0u64..500,
        len in 0usize..4096,
        cut_frac in 0.0f64..1.0,
    ) {
        let data = corpus_bytes(seed, len);
        let mut scratch = LzScratch::new();
        let stream = compress(&data, &mut scratch);
        let cut = ((stream.len().saturating_sub(1)) as f64 * cut_frac) as usize;
        drive_decoder(&stream[..cut], data.len());
    }

    #[test]
    fn bit_flipped_streams_never_panic_or_overrun(
        seed in 0u64..500,
        len in 1usize..4096,
        flip_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let data = corpus_bytes(seed, len);
        let mut scratch = LzScratch::new();
        let mut stream = compress(&data, &mut scratch);
        let at = ((stream.len() - 1) as f64 * flip_frac) as usize;
        stream[at] ^= 1 << bit;
        // A flip may silently decode to different bytes (the container's
        // per-frame CRC catches that layer); the decoder itself must only
        // promise no panic and no output past the declared length.
        drive_decoder(&stream, data.len());
    }

    #[test]
    fn caps_are_enforced_before_any_work(
        declared in 1024u64..(1 << 40),
        cap in 0usize..1024,
    ) {
        // Ranges guarantee declared > cap, so TooLarge must always fire.
        let mut stream = vec![TAG_LZ];
        let mut v = declared;
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 { stream.push(byte); break; }
            stream.push(byte | 0x80);
        }
        stream.extend_from_slice(&[0xAA; 32]);
        prop_assert!(matches!(
            decompress(&stream, cap),
            Err(LzError::TooLarge { .. })
        ));
    }
}

#[test]
fn exhaustive_single_byte_corruption_of_a_valid_stream() {
    // Deterministic nail-down: every byte of a valid stream set to every
    // value must decode to Ok-within-cap or a typed error, never a panic
    // or an allocation blow-up (the cap bounds both).
    let data = corpus_bytes(3, 1500);
    let mut scratch = LzScratch::new();
    let stream = compress(&data, &mut scratch);
    assert_eq!(stream[0], TAG_LZ, "corpus input should take the LZ path");
    for at in 0..stream.len().min(64) {
        for value in 0..=255u8 {
            let mut corrupt = stream.clone();
            corrupt[at] = value;
            drive_decoder(&corrupt, data.len());
        }
    }
}

#[test]
fn stored_blocks_survive_the_same_battery() {
    let mut stream = vec![TAG_STORED];
    stream.extend_from_slice(b"not compressible at this size");
    let body_len = stream.len() - 1;
    assert_eq!(decompress(&stream, body_len).unwrap(), &stream[1..]);
    for at in 0..stream.len() {
        for value in [0u8, 1, 2, 0x80, 0xFF] {
            let mut corrupt = stream.clone();
            corrupt[at] = value;
            drive_decoder(&corrupt, body_len);
        }
    }
}
