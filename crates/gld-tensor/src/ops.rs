//! Unary math, activations, normalisation helpers and softmax.
//!
//! Everything here operates element-wise or along the trailing axis and
//! returns a new tensor; the autograd layer in `gld-nn` wraps these with
//! backward rules.

use crate::tensor::Tensor;
use rayon::prelude::*;

impl Tensor {
    /// Element-wise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Element-wise power with a float exponent.
    pub fn powf(&self, p: f32) -> Tensor {
        self.map(move |x| x.powf(p))
    }

    /// Element-wise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp requires lo <= hi");
        self.map(move |x| x.clamp(lo, hi))
    }

    /// In-place variant of [`Tensor::clamp`] — no intermediate tensor.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        assert!(lo <= hi, "clamp requires lo <= hi");
        self.map_inplace(move |x| x.clamp(lo, hi));
    }

    /// Element-wise rounding to the nearest integer (the quantizer used by
    /// the learned compressors at inference time).
    pub fn round(&self) -> Tensor {
        self.map(f32::round)
    }

    /// In-place variant of [`Tensor::round`] — no intermediate tensor.
    pub fn round_inplace(&mut self) {
        self.map_inplace(f32::round);
    }

    /// Fused round-and-cast of every element into `i32` quantisation
    /// symbols — one pass, no intermediate rounded tensor.  Equivalent to
    /// `self.round()` followed by an element-wise `as i32` cast; this is
    /// the symbolisation step of the learned codecs' inference path.
    pub fn quantized_symbols(&self) -> Vec<i32> {
        let mut out = vec![0i32; self.numel()];
        out.par_iter_mut()
            .zip(self.data().par_iter())
            .for_each(|(o, &x)| *o = x.round() as i32);
        out
    }

    /// Fused clamp-round-quantize: clamps into `[lo, hi]`, rounds, and
    /// casts to `i32` symbols in a single pass.
    pub fn quantized_symbols_clamped(&self, lo: f32, hi: f32) -> Vec<i32> {
        assert!(lo <= hi, "clamp requires lo <= hi");
        let mut out = vec![0i32; self.numel()];
        out.par_iter_mut()
            .zip(self.data().par_iter())
            .for_each(|(o, &x)| *o = x.clamp(lo, hi).round() as i32);
        out
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Element-wise SiLU (`x * sigmoid(x)`), the activation used throughout
    /// the UNet and VAE.
    pub fn silu(&self) -> Tensor {
        self.map(|x| x / (1.0 + (-x).exp()))
    }

    /// Element-wise GELU (tanh approximation).
    pub fn gelu(&self) -> Tensor {
        self.map(|x| {
            0.5 * x
                * (1.0 + ((2.0 / std::f32::consts::PI).sqrt() * (x + 0.044715 * x * x * x)).tanh())
        })
    }

    /// Softmax along the last axis.
    ///
    /// The input is interpreted as a batch of rows; each row is normalised
    /// independently with the usual max-subtraction trick for stability.
    pub fn softmax_last(&self) -> Tensor {
        let dims = self.dims().to_vec();
        assert!(!dims.is_empty(), "softmax requires rank >= 1");
        let row = *dims.last().unwrap();
        let rows = self.numel() / row;
        let mut out = vec![0.0f32; self.numel()];
        out.par_chunks_mut(row)
            .zip(self.data().par_chunks(row))
            .for_each(|(o, x)| {
                let m = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for (oi, &xi) in o.iter_mut().zip(x.iter()) {
                    let e = (xi - m).exp();
                    *oi = e;
                    sum += e;
                }
                let inv = 1.0 / sum;
                for oi in o.iter_mut() {
                    *oi *= inv;
                }
            });
        debug_assert_eq!(rows * row, self.numel());
        Tensor::from_vec(out, &dims)
    }

    /// Log-softmax along the last axis.
    pub fn log_softmax_last(&self) -> Tensor {
        let dims = self.dims().to_vec();
        let row = *dims.last().unwrap();
        let mut out = vec![0.0f32; self.numel()];
        out.par_chunks_mut(row)
            .zip(self.data().par_chunks(row))
            .for_each(|(o, x)| {
                let m = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let lse = x.iter().map(|&xi| (xi - m).exp()).sum::<f32>().ln() + m;
                for (oi, &xi) in o.iter_mut().zip(x.iter()) {
                    *oi = xi - lse;
                }
            });
        Tensor::from_vec(out, &dims)
    }

    /// Min-max normalisation to `[-1, 1]`, returning the normalised tensor
    /// together with the `(min, max)` pair needed to invert it.
    ///
    /// When the tensor is constant the scale degenerates; in that case the
    /// output is all zeros and the recorded range is `(v, v)` so that
    /// [`Tensor::denormalize_minmax`] still reproduces the original value
    /// exactly (its scale becomes zero and only the offset survives).
    pub fn normalize_minmax(&self) -> (Tensor, f32, f32) {
        let min = self.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let max = self
            .data()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        // `partial_cmp` keeps the NaN behaviour explicit: any NaN (or a
        // constant tensor) short-circuits to the degenerate branch.
        if max.partial_cmp(&min) != Some(std::cmp::Ordering::Greater) {
            return (Tensor::zeros(self.dims()), min, min);
        }
        let scale = 2.0 / (max - min);
        let normalized = self.map(move |x| (x - min) * scale - 1.0);
        (normalized, min, max)
    }

    /// Inverts [`Tensor::normalize_minmax`].
    pub fn denormalize_minmax(&self, min: f32, max: f32) -> Tensor {
        let scale = (max - min) / 2.0;
        self.map(move |x| (x + 1.0) * scale + min)
    }

    /// Zero-mean / unit-range normalisation used for raw scientific frames
    /// (the paper normalises each frame independently because values span
    /// ~10^10).  Returns `(normalised, mean, range)`.
    pub fn normalize_mean_range(&self) -> (Tensor, f32, f32) {
        let n = self.numel() as f64;
        let mean = (self.data().iter().map(|&x| x as f64).sum::<f64>() / n) as f32;
        let min = self.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let max = self
            .data()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        let range = if max > min { max - min } else { 1.0 };
        let inv = 1.0 / range;
        let out = self.map(move |x| (x - mean) * inv);
        (out, mean, range)
    }

    /// Inverts [`Tensor::normalize_mean_range`].
    pub fn denormalize_mean_range(&self, mean: f32, range: f32) -> Tensor {
        self.map(move |x| x * range + mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_ops_match_std() {
        let t = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[5]);
        assert!(t.exp().data()[4] - 2.0f32.exp() < 1e-6);
        assert_eq!(t.abs().data()[0], 2.0);
        assert_eq!(t.relu().data()[0], 0.0);
        assert_eq!(t.relu().data()[4], 2.0);
        assert_eq!(t.square().data()[0], 4.0);
        assert_eq!(t.clamp(-1.0, 1.0).data()[0], -1.0);
        assert_eq!(t.round().data()[1], -1.0); // -0.5 rounds away from zero
    }

    #[test]
    fn fused_quantize_matches_composed_ops() {
        let t = Tensor::from_vec(vec![-2.6, -0.5, 0.49, 1.5, 7.2, -9.9], &[6]);
        let composed: Vec<i32> = t.round().data().iter().map(|&v| v as i32).collect();
        assert_eq!(t.quantized_symbols(), composed);
        let composed_clamped: Vec<i32> = t
            .clamp(-3.0, 2.0)
            .round()
            .data()
            .iter()
            .map(|&v| v as i32)
            .collect();
        assert_eq!(t.quantized_symbols_clamped(-3.0, 2.0), composed_clamped);
    }

    #[test]
    fn inplace_variants_match_allocating_ops() {
        let t = Tensor::from_vec(vec![-2.6, -0.5, 0.49, 1.5], &[4]);
        let mut r = t.clone();
        r.round_inplace();
        assert_eq!(r, t.round());
        let mut c = t.clone();
        c.clamp_inplace(-1.0, 1.0);
        assert_eq!(c, t.clamp(-1.0, 1.0));
    }

    #[test]
    fn sigmoid_silu_relationship() {
        let t = Tensor::from_vec(vec![-3.0, 0.0, 3.0], &[3]);
        let sig = t.sigmoid();
        let silu = t.silu();
        for i in 0..3 {
            assert!((silu.data()[i] - t.data()[i] * sig.data()[i]).abs() < 1e-6);
        }
        assert!((sig.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 10.0, 10.0, 10.0], &[2, 3]);
        let s = t.softmax_last();
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at(&[r, c])).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Uniform logits give uniform probabilities.
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-5);
        // Softmax is monotone in the logits.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let s = t.softmax_last();
        assert!(s.data().iter().all(|x| x.is_finite()));
        assert!((s.at(&[0, 0]) + s.at(&[0, 1]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]);
        let ls = t.log_softmax_last();
        let s = t.softmax_last();
        for i in 0..3 {
            assert!((ls.at(&[0, i]) - s.at(&[0, i]).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn minmax_normalization_roundtrip() {
        let t = Tensor::from_vec(vec![-5.0, 0.0, 10.0, 2.5], &[4]);
        let (n, min, max) = t.normalize_minmax();
        assert!(n.data().iter().cloned().fold(f32::INFINITY, f32::min) >= -1.0 - 1e-6);
        assert!(n.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max) <= 1.0 + 1e-6);
        let back = n.denormalize_minmax(min, max);
        for i in 0..4 {
            assert!((back.data()[i] - t.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn minmax_normalization_constant_input() {
        let t = Tensor::full(&[8], 7.0);
        let (n, min, max) = t.normalize_minmax();
        assert!(n.data().iter().all(|&x| x == 0.0));
        let back = n.denormalize_minmax(min, max);
        // Constant fields must survive the round trip exactly enough.
        for &v in back.data() {
            assert!((v - 7.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mean_range_normalization_roundtrip() {
        let t = Tensor::from_vec(vec![1e8, -2e8, 5e7, 0.0], &[4]);
        let (n, mean, range) = t.normalize_mean_range();
        assert!(n.data().iter().all(|x| x.abs() <= 1.0 + 1e-6));
        let back = n.denormalize_mean_range(mean, range);
        for i in 0..4 {
            assert!((back.data()[i] - t.data()[i]).abs() < 1e2); // relative to 1e8 scale
        }
    }
}
