//! Service-grade contract tests for the sharded compression service:
//!
//! * **Concurrency** — N client threads × M variables through a live
//!   in-process server, every round trip bit-identical to a direct
//!   [`Codec`] call (runs green under `RAYON_NUM_THREADS=1` and `=8`; CI's
//!   matrix exercises both).
//! * **Protocol robustness** — the frame decoder never panics on fuzzed
//!   input, and a live server survives raw garbage on a connection while
//!   continuing to serve others.
//! * **Backpressure/overload** — a deliberately slow client (its codec
//!   gated shut) congests one shard: that shard's in-flight count stays
//!   within the configured window, submitters beyond the window block, and
//!   the *other* shard keeps completing work the whole time.

use gld_baselines::SzCompressor;
use gld_core::{Codec, CodecId, Container, ErrorTarget, GldCompressor, GldConfig, StreamConfig};
use gld_datasets::{generate, DatasetKind, FieldSpec, Variable};
use gld_diffusion::ConditionalDiffusion;
use gld_service::protocol::{self, FrameHeader, Op, Status};
use gld_service::{
    ClientError, CodecRegistry, RateLimit, Reply, Server, ServiceClient, ServiceConfig,
    ShardPolicy, ShardRouter,
};
use gld_tensor::Tensor;
use gld_vae::Vae;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// An untrained (but fully functional and deterministic) GLD pipeline.
fn untrained_compressor() -> GldCompressor {
    let config = GldConfig::tiny();
    GldCompressor::from_parts(
        config,
        Vae::new(config.vae),
        ConditionalDiffusion::new(config.diffusion),
    )
}

fn start_server(config: ServiceConfig, registry: CodecRegistry) -> Server {
    Server::start(config, registry).expect("bind an ephemeral port")
}

fn poll_until(what: &str, deadline: Duration, mut check: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !check() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ───────────────────────── concurrency ─────────────────────────────────

#[test]
fn multi_client_round_trips_are_bit_identical_to_direct_codec_calls() {
    let mut registry = CodecRegistry::rule_based();
    registry.register(Arc::new(untrained_compressor()));
    let server = start_server(
        ServiceConfig {
            shards: 4,
            shard_window: 2,
            ..ServiceConfig::default()
        },
        registry,
    );
    let addr = server.local_addr();

    const CLIENTS: usize = 4;
    const VARIABLES: usize = 3;
    let total_requests = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for client_index in 0..CLIENTS {
            let total_requests = Arc::clone(&total_requests);
            scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                let info = client
                    .hello(&[CodecId::SzLike, CodecId::ZfpLike])
                    .expect("hello");
                assert_eq!(info.codec, CodecId::SzLike, "first preference wins");
                assert!(info.profiles, "current peers negotiate shared profiles");
                assert_eq!(info.shards, 4);
                assert_eq!(info.shard_window, 2);

                let sz = SzCompressor::new();
                let gld = untrained_compressor();
                for variable_index in 0..VARIABLES {
                    let seed = (client_index * 31 + variable_index) as u64;
                    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 16, 16, 16), seed);
                    let variable = &ds.variables[0];
                    let key = format!("client{client_index}/var{variable_index}");

                    // Alternate codecs and targets across requests.
                    let (codec, codec_id, target): (&dyn Codec, CodecId, Option<ErrorTarget>) =
                        if variable_index % 2 == 0 {
                            (&sz, CodecId::SzLike, Some(ErrorTarget::Nrmse(1e-2)))
                        } else {
                            (&gld, CodecId::Gld, None)
                        };

                    // Remote compress must be bit-identical to a direct
                    // profiled (container v4, the negotiated session format)
                    // `Codec` container encoding.
                    let remote = client
                        .compress_as(codec_id, &key, variable, 8, target)
                        .expect("remote compress");
                    let (local, stats, _) = codec.compress_variable_profiled(
                        variable,
                        8,
                        target,
                        StreamConfig::default(),
                    );
                    assert_eq!(
                        remote,
                        local.encode(),
                        "{key}: remote container differs from direct Codec output"
                    );
                    assert_eq!(stats.blocks, 2);

                    // And the remote decompress must match the direct one.
                    let blocks = client.decompress(&key, &remote).expect("remote decompress");
                    let reference = codec
                        .decompress_container(&Container::decode(&remote).expect("decodes"))
                        .expect("matching codec id");
                    assert_eq!(blocks.len(), reference.len());
                    for (a, b) in blocks.iter().zip(&reference) {
                        assert_eq!(a.dims(), b.dims(), "{key}: block dims differ");
                        assert_eq!(a.data(), b.data(), "{key}: block data differs");
                    }
                    total_requests.fetch_add(2, Ordering::Relaxed);
                }
                // Session-default compress (no explicit codec byte) uses the
                // negotiated codec.
                let ds = generate(DatasetKind::S3d, &FieldSpec::new(1, 16, 8, 8), 99);
                let remote = client
                    .compress(
                        &format!("client{client_index}/default"),
                        &ds.variables[0],
                        8,
                        None,
                    )
                    .expect("session-codec compress");
                let (local, _, _) = sz.compress_variable_profiled(
                    &ds.variables[0],
                    8,
                    None,
                    StreamConfig::default(),
                );
                assert_eq!(remote, local.encode());
                total_requests.fetch_add(1, Ordering::Relaxed);
            });
        }
    });

    let metrics = server.shutdown();
    let expected = total_requests.load(Ordering::Relaxed);
    assert_eq!(
        metrics.completed(),
        expected,
        "every admitted request completed: {metrics:?}"
    );
    assert!(metrics.shards.iter().all(|s| s.in_flight == 0));
    assert!(
        metrics.shards.iter().all(|s| s.peak_in_flight <= 2),
        "no shard ever exceeded its window: {metrics:?}"
    );
    assert_eq!(metrics.connections_opened, CLIENTS);
    assert_eq!(metrics.requests_rejected, 0);
}

#[test]
fn deterministic_sharding_pins_a_key_and_round_robin_overrides_it() {
    // The same key always lands on the hash-assigned shard...
    let server = start_server(
        ServiceConfig {
            shards: 3,
            ..ServiceConfig::default()
        },
        CodecRegistry::rule_based(),
    );
    let addr = server.local_addr();
    let mut client = ServiceClient::connect(addr).expect("connect");
    let ds = generate(DatasetKind::Jhtdb, &FieldSpec::new(1, 8, 8, 8), 5);
    let key = "pinned-variable";
    let expected_shard = ShardRouter::hash_shard(key, 3);
    for _ in 0..3 {
        client
            .compress_as(CodecId::SzLike, key, &ds.variables[0], 4, None)
            .expect("compress");
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.shards[expected_shard].completed, 3);
    for (index, shard) in metrics.shards.iter().enumerate() {
        if index != expected_shard {
            assert_eq!(shard.completed, 0, "hash routing must pin the key");
        }
    }

    // ...while round-robin spreads the identical key across shards.
    let server = start_server(
        ServiceConfig {
            shards: 3,
            policy: ShardPolicy::RoundRobin,
            ..ServiceConfig::default()
        },
        CodecRegistry::rule_based(),
    );
    let addr = server.local_addr();
    let mut client = ServiceClient::connect(addr).expect("connect");
    for _ in 0..3 {
        client
            .compress_as(CodecId::SzLike, key, &ds.variables[0], 4, None)
            .expect("compress");
    }
    let metrics = server.shutdown();
    assert!(
        metrics.shards.iter().all(|s| s.completed == 1),
        "round-robin must spread the same key: {metrics:?}"
    );
}

// ───────────────────── protocol robustness ─────────────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fuzzed_frames_never_panic_the_decoder(
        bytes in prop::collection::vec(0u32..256, 0..80),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        // Typed result or nothing: a panic here fails the test.
        let _ = protocol::decode_frame(&bytes);
        // And with a valid header prefix so body decoders run too.
        let mut framed = FrameHeader::request(Op::Compress, 2, 1, 0).encode().to_vec();
        framed.extend_from_slice(&bytes);
        let tail = bytes.len() as u64;
        framed[24..32].copy_from_slice(&tail.to_le_bytes());
        if let Ok((_, body)) = protocol::decode_frame(&framed) {
            let _ = protocol::CompressRequest::decode_body(body);
            let _ = protocol::DecompressRequest::decode_body(body);
            let _ = protocol::HelloRequest::decode_body(body);
        }
    }
}

#[test]
fn live_server_survives_garbage_and_typed_error_paths() {
    let server = start_server(ServiceConfig::default(), CodecRegistry::rule_based());
    let addr = server.local_addr();

    // Raw garbage: the server answers best-effort (or just closes) and the
    // connection dies — without taking the server down.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        raw.write_all(b"this is definitely not a GLDS frame, not even close")
            .expect("write garbage");
        // Whatever happens on this socket, the server must keep serving.
    }

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 8, 8, 8), 3);
    let variable = &ds.variables[0];
    let mut client = ServiceClient::connect(addr).expect("connect after garbage");

    // Unknown codec id.
    let err = client
        .compress_as(CodecId::Gld, "k", variable, 4, None)
        .expect_err("Gld is not registered on this server");
    assert!(
        matches!(
            err,
            ClientError::Server {
                status: Status::UnknownCodec,
                ..
            }
        ),
        "{err:?}"
    );

    // No session codec negotiated and no explicit codec byte.
    let err = client
        .compress("k", variable, 4, None)
        .expect_err("no session codec yet");
    assert!(
        matches!(
            err,
            ClientError::Server {
                status: Status::UnknownCodec,
                ..
            }
        ),
        "{err:?}"
    );

    // Too few timesteps for one block: typed refusal, not a server panic.
    let err = client
        .compress_as(CodecId::SzLike, "k", variable, 64, None)
        .expect_err("8 timesteps cannot fill a 64-frame block");
    assert!(
        matches!(
            err,
            ClientError::Server {
                status: Status::Malformed,
                ..
            }
        ),
        "{err:?}"
    );

    // A corrupt container: typed BadContainer, naming the damage.
    let good = client
        .compress_as(CodecId::SzLike, "k", variable, 4, None)
        .expect("compress");
    let mut corrupt = good.clone();
    let at = gld_core::container::HEADER_LEN + 12;
    corrupt[at] ^= 0x20;
    let err = client
        .decompress("k", &corrupt)
        .expect_err("bit-flipped container");
    assert!(
        matches!(
            err,
            ClientError::Server {
                status: Status::BadContainer,
                ..
            }
        ),
        "{err:?}"
    );

    // The same connection still serves real work after every refusal.
    let blocks = client.decompress("k", &good).expect("valid decompress");
    assert_eq!(blocks.len(), 2);
    let metrics = server.shutdown();
    // Protocol/container refusals land in the disjoint `rejected_other`
    // cause bucket (nothing here was rate-limited or expired), and the
    // roll-up is always the sum of the causes.
    assert!(metrics.rejected_other >= 3, "{metrics:?}");
    assert_eq!(metrics.requests_rate_limited, 0);
    assert_eq!(metrics.deadlines_exceeded, 0);
    assert_eq!(
        metrics.requests_rejected,
        metrics.rejected_other + metrics.requests_rate_limited + metrics.deadlines_exceeded,
        "{metrics:?}"
    );
}

// ─────────────────── backpressure / overload ───────────────────────────

/// A codec whose compress path blocks on a shared gate — the deterministic
/// stand-in for a shard whose work drains slowly (as a slow consumer
/// produces).  Registered under the `Gld` id so the SZ3-like codec on the
/// other shard stays fast.
struct GatedCodec {
    inner: SzCompressor,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl GatedCodec {
    fn wait_open(&self) {
        let (lock, cv) = &*self.gate;
        let mut open = lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*open {
            open = cv.wait(open).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cv) = &**gate;
    *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
    cv.notify_all();
}

impl Codec for GatedCodec {
    fn name(&self) -> &str {
        "gated"
    }
    fn id(&self) -> CodecId {
        CodecId::Gld
    }
    fn compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        block_index: u64,
    ) -> Vec<u8> {
        self.wait_open();
        self.inner.compress_block_at(block, target, block_index)
    }
    fn decompress_block(&self, frame: &[u8]) -> Tensor {
        self.inner.decompress_block(frame)
    }
}

#[test]
fn overloaded_shard_respects_its_window_while_other_shards_flow() {
    const WINDOW: usize = 2;
    const QUEUE_DEPTH: usize = 2;
    const SLOW_CLIENTS: usize = 4;
    const FAST_REQUESTS: usize = 6;

    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut registry = CodecRegistry::rule_based();
    registry.register(Arc::new(GatedCodec {
        inner: SzCompressor::new(),
        gate: Arc::clone(&gate),
    }));
    let server = start_server(
        ServiceConfig {
            shards: 2,
            shard_window: WINDOW,
            stream: StreamConfig {
                queue_depth: QUEUE_DEPTH,
                workers: 0,
            },
            ..ServiceConfig::default()
        },
        registry,
    );
    let addr = server.local_addr();

    // Pick keys whose deterministic hash assignment pins them to each shard.
    let slow_key = (0..)
        .map(|i| format!("slow-{i}"))
        .find(|k| ShardRouter::hash_shard(k, 2) == 0)
        .expect("a key hashing to shard 0");
    let fast_key = (0..)
        .map(|i| format!("fast-{i}"))
        .find(|k| ShardRouter::hash_shard(k, 2) == 1)
        .expect("a key hashing to shard 1");

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 16, 8, 8), 13);
    let slow_variable = ds.variables[0].clone();

    // The deliberately slow side: more congested requests than the window
    // admits, all pinned to shard 0, none able to finish while the gate is
    // shut.
    let slow_threads: Vec<_> = (0..SLOW_CLIENTS)
        .map(|_| {
            let slow_key = slow_key.clone();
            let variable = Variable::new(slow_key.clone(), slow_variable.frames.clone());
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                // Negotiate the session (stage only, no profiles) so the
                // gated responses compare against the staged v3 encoding.
                client
                    .hello_with_options(&[CodecId::Gld], true, false)
                    .expect("hello");
                client
                    .compress_as(CodecId::Gld, &slow_key, &variable, 4, None)
                    .expect("gated compress eventually succeeds")
            })
        })
        .collect();

    // Wait until shard 0's window is saturated: exactly WINDOW admitted,
    // the remaining submitters blocked in admission — never counted in.
    poll_until(
        "shard 0 to saturate its window",
        Duration::from_secs(60),
        || server.metrics().shards[0].in_flight == WINDOW,
    );

    // The other shard must keep completing work the whole time.
    let sz = SzCompressor::new();
    let mut fast_client = ServiceClient::connect(addr).expect("connect");
    fast_client
        .hello_with_options(&[CodecId::SzLike], true, false)
        .expect("hello");
    for i in 0..FAST_REQUESTS {
        let ds = generate(
            DatasetKind::Jhtdb,
            &FieldSpec::new(1, 16, 8, 8),
            100 + i as u64,
        );
        let remote = fast_client
            .compress_as(CodecId::SzLike, &fast_key, &ds.variables[0], 4, None)
            .expect("fast shard must not be stalled by the slow one");
        let (local, _) = sz.compress_variable(&ds.variables[0], 4, None);
        assert_eq!(remote, local.encode(), "fast path stays bit-identical");
    }

    let during = server.metrics();
    assert_eq!(
        during.shards[0].in_flight, WINDOW,
        "congested shard holds exactly its window: {during:?}"
    );
    assert!(
        during.shards[0].peak_in_flight <= WINDOW,
        "in-flight never exceeded the window: {during:?}"
    );
    assert_eq!(
        during.shards[0].completed, 0,
        "nothing on the gated shard finished yet"
    );
    assert_eq!(
        during.shards[1].completed, FAST_REQUESTS,
        "the other shard flowed: {during:?}"
    );

    // Open the gate: the backlog drains, blocked submitters are admitted,
    // and every slow client gets its correct container.
    open_gate(&gate);
    let reference_codec = GatedCodec {
        inner: SzCompressor::new(),
        gate: Arc::clone(&gate),
    };
    let reference = {
        let variable = Variable::new(slow_key.clone(), slow_variable.frames.clone());
        reference_codec
            .compress_variable(&variable, 4, None)
            .0
            .encode()
    };
    for thread in slow_threads {
        let container = thread.join().expect("slow client thread");
        assert_eq!(container, reference, "gated responses are still correct");
    }

    let metrics = server.shutdown();
    assert_eq!(metrics.shards[0].completed, SLOW_CLIENTS);
    assert!(
        metrics.shards[0].peak_in_flight <= WINDOW,
        "window held through the drain: {metrics:?}"
    );
    assert!(
        metrics
            .shards
            .iter()
            .all(|s| s.peak_resident_blocks <= QUEUE_DEPTH),
        "executor memory bound held per shard: {metrics:?}"
    );
    assert!(metrics.shards.iter().all(|s| s.in_flight == 0));
}

// ──────────────────────── pipelining ───────────────────────────────────

#[test]
fn soak_200_keepalive_connections_pipelining_mixed_ops_stay_bit_identical() {
    // 200+ keepalive connections, each holding a pipelined window of mixed
    // ping/compress/decompress requests open at once, every response
    // matched back by request id and bit-identical to a local `Codec` call.
    const CONNS: usize = 200;
    const VARIANTS: usize = 8;

    let server = start_server(
        ServiceConfig {
            shards: 2,
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServiceConfig::default()
        },
        CodecRegistry::rule_based(),
    );
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("metrics endpoint is up");

    // Tiny distinct variables, with local profiled (v4, the negotiated
    // session format) references computed once.
    let sz = SzCompressor::new();
    let references: Vec<_> = (0..VARIANTS)
        .map(|i| {
            let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 8, 8, 8), i as u64);
            let variable = ds.variables[0].clone();
            let (container, _, _) =
                sz.compress_variable_profiled(&variable, 8, None, StreamConfig::default());
            let encoded = container.encode();
            let blocks = sz
                .decompress_container(&Container::decode(&encoded).expect("decodes"))
                .expect("local decompress");
            (variable, encoded, blocks)
        })
        .collect();

    // Open every connection and submit each one's full window before
    // draining any of them: the server holds 200 live pipelined
    // connections with outstanding work simultaneously.
    let mut pipes = Vec::with_capacity(CONNS);
    for conn in 0..CONNS {
        let mut client = ServiceClient::connect(addr).expect("connect");
        client.hello(&[CodecId::SzLike]).expect("hello");
        let mut pipe = client.into_pipelined();
        let (variable, encoded, _) = &references[conn % VARIANTS];
        let key = format!("soak/{}", conn % VARIANTS);
        let mut ids = std::collections::HashMap::new();
        ids.insert(pipe.submit_ping().expect("submit ping"), "ping");
        ids.insert(
            pipe.submit_compress(&key, variable, 8, None)
                .expect("submit compress"),
            "compress",
        );
        ids.insert(
            pipe.submit_decompress(&key, encoded)
                .expect("submit decompress"),
            "decompress",
        );
        ids.insert(pipe.submit_ping().expect("submit ping"), "ping");
        pipes.push((pipe, ids, conn % VARIANTS));
    }

    // Mid-soak, with 200 pipelined connections live and outstanding work
    // queued, the metrics endpoint must still serve valid exposition.
    {
        use std::io::{Read, Write};
        let mut stream =
            std::net::TcpStream::connect(metrics_addr).expect("connect metrics endpoint");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("write scrape");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read scrape");
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.starts_with("HTTP/1.0 200"), "scrape refused: {head}");
        let active = gld_obs::registry::scrape_value(body, "glds_connections_active", "", &[])
            .expect("active-connections gauge");
        assert_eq!(active as usize, CONNS, "every soak connection is live");
        assert!(
            body.contains("# TYPE glds_request_duration_ns histogram"),
            "latency families served under load"
        );
    }

    for (mut pipe, mut ids, variant) in pipes {
        let (_, encoded, blocks) = &references[variant];
        for (id, reply) in pipe.drain().expect("drain") {
            match (ids.remove(&id).expect("id matches a submit"), reply) {
                ("ping", Reply::Pong) => {}
                ("compress", Reply::Compressed(bytes)) => {
                    assert_eq!(&bytes, encoded, "pipelined compress differs from local");
                }
                ("decompress", Reply::Decompressed(got)) => {
                    assert_eq!(got.len(), blocks.len());
                    for (a, b) in got.iter().zip(blocks) {
                        assert_eq!(a.data(), b.data(), "pipelined decompress differs");
                    }
                }
                (kind, other) => panic!("{kind} answered with {other:?}"),
            }
        }
        assert!(ids.is_empty(), "every submit answered exactly once");
    }

    let metrics = server.shutdown();
    assert_eq!(metrics.connections_opened, CONNS);
    assert_eq!(metrics.completed(), CONNS * 2, "2 codec ops per connection");
    assert_eq!(metrics.requests_rejected, 0);
    assert!(metrics.shards.iter().all(|s| s.in_flight == 0));
}

#[test]
fn responses_come_back_out_of_order_when_earlier_work_is_slower() {
    // The pipelining contract in one picture: a gated compress submitted
    // FIRST is answered AFTER a ping submitted behind it — the request id,
    // not arrival order, is the correlation key.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut registry = CodecRegistry::rule_based();
    registry.register(Arc::new(GatedCodec {
        inner: SzCompressor::new(),
        gate: Arc::clone(&gate),
    }));
    let server = start_server(ServiceConfig::default(), registry);
    let addr = server.local_addr();

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 8, 8, 8), 21);
    let mut client = ServiceClient::connect(addr).expect("connect");
    client
        .hello_with_options(&[CodecId::Gld], true, false)
        .expect("hello");
    let mut pipe = client.into_pipelined();

    let compress_id = pipe
        .submit_compress("gated", &ds.variables[0], 4, None)
        .expect("submit gated compress");
    let ping_id = pipe.submit_ping().expect("submit ping behind it");

    let (first, reply) = pipe.recv().expect("first reply");
    assert_eq!(first, ping_id, "the ping overtakes the gated compress");
    assert!(matches!(reply, Reply::Pong));

    open_gate(&gate);
    let (second, reply) = pipe.recv().expect("second reply");
    assert_eq!(second, compress_id);
    let reference = GatedCodec {
        inner: SzCompressor::new(),
        gate: Arc::clone(&gate),
    }
    .compress_variable(&ds.variables[0], 4, None)
    .0
    .encode();
    match reply {
        Reply::Compressed(bytes) => assert_eq!(bytes, reference),
        other => panic!("expected the compress, got {other:?}"),
    }
    drop(pipe);
    server.shutdown();
}

#[test]
fn rate_limited_codec_ops_get_a_typed_status_and_the_connection_survives() {
    // A token bucket of 2 with no refill: the first two compresses pass,
    // the next three come back `RateLimited` — typed, per-request, with
    // the connection (and its pings, which are not rate-limited) intact.
    let server = start_server(
        ServiceConfig {
            rate_limit: Some(RateLimit {
                capacity: 2,
                refill_per_sec: 0.0,
            }),
            ..ServiceConfig::default()
        },
        CodecRegistry::rule_based(),
    );
    let addr = server.local_addr();

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 8, 8, 8), 31);
    let variable = &ds.variables[0];
    let mut client = ServiceClient::connect(addr).expect("connect");
    client.hello(&[CodecId::SzLike]).expect("hello");
    let mut pipe = client.into_pipelined();

    let mut ids = Vec::new();
    for i in 0..5 {
        ids.push(
            pipe.submit_compress(&format!("rl/{i}"), variable, 8, None)
                .expect("submit compress"),
        );
    }
    let ping_id = pipe.submit_ping().expect("pings are not rate-limited");

    let mut compressed = 0;
    let mut limited = 0;
    let mut ponged = 0;
    for (id, reply) in pipe.drain().expect("drain") {
        match reply {
            Reply::Compressed(_) => {
                assert!(ids.contains(&id));
                compressed += 1;
            }
            Reply::Refused { status, .. } => {
                assert_eq!(status, Status::RateLimited, "typed rate-limit status");
                assert!(ids.contains(&id));
                limited += 1;
            }
            Reply::Pong => {
                assert_eq!(id, ping_id);
                ponged += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!((compressed, limited, ponged), (2, 3, 1));

    // The connection keeps serving, and the refusals are accounted.
    pipe.submit_ping().expect("submit after refusals");
    pipe.drain().expect("connection still healthy");
    let metrics = server.shutdown();
    assert_eq!(metrics.requests_rate_limited, 3);
    // Rate-limited refusals are counted under their own disjoint cause,
    // never double-counted into `rejected_other`; the roll-up is the sum.
    assert_eq!(metrics.rejected_other, 0, "{metrics:?}");
    assert_eq!(metrics.deadlines_exceeded, 0);
    assert_eq!(metrics.requests_rejected, 3, "{metrics:?}");
    assert_eq!(metrics.completed(), 2);
}

// ───────────────────── graceful shutdown ───────────────────────────────

#[test]
fn wire_shutdown_drains_and_a_drained_server_refuses_new_connections() {
    let server = start_server(ServiceConfig::default(), CodecRegistry::rule_based());
    let addr = server.local_addr();

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 16, 8, 8), 17);
    let mut client = ServiceClient::connect(addr).expect("connect");
    let container = client
        .compress_as(CodecId::SzLike, "v", &ds.variables[0], 4, None)
        .expect("compress");
    assert!(!container.is_empty());
    client.shutdown_server().expect("shutdown acknowledged");

    // `wait` returns once the wire shutdown has drained everything.
    let metrics = server.wait();
    assert_eq!(metrics.completed(), 1);
    assert!(metrics.shards.iter().all(|s| s.in_flight == 0));

    // The listener is gone: new connections are refused (or reset).
    let refused = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    if let Ok(stream) = refused {
        // Accepted by a lingering backlog at most — it must not serve.
        use std::io::Read;
        let mut probe = stream;
        probe
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut buf = [0u8; 1];
        assert!(
            !probe.read(&mut buf).map(|n| n > 0).unwrap_or(false),
            "a drained server must not answer"
        );
    }
}

// ─────────────────── container-stage negotiation ───────────────────────

#[test]
fn stage_negotiation_serves_v3_to_new_clients_and_v2_to_old_ones() {
    let server = start_server(ServiceConfig::default(), CodecRegistry::rule_based());
    let addr = server.local_addr();
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 32, 16, 16), 71);
    let variable = &ds.variables[0];
    let sz = SzCompressor::new();
    let (local, _) = Codec::compress_variable(&sz, variable, 8, None);

    // A stage-era client advertises the stage bit alone, the server echoes
    // it, and compress responses arrive as staged v3 containers —
    // bit-identical to the local v3 encoding.
    let mut staged = ServiceClient::connect(addr).expect("connect");
    let info = staged
        .hello_with_options(&[CodecId::SzLike], true, false)
        .expect("hello");
    assert!(info.stage, "stage-capable pair must negotiate the stage");
    assert!(staged.stage_enabled());
    assert!(!info.profiles, "profiles were not requested");
    assert!(!staged.profiles_enabled());
    let remote_v3 = staged
        .compress("stage/var", variable, 8, None)
        .expect("staged compress");
    assert_eq!(remote_v3, local.encode(), "staged response must be v3");
    assert_eq!(
        u16::from_le_bytes([remote_v3[4], remote_v3[5]]),
        gld_core::container::VERSION
    );

    // A pre-stage client (reserved byte zero, exactly what an old binary
    // sends) transparently gets the stage-free v2 stream its decoder
    // predates the stage for.
    let mut old = ServiceClient::connect(addr).expect("connect");
    let info = old
        .hello_with_options(&[CodecId::SzLike], false, false)
        .expect("hello");
    assert!(!info.stage, "server must not stage for a silent client");
    assert!(!old.stage_enabled());
    let remote_v2 = old
        .compress("stage/var", variable, 8, None)
        .expect("unstaged compress");
    assert_eq!(remote_v2, local.encode_v2(), "old client must receive v2");
    assert_eq!(u16::from_le_bytes([remote_v2[4], remote_v2[5]]), 2);
    assert!(
        remote_v3.len() < remote_v2.len(),
        "the negotiated stage must shrink the response body ({} vs {})",
        remote_v3.len(),
        remote_v2.len()
    );

    // Both containers decompress server-side to identical blocks, whatever
    // session they are sent over.
    let a = staged
        .decompress("stage/var", &remote_v3)
        .expect("decompress v3");
    let b = old
        .decompress("stage/var", &remote_v2)
        .expect("decompress v2");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.data(), y.data(), "staged/unstaged reconstructions differ");
    }

    drop(staged);
    drop(old);
    server.shutdown();
}

#[test]
fn profile_negotiation_serves_v4_warm_containers_and_downgrades_cleanly() {
    let server = start_server(ServiceConfig::default(), CodecRegistry::rule_based());
    let addr = server.local_addr();
    let ds = generate(DatasetKind::S3d, &FieldSpec::new(1, 32, 16, 16), 41);
    let variable = &ds.variables[0];
    let sz = SzCompressor::new();
    let target = Some(ErrorTarget::Nrmse(1e-3));

    // A current client's default hello advertises both feature bits; the
    // server echoes both and compress responses arrive as v4 containers —
    // bit-identical to the local profiled encoding.
    let mut warm = ServiceClient::connect(addr).expect("connect");
    let info = warm.hello(&[CodecId::SzLike]).expect("hello");
    assert!(
        info.profiles,
        "profile-capable pair must negotiate profiles"
    );
    assert!(info.stage, "the stage bit is negotiated independently");
    assert!(warm.profiles_enabled());
    let remote_v4 = warm
        .compress("profiles/var", variable, 8, target)
        .expect("profiled compress");
    let (local, _, _) = sz.compress_variable_profiled(variable, 8, target, StreamConfig::default());
    assert_eq!(
        remote_v4,
        local.encode(),
        "profiled response must match the local v4 encoding"
    );
    assert_eq!(
        u16::from_le_bytes([remote_v4[4], remote_v4[5]]),
        gld_core::container::VERSION_V4
    );

    // A warm container must cost no more than the per-frame staged v3
    // stream for the same variable, even carrying its profile table.
    let (cold, _) = Codec::compress_variable(&sz, variable, 8, target);
    let cold_v3 = cold.encode();
    assert!(
        remote_v4.len() <= cold_v3.len(),
        "shared profiles must not grow the container ({} vs {})",
        remote_v4.len(),
        cold_v3.len()
    );

    // A stage-era client that never learned the profile bit is capped at
    // the staged v3 stream; the bits downgrade independently.
    let mut staged = ServiceClient::connect(addr).expect("connect");
    let info = staged
        .hello_with_options(&[CodecId::SzLike], true, false)
        .expect("hello");
    assert!(info.stage && !info.profiles);
    let remote_v3 = staged
        .compress("profiles/var", variable, 8, target)
        .expect("staged compress");
    assert_eq!(remote_v3, cold_v3, "stage-only session must stay on v3");

    // Both containers decompress server-side to identical blocks, whatever
    // session carries them.
    let a = warm
        .decompress("profiles/var", &remote_v4)
        .expect("decompress v4");
    let b = staged
        .decompress("profiles/var", &remote_v3)
        .expect("decompress v3");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.data(), y.data(), "warm/cold reconstructions differ");
    }

    drop(warm);
    drop(staged);
    server.shutdown();
}

#[test]
fn unknown_feature_bits_in_hello_do_not_break_the_session() {
    // A hypothetical future client advertising feature bits this server
    // does not know must still negotiate fine (the reserved-byte relaxation
    // this stage negotiation is built on).
    let server = start_server(ServiceConfig::default(), CodecRegistry::rule_based());
    let addr = server.local_addr();

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let hello = gld_service::protocol::HelloRequest {
        proposals: vec![CodecId::SzLike as u8],
    };
    let body = hello.encode_body();
    let header = FrameHeader::request(Op::Hello, 0, 9, body.len() as u64)
        .with_ext(protocol::EXT_CONTAINER_STAGE | 0b1111_0000);
    protocol::write_frame(&mut stream, &header, &body).expect("write hello");
    let (response, _) = protocol::read_frame(&mut stream, protocol::MAX_BODY_LEN)
        .expect("read")
        .expect("decode");
    assert_eq!(response.status, Status::Ok);
    assert_eq!(
        response.ext & protocol::EXT_CONTAINER_STAGE,
        protocol::EXT_CONTAINER_STAGE,
        "the known bit is echoed; unknown bits are ignored"
    );
    assert_eq!(
        response.ext & 0b1111_0000,
        0,
        "the server must not echo bits it does not understand"
    );
    drop(stream);
    server.shutdown();
}

#[test]
fn pre_range_coder_containers_get_a_typed_service_refusal() {
    // A client replaying a stored PR-3-era learned-codec stream (v1
    // framing) must get the named cross-build diagnostic, not garbage or an
    // Internal panic status.
    let mut registry = CodecRegistry::rule_based();
    registry.register(Arc::new(untrained_compressor()));
    let server = start_server(ServiceConfig::default(), registry);
    let addr = server.local_addr();

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 16, 16, 16), 73);
    let gld = untrained_compressor();
    let (container, _) = Codec::compress_variable(&gld, &ds.variables[0], 8, None);
    let legacy = container.encode_v1();

    let mut client = ServiceClient::connect(addr).expect("connect");
    match client.decompress("legacy/var", &legacy) {
        Err(ClientError::Server { status, message }) => {
            assert_eq!(status, Status::BadContainer);
            assert!(
                message.contains("pre-range-coder"),
                "diagnostic must name the incompatibility: {message}"
            );
        }
        other => panic!("expected a typed BadContainer refusal, got {other:?}"),
    }
    // The connection keeps serving after the refusal.
    client.ping().expect("connection still alive");
    drop(client);
    server.shutdown();
}

#[test]
fn hello_downgrades_to_stage_free_against_a_pre_stage_server() {
    // A faithful stand-in for a server built before the stage bit existed:
    // any non-zero reserved byte is a framing violation — answer a
    // best-effort error frame (op Ping, request id 0, exactly the old
    // code's `respond_error` on a RawFrameHeader failure) and close.  A
    // zero reserved byte negotiates normally.  The upgraded client's
    // `hello` must absorb the rejection, re-dial, and come back with a
    // stage-free session instead of an error.
    use std::io::{Read as _, Write as _};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let old_server = std::thread::spawn(move || {
        for _ in 0..2 {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut header = [0u8; protocol::HEADER_LEN];
            stream.read_exact(&mut header).expect("read header");
            if header[9..16].iter().any(|&b| b != 0) {
                let message = b"non-zero reserved header bytes";
                let response =
                    FrameHeader::response(Op::Ping, 0, Status::Malformed, 0, message.len() as u64);
                stream.write_all(&response.encode()).unwrap();
                stream.write_all(message).unwrap();
                continue; // close: the stream position cannot be trusted
            }
            let decoded = protocol::FrameHeader::decode(&header).expect("valid header");
            let mut body = vec![0u8; decoded.body_len as usize];
            stream.read_exact(&mut body).expect("read body");
            let request =
                gld_service::protocol::HelloRequest::decode_body(&body).expect("hello body");
            let info = gld_service::protocol::HelloResponse {
                shards: 1,
                shard_window: 1,
                queue_depth: 1,
            };
            let payload = info.encode_body();
            let response = FrameHeader::response(
                Op::Hello,
                request.proposals[0],
                Status::Ok,
                decoded.request_id,
                payload.len() as u64,
            );
            stream.write_all(&response.encode()).unwrap();
            stream.write_all(&payload).unwrap();
        }
    });

    let mut client = ServiceClient::connect(addr).expect("connect");
    let info = client
        .hello(&[CodecId::SzLike])
        .expect("hello must downgrade");
    assert_eq!(info.codec, CodecId::SzLike);
    assert!(
        !info.stage,
        "a pre-stage server can only yield a stage-free session"
    );
    assert!(!client.stage_enabled());
    old_server.join().expect("old-server thread");
}
