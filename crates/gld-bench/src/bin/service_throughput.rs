//! Service throughput benchmark: requests per second and p50/p99 latency
//! through a live in-process sharded compression server, in the style of
//! `pool_dispatch`.
//!
//! Three sections, each swept over client counts:
//!
//! 1. **ping** — protocol + dispatch floor (no codec work);
//! 2. **compress** — SZ3-like containers streamed back from the per-shard
//!    executors, once per negotiated container feature level (stage-off
//!    v2, stage-on v3, shared-profile v4);
//! 3. **decompress** — each of those containers back into frames.
//!
//! Every client thread uses its own connection and key (hash-sharded), so
//! higher client counts genuinely spread across shards.  Results land in
//! `results/service_throughput.csv`.

use gld_bench::write_result;
use gld_core::CodecId;
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_service::{CodecRegistry, Server, ServiceClient, ServiceConfig};
use std::time::Instant;

/// Latency percentile over a sorted sample, nearest-rank.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    assert!(!sorted_ms.is_empty());
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// One container feature level the session can negotiate: which `Hello`
/// bits to advertise, and the container version an SZ3-like compress
/// response comes back as.
#[derive(Clone, Copy)]
struct FeatureLeg {
    label: &'static str,
    stage: bool,
    profiles: bool,
    notes: &'static str,
}

const FEATURE_LEGS: [FeatureLeg; 3] = [
    FeatureLeg {
        label: "stage-off",
        stage: false,
        profiles: false,
        notes: "v2 containers (pre-stage client)",
    },
    FeatureLeg {
        label: "stage-on",
        stage: true,
        profiles: false,
        notes: "v3 containers (per-frame stage)",
    },
    FeatureLeg {
        label: "profiles",
        stage: true,
        profiles: true,
        notes: "v4 containers (shared profiles + warm stage)",
    },
];

struct RunStats {
    elapsed_s: f64,
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Runs `requests_per_client` requests on each of `clients` threads and
/// merges the per-request latencies.  `setup` runs once per connection
/// before timing starts (feature negotiation lives there, not in the
/// measured window).
fn run(
    addr: std::net::SocketAddr,
    clients: usize,
    requests_per_client: usize,
    setup: impl Fn(&mut ServiceClient) + Sync,
    request: impl Fn(&mut ServiceClient, &str, usize) + Sync,
) -> RunStats {
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let setup = &setup;
        let request = &request;
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("connect");
                    setup(&mut client);
                    let key = format!("bench-client-{client_index}");
                    let mut samples = Vec::with_capacity(requests_per_client);
                    for i in 0..requests_per_client {
                        let t0 = Instant::now();
                        request(&mut client, &key, i);
                        samples.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("bench client thread"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    RunStats {
        elapsed_s,
        req_per_s: latencies.len() as f64 / elapsed_s,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

fn main() {
    let shards = 4;
    let server = Server::start(
        ServiceConfig {
            shards,
            shard_window: 4,
            ..ServiceConfig::default()
        },
        CodecRegistry::rule_based(),
    )
    .expect("start in-process server");
    let addr = server.local_addr();
    println!(
        "service-throughput bench — {shards} shards on {addr}, {} pool workers\n",
        rayon::current_num_threads()
    );
    let mut csv =
        String::from("section,clients,requests,elapsed_s,req_per_s,p50_ms,p99_ms,notes\n");

    // One variable per client key; compress once per feature level up front
    // for the decompress section.
    let ds = generate(DatasetKind::S3d, &FieldSpec::new(1, 32, 32, 32), 61);
    let variable = &ds.variables[0];
    let containers: Vec<Vec<u8>> = FEATURE_LEGS
        .iter()
        .map(|leg| {
            let mut client = ServiceClient::connect(addr).expect("connect");
            client
                .hello_with_options(&[CodecId::SzLike], leg.stage, leg.profiles)
                .expect("warmup hello");
            client
                .compress_as(CodecId::SzLike, "bench-warmup", variable, 8, None)
                .expect("warmup compress")
        })
        .collect();

    let client_counts = [1usize, 2, 4];
    let requests = 32usize;

    for &clients in &client_counts {
        let stats = run(
            addr,
            clients,
            requests,
            |_client| {},
            |client, _key, _i| {
                client.ping().expect("ping");
            },
        );
        println!(
            "ping                  {clients} client(s): {:>8.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms",
            stats.req_per_s, stats.p50_ms, stats.p99_ms
        );
        csv.push_str(&format!(
            "ping,{clients},{},{:.4},{:.1},{:.4},{:.4},protocol floor\n",
            clients * requests,
            stats.elapsed_s,
            stats.req_per_s,
            stats.p50_ms,
            stats.p99_ms
        ));
    }

    for leg in &FEATURE_LEGS {
        for &clients in &client_counts {
            let stats = run(
                addr,
                clients,
                requests,
                |client| {
                    client
                        .hello_with_options(&[CodecId::SzLike], leg.stage, leg.profiles)
                        .expect("hello");
                },
                |client, key, _i| {
                    let bytes = client
                        .compress_as(CodecId::SzLike, key, variable, 8, None)
                        .expect("compress");
                    assert!(!bytes.is_empty());
                },
            );
            println!(
                "compress   {:>9} {clients} client(s): {:>8.1} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms",
                leg.label, stats.req_per_s, stats.p50_ms, stats.p99_ms
            );
            csv.push_str(&format!(
                "compress/{},{clients},{},{:.4},{:.1},{:.4},{:.4},SZ3-like 32x32x32 via shard executors: {}\n",
                leg.label,
                clients * requests,
                stats.elapsed_s,
                stats.req_per_s,
                stats.p50_ms,
                stats.p99_ms,
                leg.notes
            ));
        }
    }

    for (leg, container) in FEATURE_LEGS.iter().zip(&containers) {
        for &clients in &client_counts {
            let container = &container[..];
            let stats = run(
                addr,
                clients,
                requests,
                |_client| {},
                move |client, key, _i| {
                    let blocks = client.decompress(key, container).expect("decompress");
                    assert_eq!(blocks.len(), 4);
                },
            );
            println!(
                "decompress {:>9} {clients} client(s): {:>8.1} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms",
                leg.label, stats.req_per_s, stats.p50_ms, stats.p99_ms
            );
            csv.push_str(&format!(
                "decompress/{},{clients},{},{:.4},{:.1},{:.4},{:.4},4-block container to frames: {}\n",
                leg.label,
                clients * requests,
                stats.elapsed_s,
                stats.req_per_s,
                stats.p50_ms,
                stats.p99_ms,
                leg.notes
            ));
        }
    }

    let metrics = server.shutdown();
    csv.push_str(&format!(
        "meta,,,,,,,\"{} requests completed, {} rejected, peak in-flight per shard {:?}\"\n",
        metrics.completed(),
        metrics.requests_rejected,
        metrics
            .shards
            .iter()
            .map(|s| s.peak_in_flight)
            .collect::<Vec<_>>()
    ));
    write_result("service_throughput.csv", &csv);
}
