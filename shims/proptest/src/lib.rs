//! Minimal proptest-compatible property-testing harness for offline builds.
//!
//! Supports the subset the workspace's tests use: the `proptest!` macro with
//! `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`, integer and
//! float range strategies, `prop::collection::vec`, `prop_map` and
//! `prop_flat_map`.  Cases are generated from a per-test deterministic seed
//! (FNV-1a of the test name); there is no shrinking — the failing inputs are
//! reported as-is.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Deterministic generator backing a single property test (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (`cases` = number of generated inputs per test).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> SMap<Self, F>
    where
        Self: Sized,
    {
        SMap { strategy: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> SFlatMap<Self, F>
    where
        Self: Sized,
    {
        SFlatMap { strategy: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct SMap<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for SMap<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct SFlatMap<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for SFlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.strategy.new_value(rng)).new_value(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategies!(usize, u64, u32, i64, i32);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_strategies!(f32, f64);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves.
pub mod prop {
    pub use crate::collection;
}

/// The `proptest!` macro: runs each embedded test over `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut proptest_rng = $crate::TestRng::from_name(stringify!($name));
                for proptest_case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut proptest_rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = result {
                        panic!("proptest case {proptest_case} failed: {err}");
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),*) $body)*
        }
    };
}

/// Fallible assertion usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Fallible inequality assertion usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Everything a consumer normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -2.5f32..4.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.5..4.0).contains(&x));
        }

        #[test]
        fn vec_strategy_honours_size(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_threads_values(
            v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0i32..10, n..=n))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::from_name("alpha");
        let mut b = crate::TestRng::from_name("alpha");
        let mut c = crate::TestRng::from_name("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
