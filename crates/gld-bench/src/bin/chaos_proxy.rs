//! `chaos_proxy` — standalone front end for the chaos TCP proxy in
//! `gld_service::chaos`, used by CI's chaos smoke job to put a fault
//! injector between `gld-service-check` and `gld-serviced`.
//!
//! ```text
//! chaos_proxy --upstream HOST:PORT [--seed N]
//!             [--latency MS:PROB] [--partial PROB] [--corrupt PROB]
//!             [--stall MS:PROB] [--reset PROB] [--budget N]
//! ```
//!
//! Prints `chaos-proxy listening on HOST:PORT` on stdout once ready (the
//! readiness line scripts wait for, mirroring `gld-serviced` — kept off
//! the logger so it survives `GLD_LOG=off`), then serves until killed.
//! Diagnostics go through the `gld-obs` structured logger on stderr.
//! Probabilities are per forwarded chunk, in `[0, 1]`.

use gld_service::chaos::{ChaosConfig, ChaosProxy};
use std::net::SocketAddr;
use std::time::Duration;

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let value = args
        .next()
        .unwrap_or_else(|| panic!("{flag} requires a value"));
    value
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: cannot parse {value:?}"))
}

/// Parses `MS:PROB` into a `(Duration, probability)` pair.
fn parse_timed(spec: &str, flag: &str) -> (Duration, f64) {
    let (ms, prob) = spec
        .split_once(':')
        .unwrap_or_else(|| panic!("{flag} takes MS:PROB"));
    (
        Duration::from_millis(ms.parse().unwrap_or_else(|_| panic!("{flag} milliseconds"))),
        prob.parse()
            .unwrap_or_else(|_| panic!("{flag} probability")),
    )
}

fn main() {
    let mut upstream: Option<SocketAddr> = None;
    let mut config = ChaosConfig::default();
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--upstream" => upstream = Some(parse_flag(&mut args, "--upstream")),
            "--seed" => config.seed = parse_flag(&mut args, "--seed"),
            "--latency" => {
                let spec: String = parse_flag(&mut args, "--latency");
                config.latency = Some(parse_timed(&spec, "--latency"));
            }
            "--partial" => config.partial_write_prob = parse_flag(&mut args, "--partial"),
            "--corrupt" => config.corrupt_prob = parse_flag(&mut args, "--corrupt"),
            "--stall" => {
                let spec: String = parse_flag(&mut args, "--stall");
                config.stall = Some(parse_timed(&spec, "--stall"));
            }
            "--reset" => config.reset_prob = parse_flag(&mut args, "--reset"),
            "--budget" => config.fault_budget = Some(parse_flag(&mut args, "--budget")),
            other => panic!("unknown flag {other:?} (see the crate docs)"),
        }
    }
    let upstream = upstream.expect("--upstream HOST:PORT is required");
    let proxy = ChaosProxy::start(upstream, config).expect("bind chaos proxy");
    gld_obs::log_info!(
        "chaos-proxy",
        addr = proxy.addr(),
        upstream = upstream;
        "proxy started"
    );
    // The readiness line scripts wait for (stdout, not the logger: it is
    // machine-scraped and must survive GLD_LOG=off).
    println!("chaos-proxy listening on {} -> {upstream}", proxy.addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
