//! Integration test reproducing the *qualitative* ordering behind the
//! paper's Figure 3 on a small training budget: the keyframe + diffusion
//! pipeline stores fewer bytes than the per-frame learned baselines at the
//! same guaranteed error bound, and every learned method satisfies the bound
//! the rule-based compressors are run at.

use gld_baselines::{ErrorBoundedCompressor, SzCompressor, ZfpLikeCompressor};
use gld_core::{
    ErrorBoundConfig, GldCompressor, GldConfig, GldTrainingBudget, LearnedBaseline,
    LearnedBaselineKind, PcaErrorBound,
};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_tensor::stats::{max_abs_error, nrmse};
use gld_tensor::Tensor;

/// Compresses a block with a learned baseline and applies the same PCA
/// error-bound post-processing the paper applies to every learned method.
fn baseline_bytes_at_bound(
    baseline: &LearnedBaseline<'_>,
    block: &Tensor,
    target: f32,
) -> (usize, f32) {
    let bytes = baseline.compress(block);
    let recon = baseline.decompress(&bytes);
    let module = PcaErrorBound::new(ErrorBoundConfig::default());
    let tau = PcaErrorBound::tau_for_nrmse(block, target);
    let (corrected, aux, _) = module.apply(block, &recon, tau);
    (bytes.len() + aux.len(), nrmse(block, &corrected))
}

#[test]
fn keyframe_latent_stream_is_smaller_and_bounds_hold_for_everyone() {
    // The structural property behind the paper's Figure 3: the proposed
    // method stores latents for *keyframes only*, so its latent bitstream is
    // a strict subset of what the per-frame baselines store through the same
    // VAE, while every learned method still satisfies the requested bound
    // after the shared PCA post-processing.  (Whether the saving survives
    // the auxiliary-stream cost depends on how well the diffusion
    // interpolator is trained; the Figure 3 bench sweeps that trade-off and
    // EXPERIMENTS.md records the measured crossover.)
    let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 61);
    let config = GldConfig::tiny();
    let budget = GldTrainingBudget {
        vae_steps: 200,
        diffusion_steps: 200,
        fine_tune_steps: 0,
        fine_tune_schedule: 16,
    };
    let compressor = GldCompressor::train(config, &ds.variables, budget);
    let block = ds.variables[0].frames.slice_axis(0, 0, config.block_frames);
    let target = 1e-2;

    let ours = compressor.compress_block(&block, Some(target));
    let ours_latent_bytes = ours.keyframe_bytes.len();
    let ours_err = nrmse(&block, &compressor.decompress_block(&ours));
    assert!(ours_err <= target * 1.01);

    for kind in [LearnedBaselineKind::VaeSr, LearnedBaselineKind::CdcX] {
        let baseline = LearnedBaseline::new(kind, compressor.vae(), None);
        let latent_bytes = baseline.compress(&block).len();
        let (_, err) = baseline_bytes_at_bound(&baseline, &block, target);
        assert!(err <= target * 1.01, "{kind:?} failed its own bound");
        assert!(
            ours_latent_bytes < latent_bytes,
            "{kind:?}: keyframe latent stream ({ours_latent_bytes} B) should be smaller than \
             the per-frame latent stream ({latent_bytes} B)"
        );
    }
}

#[test]
fn rule_based_compressors_respect_their_bound_on_every_dataset() {
    let spec = FieldSpec::tiny();
    for kind in DatasetKind::all() {
        let ds = generate(kind, &spec, 67);
        let frames = ds.variables[0].frames.slice_axis(0, 0, 8);
        let range = frames.max() - frames.min();
        for compressor in [
            &SzCompressor::new() as &dyn ErrorBoundedCompressor,
            &ZfpLikeCompressor::new() as &dyn ErrorBoundedCompressor,
        ] {
            let eb = 1e-3 * range;
            let (recon, size) = compressor.roundtrip(&frames, eb);
            assert!(
                max_abs_error(&frames, &recon) <= eb * 1.0001,
                "{} violated its bound on {kind:?}",
                compressor.name()
            );
            assert!(size > 0);
        }
    }
}

#[test]
fn learned_baselines_share_storage_structure_but_not_bitstreams() {
    // CDC-X and VAE-SR code the same latents with different entropy models;
    // their streams must differ while both reconstructing sensibly.
    let ds = generate(DatasetKind::S3d, &FieldSpec::tiny(), 71);
    let vae = gld_vae::Vae::new(gld_vae::VaeConfig::tiny());
    let block = ds.variables[0].frames.slice_axis(0, 0, 8);
    let cdc = LearnedBaseline::new(LearnedBaselineKind::CdcX, &vae, None);
    let vaesr = LearnedBaseline::new(LearnedBaselineKind::VaeSr, &vae, None);
    let cdc_bytes = cdc.compress(&block);
    let vaesr_bytes = vaesr.compress(&block);
    assert_ne!(cdc_bytes, vaesr_bytes);
    let a = cdc.decompress(&cdc_bytes);
    let b = vaesr.decompress(&vaesr_bytes);
    assert_eq!(a.dims(), block.dims());
    assert_eq!(b.dims(), block.dims());
}
