//! The unified compressor interface.
//!
//! Every compressor family in the stack — the generative latent diffusion
//! pipeline, the SZ3-like and ZFP-like rule-based coders, and the learned
//! per-frame baselines — implements [`Codec`], so the integration tests and
//! every `gld-bench` binary drive all of them through one call path with
//! shared compression-ratio / NRMSE accounting (paper Eq. 11) instead of
//! four bespoke protocols.
//!
//! A codec turns a `[N, H, W]` block into a self-describing byte *frame* and
//! back.  The provided [`Codec::compress_variable`] method drives the
//! **streaming block executor** (`crate::executor`): temporal windows are
//! pulled lazily, compressed in parallel on the persistent pool (block
//! index-derived seeds keep the output bit-identical to the sequential
//! path — see `tests/container_roundtrip.rs`), and emitted in temporal order
//! into a [`Container`] whose measured encoded length *is* the reported
//! size, holding at most the configured queue depth of blocks in memory.
//! [`Codec::compress_variable_into`] streams the encoded container straight
//! into any `io::Write` without buffering frames at all.

use crate::container::{
    write_section, ByteReader, CodecId, Container, ContainerError, ContainerFormat,
};
use crate::error_bound::{ErrorBoundConfig, PcaErrorBound};
use crate::executor::{
    checked_windows, compress_window_outcome, fit_variable_profile, stream_compress_variable,
    BlockOutcome, StageMode, StreamConfig, StreamMetrics,
};
use crate::learned_baselines::{LearnedBaseline, LearnedBaselineKind};
use gld_baselines::{
    BaselineError, ErrorBoundedCompressor, SzCompressor, SzScratch, ZfpLikeCompressor, ZfpScratch,
};
use gld_datasets::Variable;
use gld_entropy::HistogramModel;
use gld_lz::LzScratch;
use gld_tensor::Tensor;
use std::fmt;
use std::io::Write;
use std::sync::Arc;

/// Typed failure of a block compression through the [`Codec`] trait —
/// unsupported inputs surface here instead of panicking (e.g. a rank-5
/// tensor handed to a rule-based codec).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The block's tensor rank is outside what the codec supports.
    UnsupportedRank {
        /// Rank of the offending block.
        rank: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnsupportedRank { rank } => {
                write!(f, "codec does not support tensor rank {rank}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<BaselineError> for CodecError {
    fn from(e: BaselineError) -> Self {
        match e {
            BaselineError::UnsupportedRank { rank } => CodecError::UnsupportedRank { rank },
        }
    }
}

/// Reusable per-worker scratch arena threaded through the block-compression
/// hot path: the rule-based codecs' reconstruction/code/escape buffers plus
/// a rolling output-size hint used to pre-size each frame allocation.
///
/// One `CodecScratch` lives per executor worker thread (and one per
/// sequential compression loop), so steady-state block compression allocates
/// only the emitted frame itself.  Frames are bit-identical whether the
/// scratch is fresh or reused — `tests/hotpath_equivalence.rs` proves it.
#[derive(Debug, Default)]
pub struct CodecScratch {
    /// SZ3-like per-block buffers.
    pub sz: SzScratch,
    /// ZFP-like per-block buffers.
    pub zfp: ZfpScratch,
    /// `gld-lz` stage state (hash chains, adaptive models, stream buffer)
    /// for the container v3 per-frame stage, staged on the same worker
    /// thread as the codec itself.
    pub lz: LzScratch,
    frame_hint: usize,
}

impl CodecScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity to pre-reserve for the next frame: the previous frame's
    /// length rounded up a little, so steady-state encoding does a single
    /// allocation per frame with no growth reallocations.
    pub fn frame_capacity_hint(&self) -> usize {
        self.frame_hint + self.frame_hint / 8
    }

    /// Records an emitted frame length for the next hint.
    pub fn note_frame_len(&mut self, len: usize) {
        self.frame_hint = len;
    }
}

/// A sink failure during [`compress_variable_to_writer`], carrying how far
/// the encoded container got before the abort: `frames_emitted` frames were
/// fully written (a partially written frame does not count).  Long-running
/// consumers — the sharded service in particular — report this in their
/// partial-write diagnostics instead of a bare I/O error.
#[derive(Debug)]
pub struct StreamWriteError {
    /// The underlying sink error.
    pub error: std::io::Error,
    /// Container frames completely written before the sink failed.  Zero
    /// when the header itself failed to write.
    pub frames_emitted: usize,
}

impl fmt::Display for StreamWriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "container stream aborted after {} complete frame(s): {}",
            self.frames_emitted, self.error
        )
    }
}

impl std::error::Error for StreamWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<StreamWriteError> for std::io::Error {
    fn from(e: StreamWriteError) -> Self {
        e.error
    }
}

/// Streams the compressed variable straight into `writer` as an encoded
/// container — the dyn-compatible entry point behind
/// [`Codec::compress_variable_into`], callable on `&dyn Codec` (the sharded
/// service routes every registered codec through it).  Frames are written
/// (and dropped) the moment they are next in temporal order, so neither the
/// windows nor the frames accumulate — peak memory is bounded by the
/// executor's queue depth.  The bytes written are exactly
/// [`Codec::compress_variable`]'s container encoding.
///
/// On a sink failure the stream is cancelled (remaining windows are never
/// compressed) and the returned [`StreamWriteError`] reports how many frames
/// were completely written before the abort.
pub fn compress_variable_to_writer<C, W>(
    codec: &C,
    variable: &Variable,
    block_frames: usize,
    target: Option<ErrorTarget>,
    config: StreamConfig,
    writer: W,
) -> Result<(W, VariableStats, StreamMetrics), StreamWriteError>
where
    C: Codec + ?Sized,
    W: Write,
{
    compress_variable_to_writer_fmt(
        codec,
        variable,
        block_frames,
        target,
        config,
        ContainerFormat::V3,
        writer,
    )
}

/// [`compress_variable_to_writer`] with an explicit container wire format —
/// the service uses this to answer stage-incapable clients with a v2
/// (stage-free) stream, staged sessions with v3, and profile-capable
/// sessions with v4.  For v3, frames are staged cold on the executor's
/// worker threads (through the per-worker `CodecScratch`); for v4 a shared
/// coding profile is fitted on the variable's first window and every frame
/// is coded warm against it; for v2 no staging work is done at all.
#[allow(clippy::too_many_arguments)]
pub fn compress_variable_to_writer_fmt<C, W>(
    codec: &C,
    variable: &Variable,
    block_frames: usize,
    target: Option<ErrorTarget>,
    config: StreamConfig,
    format: ContainerFormat,
    writer: W,
) -> Result<(W, VariableStats, StreamMetrics), StreamWriteError>
where
    C: Codec + ?Sized,
    W: Write,
{
    // Validate before the header leaves this process: a zero-window
    // variable must panic (as the other compress paths do) without first
    // writing a partial container to the caller's file/socket.
    let (_, count) = checked_windows(variable, block_frames);
    // A v4 stream carries the shared profile table between the header and
    // the frames, so the profile must be fitted before the first byte leaves
    // this process; v3/v2 headers need nothing fitted.
    let (mut sink, stage) = match format {
        ContainerFormat::V4 => {
            let warm = Arc::new(fit_variable_profile(codec, variable, block_frames, target));
            let sink = crate::container::ContainerWriter::with_profile_table(
                writer,
                codec.id(),
                count as u32,
                std::slice::from_ref(&warm.profile),
            )
            .map_err(|error| StreamWriteError {
                error,
                frames_emitted: 0,
            })?;
            (sink, StageMode::Shared(warm))
        }
        ContainerFormat::V3 | ContainerFormat::V2 => {
            let sink = crate::container::ContainerWriter::with_format(
                writer,
                codec.id(),
                count as u32,
                format,
            )
            .map_err(|error| StreamWriteError {
                error,
                frames_emitted: 0,
            })?;
            let stage = if format == ContainerFormat::V3 {
                StageMode::PerFrame
            } else {
                StageMode::Off
            };
            (sink, stage)
        }
    };
    let profiled = matches!(stage, StageMode::Shared(_));
    let mut acc = StatsAccumulator::new();
    let mut io_error: Option<std::io::Error> = None;
    let metrics = stream_compress_variable(
        codec,
        variable,
        block_frames,
        target,
        config,
        stage,
        |_, outcome| {
            acc.add(&outcome);
            let wrote = if profiled {
                sink.write_profiled_frame(&outcome.frame, 1, outcome.lz.as_deref())
            } else {
                sink.write_staged_frame(&outcome.frame, outcome.lz.as_deref())
            };
            match wrote {
                Ok(()) => true,
                Err(e) => {
                    // Cancel the stream: compressing the remaining windows
                    // cannot un-fail the sink.
                    io_error = Some(e);
                    false
                }
            }
        },
    );
    if let Some(error) = io_error {
        return Err(StreamWriteError {
            error,
            frames_emitted: sink.frames_written() as usize,
        });
    }
    // The measured stream length is the reported compressed size — identical
    // to `Container::encoded_len` for these frames.
    let compressed_bytes = sink.bytes_written();
    // `finish` asserts every declared frame arrived.
    let frames_emitted = sink.frames_written() as usize;
    let writer = sink.finish().map_err(|error| StreamWriteError {
        error,
        frames_emitted,
    })?;
    Ok((writer, acc.finish(compressed_bytes), metrics))
}

/// Reconstruction-quality target for a lossy compressor, in either of the
/// two conventions the paper's evaluation uses.
///
/// Each codec honours the target in its *native* guarantee:
///
/// * the rule-based codecs (SZ3-like, ZFP-like) bound point-wise error, so
///   an [`ErrorTarget::Nrmse`] target is converted conservatively — a
///   point-wise bound of `t × range` implies NRMSE ≤ `t`;
/// * the GLD pipeline and the learned baselines bound NRMSE (the paper's
///   PCA error-bound module, §3.5), so an [`ErrorTarget::PointwiseAbs`]
///   target is interpreted as the NRMSE bound `abs / range`.  That is a
///   **weaker** guarantee: individual values may still deviate by more than
///   `abs`.  Callers needing a strict point-wise bound should use the
///   rule-based codecs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ErrorTarget {
    /// Bound on the normalised RMSE of the reconstructed block.
    Nrmse(f32),
    /// Bound on the point-wise absolute error of every reconstructed value.
    PointwiseAbs(f32),
}

impl ErrorTarget {
    /// The equivalent point-wise absolute bound for `block`.  A point-wise
    /// bound of `t * range` implies NRMSE ≤ `t`, so this conversion is
    /// conservative for codecs that guarantee point-wise error.
    pub fn pointwise_for(&self, block: &Tensor) -> f32 {
        match *self {
            ErrorTarget::PointwiseAbs(abs) => abs,
            ErrorTarget::Nrmse(t) => t * (block.max() - block.min()).max(1e-30),
        }
    }

    /// The equivalent NRMSE bound for `block`.  Note the asymmetry: a
    /// point-wise bound implies this NRMSE bound, but the converse does not
    /// hold — see the type-level docs on [`ErrorTarget`].
    pub fn nrmse_for(&self, block: &Tensor) -> f32 {
        match *self {
            ErrorTarget::Nrmse(t) => t,
            ErrorTarget::PointwiseAbs(abs) => abs / (block.max() - block.min()).max(1e-30),
        }
    }
}

/// Aggregate accounting for one compressed variable (or a merged set of
/// variables), shared by every codec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VariableStats {
    /// Number of compressed temporal blocks.
    pub blocks: usize,
    /// Uncompressed bytes covered by those blocks.
    pub original_bytes: usize,
    /// Encoded container length in bytes — by construction identical to
    /// `container.encode().len()`.
    pub compressed_bytes: usize,
    /// `original_bytes / compressed_bytes` (Eq. 11).
    pub compression_ratio: f64,
    /// NRMSE of the reconstruction over all blocks (range taken over the
    /// covered frames).
    pub nrmse: f32,
    /// `(min, max)` of the covered original values — what the NRMSE is
    /// normalised by, kept so stats from several variables can be merged.
    pub value_range: (f32, f32),
}

impl VariableStats {
    /// Merges per-variable stats into dataset-level accounting: byte counts
    /// add up, and the NRMSE is recomputed against the global value range
    /// (exactly how the paper's per-dataset figures aggregate).
    pub fn merge(stats: &[VariableStats]) -> VariableStats {
        assert!(!stats.is_empty(), "cannot merge zero stats");
        let mut blocks = 0usize;
        let mut original_bytes = 0usize;
        let mut compressed_bytes = 0usize;
        let mut sq_err = 0.0f64;
        let mut numel = 0usize;
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for s in stats {
            blocks += s.blocks;
            original_bytes += s.original_bytes;
            compressed_bytes += s.compressed_bytes;
            let count = s.original_bytes / std::mem::size_of::<f32>();
            let rmse = (s.nrmse * (s.value_range.1 - s.value_range.0).max(1e-30)) as f64;
            sq_err += rmse * rmse * count as f64;
            numel += count;
            lo = lo.min(s.value_range.0);
            hi = hi.max(s.value_range.1);
        }
        VariableStats {
            blocks,
            original_bytes,
            compressed_bytes,
            compression_ratio: original_bytes as f64 / compressed_bytes.max(1) as f64,
            nrmse: ((sq_err / numel.max(1) as f64).sqrt() as f32) / (hi - lo).max(1e-30),
            value_range: (lo, hi),
        }
    }
}

/// A block compressor with a self-describing byte-frame format.
///
/// `Sync` is required so the provided `compress_variable` can fan blocks out
/// across threads.
pub trait Codec: Sync {
    /// Display name matching the paper's figures.
    fn name(&self) -> &str;

    /// Container codec id for frames produced by this codec.
    fn id(&self) -> CodecId;

    /// Compresses a `[N, H, W]` block into a self-describing frame.
    ///
    /// `block_index` is the temporal window index within the variable;
    /// stochastic codecs derive their sampling seed from it so distinct
    /// blocks never share a noise realisation while identical inputs still
    /// produce identical frames.  Deterministic codecs ignore it.
    fn compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        block_index: u64,
    ) -> Vec<u8>;

    /// Fallible variant of [`Codec::compress_block_at`]: inputs the codec
    /// cannot represent surface as a typed [`CodecError`] instead of a
    /// panic.  The default delegates to the panicking path (codecs that can
    /// fail should override).
    fn try_compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        block_index: u64,
    ) -> Result<Vec<u8>, CodecError> {
        Ok(self.compress_block_at(block, target, block_index))
    }

    /// [`Codec::compress_block_at`] with a caller-provided scratch arena.
    /// Hot codecs override this to reuse `scratch`'s buffers; the output
    /// bytes must be identical to [`Codec::compress_block_at`] regardless of
    /// the scratch's previous contents.  The default ignores the scratch.
    fn compress_block_scratch(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        block_index: u64,
        scratch: &mut CodecScratch,
    ) -> Vec<u8> {
        let _ = scratch;
        self.compress_block_at(block, target, block_index)
    }

    /// Reconstructs a block from a frame produced by this codec.
    fn decompress_block(&self, frame: &[u8]) -> Tensor;

    /// The histogram model embedded in a frame this codec produced, if its
    /// format embeds one — the seed for a container-level shared entropy
    /// profile.  Codecs without a shareable model return `None` (the
    /// default); they still benefit from a profile's stage warm-start and
    /// seed dictionary.
    fn frame_model(&self, frame: &[u8]) -> Option<HistogramModel> {
        let _ = frame;
        None
    }

    /// [`Codec::compress_block_scratch`] against a shared entropy model:
    /// when the model covers the block's codes, the frame references it
    /// instead of embedding its own per-frame fit, and must then be decoded
    /// through [`Codec::decompress_block_shared`] with the same model.  The
    /// default ignores the model and codes cold — correct for codecs whose
    /// frames embed no shareable model.
    fn compress_block_shared(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        block_index: u64,
        scratch: &mut CodecScratch,
        model: &HistogramModel,
    ) -> Vec<u8> {
        let _ = model;
        self.compress_block_scratch(block, target, block_index, scratch)
    }

    /// [`Codec::decompress_block`] with the shared model the frame may
    /// reference.  Frames that embed their own model ignore `model`, so this
    /// is safe to call on every frame of a profiled container.  The default
    /// ignores it entirely.
    fn decompress_block_shared(&self, frame: &[u8], model: Option<&HistogramModel>) -> Tensor {
        let _ = model;
        self.decompress_block(frame)
    }

    /// Compresses a standalone block (window index 0).
    fn compress_block(&self, block: &Tensor, target: Option<ErrorTarget>) -> Vec<u8> {
        self.compress_block_at(block, target, 0)
    }

    /// Compresses every complete temporal window of `variable` through the
    /// streaming block executor (parallel, bounded-memory) and packs the
    /// frames into a [`Container`], returning it with the shared ratio/NRMSE
    /// accounting.  Bit-identical to
    /// [`Codec::compress_variable_sequential`].
    fn compress_variable(
        &self,
        variable: &Variable,
        block_frames: usize,
        target: Option<ErrorTarget>,
    ) -> (Container, VariableStats) {
        let (container, stats, _) = self.compress_variable_streaming(
            variable,
            block_frames,
            target,
            StreamConfig::default(),
        );
        (container, stats)
    }

    /// [`Codec::compress_variable`] with explicit executor tuning, also
    /// returning the execution metrics (peak resident blocks, for asserting
    /// the memory bound).
    fn compress_variable_streaming(
        &self,
        variable: &Variable,
        block_frames: usize,
        target: Option<ErrorTarget>,
        config: StreamConfig,
    ) -> (Container, VariableStats, StreamMetrics) {
        let mut container = Container::new(self.id());
        let mut acc = StatsAccumulator::new();
        let metrics = stream_compress_variable(
            self,
            variable,
            block_frames,
            target,
            config,
            StageMode::PerFrame,
            |_, outcome| {
                acc.add(&outcome);
                container.push_staged(outcome.frame, outcome.lz);
                true
            },
        );
        let compressed_bytes = container.encoded_len();
        (container, acc.finish(compressed_bytes), metrics)
    }

    /// [`Codec::compress_variable`] under a shared cross-frame coding
    /// profile (container v4): the profile is fitted on the variable's
    /// first temporal window, every frame is coded warm against it — shared
    /// entropy model, primed stage models, first-block seed dictionary —
    /// and the returned [`Container`] carries the profile table, encoding as
    /// v4.  Bit-identical to
    /// [`Codec::compress_variable_profiled_sequential`].
    fn compress_variable_profiled(
        &self,
        variable: &Variable,
        block_frames: usize,
        target: Option<ErrorTarget>,
        config: StreamConfig,
    ) -> (Container, VariableStats, StreamMetrics) {
        let warm = Arc::new(fit_variable_profile(self, variable, block_frames, target));
        let mut container = Container::with_profiles(self.id(), vec![warm.profile.clone()]);
        let mut acc = StatsAccumulator::new();
        let metrics = stream_compress_variable(
            self,
            variable,
            block_frames,
            target,
            config,
            StageMode::Shared(warm),
            |_, outcome| {
                acc.add(&outcome);
                container.push_profiled(outcome.frame, 1, outcome.lz);
                true
            },
        );
        let compressed_bytes = container.encoded_len();
        (container, acc.finish(compressed_bytes), metrics)
    }

    /// Sequential reference implementation of
    /// [`Codec::compress_variable_profiled`], kept callable so v4
    /// determinism is testable.
    fn compress_variable_profiled_sequential(
        &self,
        variable: &Variable,
        block_frames: usize,
        target: Option<ErrorTarget>,
    ) -> (Container, VariableStats) {
        let warm = Arc::new(fit_variable_profile(self, variable, block_frames, target));
        let stage = StageMode::Shared(warm.clone());
        let (windows, _) = checked_windows(variable, block_frames);
        let mut container = Container::with_profiles(self.id(), vec![warm.profile.clone()]);
        let mut acc = StatsAccumulator::new();
        let mut scratch = CodecScratch::new();
        for (index, window) in windows.enumerate() {
            let outcome = compress_window_outcome(
                self,
                &window.data,
                target,
                index as u64,
                &mut scratch,
                &stage,
            );
            acc.add(&outcome);
            container.push_profiled(outcome.frame, 1, outcome.lz);
        }
        let compressed_bytes = container.encoded_len();
        (container, acc.finish(compressed_bytes))
    }

    /// Streams the compressed variable straight into `writer` as an encoded
    /// container: frames are written (and dropped) the moment they are next
    /// in temporal order, so neither the windows *nor* the frames accumulate
    /// — peak memory is bounded by the executor's queue depth.  The bytes
    /// written are exactly [`Codec::compress_variable`]'s container encoding.
    ///
    /// On a sink failure the remaining windows are abandoned and the
    /// returned [`StreamWriteError`] carries the number of frames completely
    /// written before the abort.  (For `&dyn Codec` callers the free
    /// function [`compress_variable_to_writer`] is the same entry point
    /// without the `Sized` bound.)
    fn compress_variable_into<W: Write>(
        &self,
        variable: &Variable,
        block_frames: usize,
        target: Option<ErrorTarget>,
        config: StreamConfig,
        writer: W,
    ) -> Result<(W, VariableStats, StreamMetrics), StreamWriteError>
    where
        Self: Sized,
    {
        compress_variable_to_writer(self, variable, block_frames, target, config, writer)
    }

    /// Sequential reference implementation of [`Codec::compress_variable`],
    /// kept callable so determinism is testable.
    fn compress_variable_sequential(
        &self,
        variable: &Variable,
        block_frames: usize,
        target: Option<ErrorTarget>,
    ) -> (Container, VariableStats) {
        let (windows, _) = checked_windows(variable, block_frames);
        let mut container = Container::new(self.id());
        let mut acc = StatsAccumulator::new();
        let mut scratch = CodecScratch::new();
        for (index, window) in windows.enumerate() {
            let outcome = compress_window_outcome(
                self,
                &window.data,
                target,
                index as u64,
                &mut scratch,
                &StageMode::PerFrame,
            );
            acc.add(&outcome);
            container.push_staged(outcome.frame, outcome.lz);
        }
        let compressed_bytes = container.encoded_len();
        (container, acc.finish(compressed_bytes))
    }

    /// Compresses every variable of a dataset (one [`Container`] per
    /// variable, parallel within each) and merges the accounting into
    /// dataset-level stats — the aggregation every rate–distortion figure
    /// uses.
    fn compress_dataset(
        &self,
        variables: &[Variable],
        block_frames: usize,
        target: Option<ErrorTarget>,
    ) -> (Vec<Container>, VariableStats) {
        assert!(!variables.is_empty(), "dataset has no variables");
        let mut containers = Vec::with_capacity(variables.len());
        let mut stats = Vec::with_capacity(variables.len());
        for variable in variables {
            let (container, s) = self.compress_variable(variable, block_frames, target);
            containers.push(container);
            stats.push(s);
        }
        (containers, VariableStats::merge(&stats))
    }

    /// Decompresses a whole container produced by
    /// [`Codec::compress_variable`], returning the blocks in temporal order.
    fn decompress_container(&self, container: &Container) -> Result<Vec<Tensor>, ContainerError> {
        if container.codec() != self.id() {
            return Err(ContainerError::Corrupt(
                "container codec id does not match this codec",
            ));
        }
        // Cross-build guard: a v1 learned-codec stream predates the range
        // coder, so running today's entropy decoder over its payloads would
        // produce garbage — refuse by name instead.
        container.check_entropy_compat()?;
        Ok(container
            .blocks()
            .iter()
            .enumerate()
            .map(|(index, frame)| {
                // Frames of a profiled (v4) container may reference the
                // container's shared entropy model instead of embedding one.
                let model = container
                    .profile_for_block(index)
                    .and_then(|p| p.model.as_ref());
                self.decompress_block_shared(frame, model)
            })
            .collect())
    }
}

/// Running aggregation of per-window partials.  Outcomes are added strictly
/// in temporal order (the executor's ordered emission / the sequential
/// loop), so parallel and sequential execution produce identical statistics
/// down to the last bit.
struct StatsAccumulator {
    blocks: usize,
    sq_err: f64,
    numel: usize,
    lo: f32,
    hi: f32,
}

impl StatsAccumulator {
    fn new() -> Self {
        StatsAccumulator {
            blocks: 0,
            sq_err: 0.0,
            numel: 0,
            lo: f32::INFINITY,
            hi: f32::NEG_INFINITY,
        }
    }

    fn add(&mut self, outcome: &BlockOutcome) {
        self.blocks += 1;
        self.sq_err += outcome.sq_err;
        self.numel += outcome.numel;
        self.lo = self.lo.min(outcome.lo);
        self.hi = self.hi.max(outcome.hi);
    }

    fn finish(&self, compressed_bytes: usize) -> VariableStats {
        let original_bytes = self.numel * std::mem::size_of::<f32>();
        VariableStats {
            blocks: self.blocks,
            original_bytes,
            compressed_bytes,
            compression_ratio: original_bytes as f64 / compressed_bytes.max(1) as f64,
            nrmse: ((self.sq_err / self.numel.max(1) as f64).sqrt() as f32)
                / (self.hi - self.lo).max(1e-30),
            value_range: (self.lo, self.hi),
        }
    }
}

/// Default relative point-wise bound applied by the rule-based codecs when
/// no explicit target is given (they are always error-bounded).
const DEFAULT_RULE_REL_BOUND: f32 = 1e-3;

fn rule_based_bound(block: &Tensor, target: Option<ErrorTarget>) -> f32 {
    match target {
        Some(t) => t.pointwise_for(block),
        None => DEFAULT_RULE_REL_BOUND * (block.max() - block.min()).max(1e-30),
    }
}

impl Codec for SzCompressor {
    fn name(&self) -> &str {
        "SZ3-like"
    }

    fn id(&self) -> CodecId {
        CodecId::SzLike
    }

    fn compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
    ) -> Vec<u8> {
        ErrorBoundedCompressor::compress(self, block, rule_based_bound(block, target))
    }

    fn try_compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
    ) -> Result<Vec<u8>, CodecError> {
        Ok(self.try_compress(block, rule_based_bound(block, target))?)
    }

    fn compress_block_scratch(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
        scratch: &mut CodecScratch,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(scratch.frame_capacity_hint());
        self.compress_into(
            block,
            rule_based_bound(block, target),
            &mut scratch.sz,
            &mut out,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        scratch.note_frame_len(out.len());
        out
    }

    fn compress_block_shared(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
        scratch: &mut CodecScratch,
        model: &HistogramModel,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(scratch.frame_capacity_hint());
        self.compress_into_shared(
            block,
            rule_based_bound(block, target),
            Some(model),
            &mut scratch.sz,
            &mut out,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        scratch.note_frame_len(out.len());
        out
    }

    fn frame_model(&self, frame: &[u8]) -> Option<HistogramModel> {
        gld_baselines::embedded_frame_model(frame)
    }

    fn decompress_block(&self, frame: &[u8]) -> Tensor {
        ErrorBoundedCompressor::decompress(self, frame)
    }

    fn decompress_block_shared(&self, frame: &[u8], model: Option<&HistogramModel>) -> Tensor {
        self.decompress_shared(frame, model)
    }
}

impl Codec for ZfpLikeCompressor {
    fn name(&self) -> &str {
        "ZFP-like"
    }

    fn id(&self) -> CodecId {
        CodecId::ZfpLike
    }

    fn compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
    ) -> Vec<u8> {
        ErrorBoundedCompressor::compress(self, block, rule_based_bound(block, target))
    }

    fn try_compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
    ) -> Result<Vec<u8>, CodecError> {
        Ok(self.try_compress(block, rule_based_bound(block, target))?)
    }

    fn compress_block_scratch(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
        scratch: &mut CodecScratch,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(scratch.frame_capacity_hint());
        self.compress_into(
            block,
            rule_based_bound(block, target),
            &mut scratch.zfp,
            &mut out,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        scratch.note_frame_len(out.len());
        out
    }

    fn compress_block_shared(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
        scratch: &mut CodecScratch,
        model: &HistogramModel,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(scratch.frame_capacity_hint());
        self.compress_into_shared(
            block,
            rule_based_bound(block, target),
            Some(model),
            &mut scratch.zfp,
            &mut out,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        scratch.note_frame_len(out.len());
        out
    }

    fn frame_model(&self, frame: &[u8]) -> Option<HistogramModel> {
        gld_baselines::embedded_frame_model(frame)
    }

    fn decompress_block(&self, frame: &[u8]) -> Tensor {
        ErrorBoundedCompressor::decompress(self, frame)
    }

    fn decompress_block_shared(&self, frame: &[u8], model: Option<&HistogramModel>) -> Tensor {
        self.decompress_shared(frame, model)
    }
}

/// Learned baselines frame layout: latent section + PCA correction section
/// (both length-prefixed; the correction is empty when no target was given).
impl Codec for LearnedBaseline<'_> {
    fn name(&self) -> &str {
        self.kind().name()
    }

    fn id(&self) -> CodecId {
        match self.kind() {
            LearnedBaselineKind::CdcX => CodecId::CdcX,
            LearnedBaselineKind::CdcEps => CodecId::CdcEps,
            LearnedBaselineKind::Gcd => CodecId::Gcd,
            LearnedBaselineKind::VaeSr => CodecId::VaeSr,
        }
    }

    fn compress_block_at(
        &self,
        block: &Tensor,
        target: Option<ErrorTarget>,
        _block_index: u64,
    ) -> Vec<u8> {
        let latent = self.compress(block);
        // All learned methods share the paper's PCA error-bound
        // post-processing (§4.1): the correction stream rides along in the
        // frame so the bound survives the round trip.
        let aux = match target {
            Some(t) => {
                let recon = self.decompress(&latent);
                let module = PcaErrorBound::new(ErrorBoundConfig::default());
                let tau = PcaErrorBound::tau_for_nrmse(block, t.nrmse_for(block));
                let (_, aux, _) = module.apply(block, &recon, tau);
                aux
            }
            None => Vec::new(),
        };
        let mut frame = Vec::with_capacity(16 + latent.len() + aux.len());
        write_section(&mut frame, &latent);
        write_section(&mut frame, &aux);
        frame
    }

    fn decompress_block(&self, frame: &[u8]) -> Tensor {
        let mut reader = ByteReader::new(frame);
        let latent = reader
            .read_section()
            .expect("learned baseline frame: latent section");
        let aux = reader
            .read_section()
            .expect("learned baseline frame: correction section");
        reader
            .expect_end()
            .expect("learned baseline frame: trailing bytes");
        let recon = self.decompress(latent);
        if aux.is_empty() {
            recon
        } else {
            PcaErrorBound::new(ErrorBoundConfig::default()).apply_from_aux(&recon, aux)
        }
    }
}
