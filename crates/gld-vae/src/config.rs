//! VAE / hyperprior hyper-parameters.

use serde::{Deserialize, Serialize};

/// Configuration of the VAE-with-hyperprior model.
///
/// The defaults are scaled down from the paper's A100-sized model (latent
/// channels 64, 256×256 crops, 500K iterations) to something a single CPU
/// core can train in seconds while keeping every architectural ingredient:
/// strided convolutions, group normalisation, a hyperprior with its own
/// autoencoder, and the rate–distortion objective.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VaeConfig {
    /// Channels in the intermediate convolution stages.
    pub base_channels: usize,
    /// Channels of the latent representation `y` (the paper uses 64).
    pub latent_channels: usize,
    /// Channels of the hyper-latent `z`.
    pub hyper_channels: usize,
    /// Total spatial downsampling factor of the encoder (must be 4 here:
    /// two stride-2 convolutions).
    pub downsample: usize,
    /// Rate–distortion trade-off λ in Eq. 8.
    pub lambda: f32,
    /// Scale applied to latents before rounding; larger values preserve more
    /// detail at a higher bit-rate (the knob the rate sweep uses alongside
    /// λ).
    pub quant_scale: f32,
    /// Random seed for weight initialisation.
    pub seed: u64,
}

impl Default for VaeConfig {
    fn default() -> Self {
        VaeConfig {
            base_channels: 12,
            latent_channels: 4,
            hyper_channels: 4,
            downsample: 4,
            lambda: 2e-3,
            quant_scale: 16.0,
            seed: 0,
        }
    }
}

impl VaeConfig {
    /// A very small configuration for unit tests.
    pub fn tiny() -> Self {
        VaeConfig {
            base_channels: 6,
            latent_channels: 3,
            hyper_channels: 3,
            ..Default::default()
        }
    }

    /// Latent spatial size for a given input frame size.
    pub fn latent_size(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h.is_multiple_of(self.downsample) && w.is_multiple_of(self.downsample),
            "frame {h}x{w} must be divisible by the downsample factor {}",
            self.downsample
        );
        (h / self.downsample, w / self.downsample)
    }

    /// Number of latent values per frame of the given size.
    pub fn latent_numel(&self, h: usize, w: usize) -> usize {
        let (lh, lw) = self.latent_size(h, w);
        lh * lw * self.latent_channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latent_geometry() {
        let cfg = VaeConfig::default();
        assert_eq!(cfg.latent_size(16, 32), (4, 8));
        assert_eq!(cfg.latent_numel(16, 16), 4 * 4 * cfg.latent_channels);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_frames() {
        VaeConfig::default().latent_size(10, 16);
    }

    #[test]
    fn tiny_is_smaller_than_default() {
        assert!(VaeConfig::tiny().base_channels < VaeConfig::default().base_channels);
    }
}
