//! Optimizers and learning-rate schedules.

use crate::param::ParameterSet;
use gld_tensor::Tensor;

/// Learning-rate schedule evaluated per optimisation step.
#[derive(Clone, Debug)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant(f32),
    /// Multiplies the base rate by `factor` every `every` steps, matching the
    /// paper's "decays by a factor of 0.5 every 100K iterations".
    StepDecay {
        /// Base learning rate.
        base: f32,
        /// Number of steps between decays.
        every: usize,
        /// Multiplicative factor applied at each decay.
        factor: f32,
    },
    /// Linear warmup to `base` over `warmup` steps, then cosine decay to
    /// `final_lr` at `total` steps.
    WarmupCosine {
        /// Peak learning rate reached after warmup.
        base: f32,
        /// Warmup length in steps.
        warmup: usize,
        /// Total schedule length in steps.
        total: usize,
        /// Learning rate at the end of the schedule.
        final_lr: f32,
    },
}

impl LrSchedule {
    /// Learning rate at `step` (0-based).
    pub fn lr(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay {
                base,
                every,
                factor,
            } => {
                let decays = step.checked_div(every).unwrap_or(0) as i32;
                base * factor.powi(decays)
            }
            LrSchedule::WarmupCosine {
                base,
                warmup,
                total,
                final_lr,
            } => {
                if warmup > 0 && step < warmup {
                    base * (step as f32 + 1.0) / warmup as f32
                } else {
                    let progress = if total > warmup {
                        ((step - warmup) as f32 / (total - warmup) as f32).min(1.0)
                    } else {
                        1.0
                    };
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                    final_lr + (base - final_lr) * cos
                }
            }
        }
    }
}

/// Plain stochastic gradient descent (used in tests and ablations).
pub struct Sgd {
    params: ParameterSet,
    schedule: LrSchedule,
    step: usize,
}

impl Sgd {
    /// Creates an SGD optimizer over the given parameters.
    pub fn new(params: ParameterSet, schedule: LrSchedule) -> Self {
        Sgd {
            params,
            schedule,
            step: 0,
        }
    }

    /// Applies one update from the accumulated gradients and clears them.
    pub fn step(&mut self) {
        let lr = self.schedule.lr(self.step);
        for p in self.params.iter() {
            let update = p.grad().scale(-lr);
            p.apply_update(&update);
        }
        self.params.zero_grad();
        self.step += 1;
    }

    /// Number of updates performed so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }
}

/// Configuration for [`Adam`].
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Optional decoupled weight decay (AdamW style); 0 disables it.
    pub weight_decay: f32,
    /// Optional global gradient-norm clip; 0 disables it.
    pub grad_clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            grad_clip: 0.0,
        }
    }
}

/// The Adam optimizer (Kingma & Ba), the workhorse for both training stages.
pub struct Adam {
    params: ParameterSet,
    schedule: LrSchedule,
    config: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    step: usize,
}

impl Adam {
    /// Creates an Adam optimizer over the given parameters.
    pub fn new(params: ParameterSet, schedule: LrSchedule, config: AdamConfig) -> Self {
        let m = params
            .iter()
            .map(|p| Tensor::zeros(p.value().dims()))
            .collect();
        let v = params
            .iter()
            .map(|p| Tensor::zeros(p.value().dims()))
            .collect();
        Adam {
            params,
            schedule,
            config,
            m,
            v,
            step: 0,
        }
    }

    /// Current learning rate.
    pub fn current_lr(&self) -> f32 {
        self.schedule.lr(self.step)
    }

    /// Number of updates performed so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// Applies one Adam update from the accumulated gradients and clears
    /// them.
    pub fn step(&mut self) {
        if self.config.grad_clip > 0.0 {
            self.params.clip_grad_norm(self.config.grad_clip);
        }
        let lr = self.schedule.lr(self.step);
        let t = (self.step + 1) as i32;
        let bias1 = 1.0 - self.config.beta1.powi(t);
        let bias2 = 1.0 - self.config.beta2.powi(t);
        for (i, p) in self.params.iter().enumerate() {
            let mut g = p.grad();
            if self.config.weight_decay > 0.0 {
                g = g.add(&p.value().scale(self.config.weight_decay));
            }
            // m = β1 m + (1-β1) g ;  v = β2 v + (1-β2) g²
            self.m[i] = self.m[i]
                .scale(self.config.beta1)
                .add(&g.scale(1.0 - self.config.beta1));
            self.v[i] = self.v[i]
                .scale(self.config.beta2)
                .add(&g.square().scale(1.0 - self.config.beta2));
            let m_hat = self.m[i].scale(1.0 / bias1);
            let v_hat = self.v[i].scale(1.0 / bias2);
            let eps = self.config.eps;
            let denom = v_hat.map(move |x| x.sqrt() + eps);
            let update = m_hat.div(&denom).scale(-lr);
            p.apply_update(&update);
        }
        self.params.zero_grad();
        self.step += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse_loss;
    use crate::param::Parameter;
    use crate::tape::Tape;
    use gld_tensor::{Tensor, TensorRng};

    #[test]
    fn constant_and_step_decay_schedules() {
        let c = LrSchedule::Constant(0.1);
        assert_eq!(c.lr(0), 0.1);
        assert_eq!(c.lr(1000), 0.1);
        let s = LrSchedule::StepDecay {
            base: 1.0,
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.lr(0), 1.0);
        assert_eq!(s.lr(9), 1.0);
        assert_eq!(s.lr(10), 0.5);
        assert_eq!(s.lr(25), 0.25);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = LrSchedule::WarmupCosine {
            base: 1.0,
            warmup: 10,
            total: 110,
            final_lr: 0.1,
        };
        assert!(s.lr(0) < 0.2);
        assert!((s.lr(9) - 1.0).abs() < 1e-6);
        assert!(s.lr(60) < 1.0 && s.lr(60) > 0.1);
        assert!((s.lr(110) - 0.1).abs() < 1e-3);
        assert!((s.lr(10_000) - 0.1).abs() < 1e-3);
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let p = Parameter::new("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let set: ParameterSet = [p.clone()].into_iter().collect();
        let mut opt = Sgd::new(set, LrSchedule::Constant(0.1));
        for _ in 0..200 {
            let tape = Tape::new();
            let x = tape.param(&p);
            let target = tape.constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
            let loss = mse_loss(&x, &target);
            loss.backward();
            opt.step();
        }
        let v = p.value();
        assert!((v.data()[0] - 1.0).abs() < 1e-2);
        assert!((v.data()[1] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn adam_minimises_quadratic_faster_than_sgd_with_small_lr() {
        let target_vec = vec![0.5, -1.5, 2.0];
        let make_loss = |p: &Parameter| {
            let tape = Tape::new();
            let x = tape.param(p);
            let t = tape.constant(Tensor::from_vec(target_vec.clone(), &[3]));
            mse_loss(&x, &t)
        };
        let run = |adam: bool| -> f32 {
            let p = Parameter::new("x", Tensor::from_vec(vec![10.0, 10.0, 10.0], &[3]));
            let set: ParameterSet = [p.clone()].into_iter().collect();
            let mut adam_opt = Adam::new(
                set.clone(),
                LrSchedule::Constant(0.1),
                AdamConfig::default(),
            );
            let mut sgd_opt = Sgd::new(set, LrSchedule::Constant(0.001));
            for _ in 0..500 {
                let loss = make_loss(&p);
                loss.backward();
                if adam {
                    adam_opt.step();
                } else {
                    sgd_opt.step();
                }
            }
            make_loss(&p).value().item()
        };
        let adam_loss = run(true);
        let sgd_loss = run(false);
        assert!(adam_loss < sgd_loss, "adam {adam_loss} vs sgd {sgd_loss}");
        assert!(adam_loss < 1e-2);
    }

    #[test]
    fn adam_trains_a_small_network_to_fit_data() {
        // One hidden layer fitting y = 2x on a handful of points.
        let mut rng = TensorRng::new(0);
        let lin1 = crate::layers::Linear::new("l1", 1, 8, true, &mut rng);
        let lin2 = crate::layers::Linear::new("l2", 8, 1, true, &mut rng);
        let mut params = lin1.parameters();
        params.extend(&lin2.parameters());
        let mut opt = Adam::new(params, LrSchedule::Constant(0.02), AdamConfig::default());
        let xs = Tensor::from_vec(vec![-1.0, -0.5, 0.0, 0.5, 1.0], &[5, 1]);
        let ys = xs.scale(2.0);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            let tape = Tape::new();
            let x = tape.constant(xs.clone());
            let y = tape.constant(ys.clone());
            let h = lin1.forward(&tape, &x).silu();
            let pred = lin2.forward(&tape, &h);
            let loss = mse_loss(&pred, &y);
            final_loss = loss.value().item();
            loss.backward();
            opt.step();
        }
        assert!(
            final_loss < 1e-2,
            "network failed to fit: loss {final_loss}"
        );
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let p = Parameter::new("x", Tensor::from_vec(vec![10.0], &[1]));
        let set: ParameterSet = [p.clone()].into_iter().collect();
        let cfg = AdamConfig {
            weight_decay: 0.1,
            ..AdamConfig::default()
        };
        let mut opt = Adam::new(set, LrSchedule::Constant(0.1), cfg);
        for _ in 0..50 {
            // Zero data gradient: only weight decay acts.
            let tape = Tape::new();
            let x = tape.param(&p);
            let loss = x.sub(&x).square().mean();
            loss.backward();
            opt.step();
        }
        assert!(p.value().data()[0].abs() < 10.0);
    }
}
