//! Lightweight span tracing.
//!
//! A span is a named monotonic start/stop interval, optionally tagged with
//! connection and request ids.  Finished spans go into a bounded
//! **per-thread ring** (capacity [`RING_CAPACITY`]): recording locks only
//! the calling thread's own ring mutex — uncontended except while a flight
//! dump is collecting — so the hot paths pay a thread-local lookup plus a
//! few stores.  The rings are registered globally; [`collect`] merges every
//! thread's recent spans for the flight recorder.
//!
//! Scope-shaped spans use the [`span!`](crate::span!) macro (guard records
//! on drop); intervals measured across callbacks use [`record`] directly.

use crate::now_ns;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

/// Spans retained per thread: old events are overwritten ring-style.
pub const RING_CAPACITY: usize = 512;

/// One finished span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Start, nanoseconds since the [`crate::now_ns`] epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Static span name, e.g. `"shard.execute"`.
    pub name: &'static str,
    /// Connection id (0 when not applicable).
    pub conn: u64,
    /// Request id (0 when not applicable).
    pub req: u64,
}

struct ThreadRing {
    buf: Mutex<VecDeque<SpanEvent>>,
}

fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing {
            buf: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
        });
        rings()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        ring
    };
}

fn push(event: SpanEvent) {
    LOCAL_RING.with(|ring| {
        let mut buf = ring.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == RING_CAPACITY {
            buf.pop_front();
        }
        buf.push_back(event);
    });
}

/// Records a finished span measured externally (timestamps from
/// [`crate::now_ns`]).  `end_ns < start_ns` is clamped to zero duration.
pub fn record(name: &'static str, start_ns: u64, end_ns: u64, conn: u64, req: u64) {
    push(SpanEvent {
        start_ns,
        dur_ns: end_ns.saturating_sub(start_ns),
        name,
        conn,
        req,
    });
}

/// Every thread's recent spans, merged and sorted by start time — the
/// flight recorder's span feed.
pub fn collect() -> Vec<SpanEvent> {
    let rings: Vec<Arc<ThreadRing>> = rings()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(Arc::clone)
        .collect();
    let mut events = Vec::new();
    for ring in rings {
        let buf = ring.buf.lock().unwrap_or_else(|e| e.into_inner());
        events.extend(buf.iter().copied());
    }
    events.sort_by_key(|e| e.start_ns);
    events
}

/// An open span: records into the current thread's ring when dropped (or
/// explicitly via [`SpanGuard::end`], returning the duration).
#[must_use = "a span measures the scope holding the guard"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    conn: u64,
    req: u64,
    armed: bool,
}

impl SpanGuard {
    /// Opens a span now.  Prefer the [`span!`](crate::span!) macro.
    pub fn enter(name: &'static str, conn: u64, req: u64) -> Self {
        SpanGuard {
            name,
            start_ns: now_ns(),
            conn,
            req,
            armed: true,
        }
    }

    /// Ends the span now, recording it and returning its duration in
    /// nanoseconds.
    pub fn end(mut self) -> u64 {
        self.armed = false;
        let end = now_ns();
        record(self.name, self.start_ns, end, self.conn, self.req);
        end.saturating_sub(self.start_ns)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            record(self.name, self.start_ns, now_ns(), self.conn, self.req);
        }
    }
}

/// Opens a [`SpanGuard`] recording the enclosing scope:
/// `span!("shard.execute")` or `span!("shard.execute", conn, req)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name, 0, 0)
    };
    ($name:expr, $conn:expr, $req:expr) => {
        $crate::span::SpanGuard::enter($name, $conn, $req)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop_and_rings_are_bounded() {
        {
            let _g = crate::span!("test.scope", 7, 9);
        }
        let events = collect();
        let e = events
            .iter()
            .rev()
            .find(|e| e.name == "test.scope")
            .expect("span recorded");
        assert_eq!((e.conn, e.req), (7, 9));
        for _ in 0..2 * RING_CAPACITY {
            record("test.flood", 0, 1, 0, 0);
        }
        let floods = collect().iter().filter(|e| e.name == "test.flood").count();
        assert!(floods <= RING_CAPACITY);
    }
}
