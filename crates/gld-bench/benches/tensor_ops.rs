//! Criterion micro-benchmarks for the tensor substrate: matmul, convolution
//! and softmax at the sizes the VAE/UNet actually use.

use criterion::{criterion_group, criterion_main, Criterion};
use gld_tensor::conv::{conv2d, Conv2dGeometry};
use gld_tensor::TensorRng;
use std::hint::black_box;

fn bench_tensor_ops(c: &mut Criterion) {
    let mut rng = TensorRng::new(0);
    let a = rng.randn(&[64, 64]);
    let b = rng.randn(&[64, 64]);
    let batched_a = rng.randn(&[16, 64, 16]);
    let batched_b = rng.randn(&[16, 16, 64]);
    let image = rng.randn(&[4, 8, 16, 16]);
    let kernel = rng.randn(&[8, 8, 3, 3]).scale(0.1);
    let logits = rng.randn(&[64, 256]);

    let mut group = c.benchmark_group("tensor_ops");
    group.sample_size(20);
    group.bench_function("matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    group.bench_function("batched_matmul_16x64x16", |bench| {
        bench.iter(|| black_box(batched_a.matmul(&batched_b)))
    });
    group.bench_function("conv2d_4x8x16x16_k3", |bench| {
        bench.iter(|| black_box(conv2d(&image, &kernel, None, Conv2dGeometry::new(3, 1, 1))))
    });
    group.bench_function("softmax_64x256", |bench| {
        bench.iter(|| black_box(logits.softmax_last()))
    });
    group.finish();
}

criterion_group!(benches, bench_tensor_ops);
criterion_main!(benches);
