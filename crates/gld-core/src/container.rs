//! Framed binary container for compressed variables.
//!
//! Every compressor in the stack emits per-block byte *frames*; a container
//! groups the frames of one variable behind a self-describing header so that
//! multi-block compressed output is a single `Vec<u8>` / `Write` stream whose
//! measured length **is** the reported compressed size (Eq. 11 denominator —
//! no hand-counted header arithmetic).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GLDC"
//! 4       2     format version (currently 2; v1 streams still decode)
//! 6       1     codec id (see [`CodecId`])
//! 7       1     flags (reserved, must be 0)
//! 8       4     block count K
//! 12      ...   K frames, each:
//!                 v2:  u64 payload length + payload bytes + u32 CRC-32
//!                 v1:  u64 payload length + payload bytes
//! ```
//!
//! Version 2 appends a CRC-32/IEEE checksum to every frame, so payload
//! corruption surfaces as a typed [`ContainerError::ChecksumMismatch`]
//! naming the damaged block instead of a downstream codec panic.  Decoders
//! accept both versions (version negotiation was wired in v1: unknown
//! versions are rejected); [`Container::encode`] always writes v2, and
//! [`Container::encode_v1`] remains for interop with v1-only readers.

use crate::crc32::crc32;
use std::fmt;
use std::io::{Read, Write};

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"GLDC";

/// Current container format version (written by [`Container::encode`]).
pub const VERSION: u16 = 2;

/// The initial, checksum-less container version (still decodable).
pub const VERSION_V1: u16 = 1;

/// Bytes of per-frame checksum trailer in a v2 container.
pub const FRAME_CRC_LEN: usize = 4;

/// Fixed header length in bytes (magic + version + codec + flags + count).
pub const HEADER_LEN: usize = 12;

/// Identifies which compressor produced the frames in a container.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// The generative latent diffusion compressor ("Ours").
    Gld = 1,
    /// SZ3-like prediction-based rule compressor.
    SzLike = 2,
    /// ZFP-like transform-based rule compressor.
    ZfpLike = 3,
    /// CDC analogue, signal-predicting variant.
    CdcX = 4,
    /// CDC analogue, noise-predicting variant.
    CdcEps = 5,
    /// GCD analogue (3-D block-based CDC).
    Gcd = 6,
    /// VAE with super-resolution refinement.
    VaeSr = 7,
}

impl CodecId {
    /// Parses a codec id byte.
    pub fn from_u8(byte: u8) -> Result<Self, ContainerError> {
        Ok(match byte {
            1 => CodecId::Gld,
            2 => CodecId::SzLike,
            3 => CodecId::ZfpLike,
            4 => CodecId::CdcX,
            5 => CodecId::CdcEps,
            6 => CodecId::Gcd,
            7 => CodecId::VaeSr,
            other => return Err(ContainerError::UnknownCodec(other)),
        })
    }
}

/// Errors produced while decoding a container or a block frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainerError {
    /// The stream does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The stream's format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The codec id byte is not a known [`CodecId`].
    UnknownCodec(u8),
    /// The stream ended before the declared content.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bytes remained after the declared content.
    TrailingBytes(usize),
    /// A v2 frame's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Index of the damaged block.
        block: usize,
        /// Checksum stored in the stream.
        stored: u32,
        /// Checksum computed over the payload actually present.
        computed: u32,
    },
    /// A block frame violated its own invariants.
    Corrupt(&'static str),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::BadMagic(found) => {
                write!(f, "bad container magic {found:?}, expected {MAGIC:?}")
            }
            ContainerError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported container version {v}, this build reads {VERSION}"
                )
            }
            ContainerError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            ContainerError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated stream: needed {needed} bytes, had {available}"
                )
            }
            ContainerError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after container content")
            }
            ContainerError::ChecksumMismatch {
                block,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "block {block} payload corrupt: stored CRC-32 {stored:#010x}, computed {computed:#010x}"
                )
            }
            ContainerError::Corrupt(what) => write!(f, "corrupt block frame: {what}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Bounds-checked little-endian reader over a byte slice, shared by the
/// container and block-frame decoders.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `len` raw bytes.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], ContainerError> {
        if self.remaining() < len {
            return Err(ContainerError::Truncated {
                // Saturate: `len` may be a corrupt u64 length prefix near
                // usize::MAX, and a corrupt frame must surface as an error,
                // never as an arithmetic-overflow panic.
                needed: self.pos.saturating_add(len),
                available: self.bytes.len(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, ContainerError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> Result<u16, ContainerError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, ContainerError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, ContainerError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&mut self) -> Result<f32, ContainerError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte section (`u64` length + payload).
    pub fn read_section(&mut self) -> Result<&'a [u8], ContainerError> {
        let len = self.read_u64()? as usize;
        self.take(len)
    }

    /// Asserts that the whole input was consumed.
    pub fn expect_end(&self) -> Result<(), ContainerError> {
        if self.remaining() != 0 {
            return Err(ContainerError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Appends a length-prefixed byte section (`u64` length + payload).
pub fn write_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Appends the fixed container header — the one definition shared by the
/// buffered encoders and the incremental [`ContainerWriter`].
fn encode_header(out: &mut Vec<u8>, version: u16, codec: CodecId, count: u32) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(codec as u8);
    out.push(0); // flags
    out.extend_from_slice(&count.to_le_bytes());
}

/// A decoded (or under-construction) container: codec identity plus the
/// per-block frames, in temporal order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Container {
    codec: CodecId,
    blocks: Vec<Vec<u8>>,
}

impl Container {
    /// An empty container for `codec`.
    pub fn new(codec: CodecId) -> Self {
        Container {
            codec,
            blocks: Vec::new(),
        }
    }

    /// Wraps existing frames.
    pub fn from_blocks(codec: CodecId, blocks: Vec<Vec<u8>>) -> Self {
        Container { codec, blocks }
    }

    /// The codec that produced these frames.
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// The frames, in temporal order.
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }

    /// Consumes the container, returning the frames.
    pub fn into_blocks(self) -> Vec<Vec<u8>> {
        self.blocks
    }

    /// Appends one block frame.
    pub fn push(&mut self, frame: Vec<u8>) {
        self.blocks.push(frame);
    }

    /// Exact size of [`Container::encode`]'s output (the current, v2
    /// format), without encoding.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN
            + self
                .blocks
                .iter()
                .map(|b| 8 + b.len() + FRAME_CRC_LEN)
                .sum::<usize>()
    }

    /// Serialises the container to bytes in the current (v2, per-frame
    /// CRC-32) format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        encode_header(&mut out, VERSION, self.codec, self.blocks.len() as u32);
        for block in &self.blocks {
            write_section(&mut out, block);
            out.extend_from_slice(&crc32(block).to_le_bytes());
        }
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Serialises the container in the legacy v1 (checksum-less) format, for
    /// interop with v1-only readers and the version-compat tests.
    pub fn encode_v1(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(HEADER_LEN + self.blocks.iter().map(|b| 8 + b.len()).sum::<usize>());
        encode_header(&mut out, VERSION_V1, self.codec, self.blocks.len() as u32);
        for block in &self.blocks {
            write_section(&mut out, block);
        }
        out
    }

    /// Streams the encoded container into `writer`.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(&self.encode())
    }

    /// Parses a container, validating magic, version, codec id and (for v2
    /// streams) every frame's CRC-32, and rejecting truncated or over-long
    /// input.  Both v1 and v2 streams decode.
    pub fn decode(bytes: &[u8]) -> Result<Self, ContainerError> {
        let mut reader = ByteReader::new(bytes);
        let magic: [u8; 4] = reader.take(4)?.try_into().unwrap();
        if magic != MAGIC {
            return Err(ContainerError::BadMagic(magic));
        }
        let version = reader.read_u16()?;
        if version != VERSION_V1 && version != VERSION {
            return Err(ContainerError::UnsupportedVersion(version));
        }
        let codec = CodecId::from_u8(reader.read_u8()?)?;
        let flags = reader.read_u8()?;
        if flags != 0 {
            return Err(ContainerError::Corrupt("nonzero reserved flags"));
        }
        let count = reader.read_u32()? as usize;
        let mut blocks = Vec::with_capacity(count.min(1 << 20));
        for index in 0..count {
            let payload = reader.read_section()?;
            if version >= VERSION {
                let stored = reader.read_u32()?;
                let computed = crc32(payload);
                if stored != computed {
                    return Err(ContainerError::ChecksumMismatch {
                        block: index,
                        stored,
                        computed,
                    });
                }
            }
            blocks.push(payload.to_vec());
        }
        reader.expect_end()?;
        Ok(Container { codec, blocks })
    }

    /// Reads and parses a container from `reader` (e.g. a file or socket).
    pub fn read_from<R: Read>(reader: &mut R) -> std::io::Result<Result<Self, ContainerError>> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Ok(Self::decode(&bytes))
    }
}

/// Incremental v2 container encoder: writes the header up front and each
/// frame as it arrives, so a multi-block variable can stream to a file or
/// socket while later blocks are still being compressed — frames never
/// accumulate in memory.  This is the sink the streaming block executor
/// emits into (`Codec::compress_variable_into`).
pub struct ContainerWriter<W: Write> {
    writer: W,
    declared: u32,
    written: u32,
    bytes: usize,
}

impl<W: Write> ContainerWriter<W> {
    /// Writes the container header for `count` upcoming frames.
    pub fn new(mut writer: W, codec: CodecId, count: u32) -> std::io::Result<Self> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        encode_header(&mut header, VERSION, codec, count);
        writer.write_all(&header)?;
        Ok(ContainerWriter {
            writer,
            declared: count,
            written: 0,
            bytes: header.len(),
        })
    }

    /// Appends one frame (length prefix + payload + CRC-32).  Frames must
    /// arrive in temporal order; the caller may not exceed the declared
    /// count.
    pub fn write_frame(&mut self, payload: &[u8]) -> std::io::Result<()> {
        assert!(
            self.written < self.declared,
            "container declared {} frames, attempted to write more",
            self.declared
        );
        self.writer
            .write_all(&(payload.len() as u64).to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.writer.write_all(&crc32(payload).to_le_bytes())?;
        self.written += 1;
        self.bytes += 8 + payload.len() + FRAME_CRC_LEN;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u32 {
        self.written
    }

    /// Total encoded bytes pushed into the underlying writer so far —
    /// `Container::encoded_len` for the frames written, measured rather
    /// than recomputed, so stats cannot drift from the stream.
    pub fn bytes_written(&self) -> usize {
        self.bytes
    }

    /// Finishes the stream, asserting every declared frame arrived, and
    /// returns the underlying writer.
    pub fn finish(self) -> std::io::Result<W> {
        assert_eq!(
            self.written, self.declared,
            "container declared {} frames but only {} were written",
            self.declared, self.written
        );
        Ok(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        Container::from_blocks(
            CodecId::Gld,
            vec![vec![1, 2, 3], Vec::new(), vec![0xFF; 300]],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let c = sample();
        let bytes = c.encode();
        assert_eq!(bytes.len(), c.encoded_len());
        let back = Container::decode(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_bad_magic_version_codec() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::BadMagic(_))
        ));

        let mut bytes = sample().encode();
        bytes[4] = 0xEE;
        assert!(matches!(
            Container::decode(&bytes),
            Err(ContainerError::UnsupportedVersion(_))
        ));

        let mut bytes = sample().encode();
        bytes[6] = 0;
        assert_eq!(
            Container::decode(&bytes),
            Err(ContainerError::UnknownCodec(0))
        );
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        let bytes = sample().encode();
        for cut in [3, HEADER_LEN - 1, HEADER_LEN + 4, bytes.len() - 1] {
            assert!(
                matches!(
                    Container::decode(&bytes[..cut]),
                    Err(ContainerError::Truncated { .. })
                ),
                "cut at {cut} not detected"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            Container::decode(&long),
            Err(ContainerError::TrailingBytes(1))
        );

        // A corrupt u64 section length near usize::MAX must surface as a
        // Truncated error, not an arithmetic-overflow panic (the `needed`
        // field saturates).
        let mut huge_len = bytes.clone();
        huge_len[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Container::decode(&huge_len),
            Err(ContainerError::Truncated { .. })
        ));
    }

    #[test]
    fn write_to_matches_encode() {
        let c = sample();
        let mut sink = Vec::new();
        c.write_to(&mut sink).unwrap();
        assert_eq!(sink, c.encode());
        let parsed = Container::read_from(&mut sink.as_slice()).unwrap().unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn v1_streams_still_decode() {
        let c = sample();
        let v1 = c.encode_v1();
        assert_eq!(u16::from_le_bytes([v1[4], v1[5]]), VERSION_V1);
        assert_eq!(v1.len(), c.encoded_len() - c.blocks().len() * FRAME_CRC_LEN);
        let back = Container::decode(&v1).unwrap();
        assert_eq!(back, c, "v1 decode must reproduce the same frames");
    }

    #[test]
    fn payload_corruption_is_caught_by_the_frame_crc() {
        let c = sample();
        let mut bytes = c.encode();
        // Flip one bit inside the first frame's payload (first payload byte
        // sits right after the header and the u64 length prefix).
        bytes[HEADER_LEN + 8] ^= 0x40;
        match Container::decode(&bytes) {
            Err(ContainerError::ChecksumMismatch {
                block,
                stored,
                computed,
            }) => {
                assert_eq!(block, 0);
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // The same corruption in a v1 stream goes undetected — exactly the
        // gap the version bump closes.
        let mut v1 = c.encode_v1();
        v1[HEADER_LEN + 8] ^= 0x40;
        assert!(Container::decode(&v1).is_ok());
    }

    #[test]
    fn incremental_writer_matches_buffered_encode() {
        let c = sample();
        let writer = ContainerWriter::new(Vec::new(), c.codec(), c.blocks().len() as u32).unwrap();
        let mut writer = writer;
        for frame in c.blocks() {
            writer.write_frame(frame).unwrap();
        }
        assert_eq!(writer.frames_written(), 3);
        let streamed = writer.finish().unwrap();
        assert_eq!(streamed, c.encode());
    }

    #[test]
    #[should_panic(expected = "declared 2 frames but only 1")]
    fn incremental_writer_rejects_missing_frames() {
        let mut writer = ContainerWriter::new(Vec::new(), CodecId::Gld, 2).unwrap();
        writer.write_frame(&[1, 2, 3]).unwrap();
        let _ = writer.finish();
    }
}
