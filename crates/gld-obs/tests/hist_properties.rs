//! Property-based coverage for the log2-bucket histogram: the percentile
//! error bound against exact sorted samples, exact totals under concurrent
//! multi-thread recording, and snapshot-merge associativity.

use gld_obs::hist::{bucket_bounds, bucket_index, SUB};
use gld_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Records every value into a fresh histogram.
fn recorded(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The exact nearest-rank percentile of `sorted` at quantile `q`, matching
/// the rank rule `value_at_quantile` uses.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quantile_estimates_stay_within_the_bucket_error_bound(
        values in prop::collection::vec(0u64..50_000_000, 1..400),
    ) {
        let h = recorded(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snapshot = h.snapshot();
        prop_assert_eq!(snapshot.count, values.len() as u64);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_percentile(&sorted, q);
            let est = snapshot.value_at_quantile(q);
            // The estimate must land in the exact sample's bucket, whose
            // width is at most 1/SUB of its lower bound (and 1 below SUB,
            // where buckets are exact) — the documented error bound.
            prop_assert_eq!(bucket_index(est), bucket_index(exact));
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            let width = hi - lo;
            prop_assert!(
                width <= (lo / SUB as u64).max(1),
                "bucket [{}, {}) wider than lo/{}", lo, hi, SUB
            );
            prop_assert!(est.abs_diff(exact) < width.max(1));
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing(
        per_thread in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000, 1..64),
            2..5,
        ),
    ) {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for chunk in &per_thread {
                let h = &h;
                scope.spawn(move || {
                    for &v in chunk {
                        h.record(v);
                    }
                });
            }
        });
        let expected_count: u64 = per_thread.iter().map(|c| c.len() as u64).sum();
        let expected_sum: u64 = per_thread.iter().flatten().sum();
        prop_assert_eq!(h.count(), expected_count);
        prop_assert_eq!(h.sum(), expected_sum);
        prop_assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), expected_count);
    }

    #[test]
    fn snapshot_merge_is_associative_and_matches_combined_recording(
        a in prop::collection::vec(0u64..1_000_000, 0..64),
        b in prop::collection::vec(0u64..1_000_000, 0..64),
        c in prop::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let (sa, sb, sc) = (
            recorded(&a).snapshot(),
            recorded(&b).snapshot(),
            recorded(&c).snapshot(),
        );

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        // ...and both equal recording everything into one histogram.
        let mut all: Vec<u64> = Vec::new();
        all.extend(&a);
        all.extend(&b);
        all.extend(&c);
        let combined = recorded(&all).snapshot();
        prop_assert_eq!(&left, &combined);

        // The identity element: merging an empty snapshot changes nothing.
        let mut padded = left.clone();
        padded.merge(&HistogramSnapshot::default());
        prop_assert_eq!(&padded, &left);
    }
}
