//! Stage-one training loop: fits the VAE + hyperprior on random crops drawn
//! from a scientific dataset variable (paper §3.4, "VAE with hyperprior
//! Training").

use crate::config::VaeConfig;
use crate::model::{RateDistortion, Vae};
use gld_datasets::blocks::{block_to_nchw, sample_training_block, BlockSpec};
use gld_datasets::Variable;
use gld_nn::prelude::*;
use gld_tensor::{Tensor, TensorRng};

/// Summary of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Loss after the first evaluation.
    pub initial_loss: f32,
    /// Loss at the end of training.
    pub final_loss: f32,
    /// Rate–distortion diagnostics of the final step.
    pub final_rd: RateDistortion,
    /// Number of optimisation steps performed.
    pub steps: usize,
}

/// Trainer owning the model, the optimiser and the sampling RNG.
pub struct VaeTrainer {
    vae: Vae,
    optimizer: Adam,
    rng: TensorRng,
    patch: usize,
    batch: usize,
}

impl VaeTrainer {
    /// Creates a trainer.  `patch` is the square crop size fed to the model
    /// (paper: 256; scaled down here) and `batch` the crops per step.
    pub fn new(config: VaeConfig, patch: usize, batch: usize) -> Self {
        let vae = Vae::new(config);
        let params = vae.parameters();
        // The paper uses 1e-3 with step decay; the scaled-down model prefers
        // a slightly smaller rate with the same decay structure.
        let schedule = LrSchedule::StepDecay {
            base: 4e-3,
            every: 400,
            factor: 0.5,
        };
        let optimizer = Adam::new(
            params,
            schedule,
            AdamConfig {
                grad_clip: 5.0,
                ..AdamConfig::default()
            },
        );
        VaeTrainer {
            vae,
            optimizer,
            rng: TensorRng::new(config.seed.wrapping_add(1)),
            patch,
            batch,
        }
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &Vae {
        &self.vae
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> Vae {
        self.vae
    }

    /// Draws one normalised training batch `[batch, 1, patch, patch]` from
    /// the variables.  Frames are normalised to zero mean / unit range as in
    /// the paper (scientific data spans ~10¹⁰).
    fn sample_batch(&mut self, variables: &[Variable]) -> Tensor {
        let spec = BlockSpec::new(1, self.patch);
        let mut crops = Vec::with_capacity(self.batch);
        for _ in 0..self.batch {
            let var = &variables[self.rng.sample_index(variables.len())];
            let block = sample_training_block(var, spec, &mut self.rng);
            let (normalized, _, _) = block.normalize_mean_range();
            crops.push(block_to_nchw(&normalized));
        }
        let refs: Vec<&Tensor> = crops.iter().collect();
        Tensor::concat(&refs, 0)
    }

    /// Runs `steps` optimisation steps over the given variables and returns
    /// a report.  Training is deterministic for a fixed config seed.
    pub fn train(&mut self, variables: &[Variable], steps: usize) -> TrainReport {
        assert!(
            !variables.is_empty(),
            "training requires at least one variable"
        );
        let mut initial_loss = f32::NAN;
        let mut final_loss = f32::NAN;
        let mut final_rd = RateDistortion {
            mse: 0.0,
            bits_y: 0.0,
            bits_z: 0.0,
            bpp: 0.0,
        };
        for step in 0..steps {
            let batch = self.sample_batch(variables);
            let tape = Tape::new();
            let (loss, rd) = self.vae.rd_loss(&tape, &batch, &mut self.rng);
            let loss_value = loss.value().item();
            if step == 0 {
                initial_loss = loss_value;
            }
            final_loss = loss_value;
            final_rd = rd;
            loss.backward();
            self.optimizer.step();
        }
        TrainReport {
            initial_loss,
            final_loss,
            final_rd,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gld_datasets::{generate, DatasetKind, FieldSpec};
    use gld_tensor::stats::mse;

    #[test]
    fn training_reduces_the_loss() {
        let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 7);
        let mut trainer = VaeTrainer::new(VaeConfig::tiny(), 16, 2);
        let report = trainer.train(&ds.variables, 60);
        assert_eq!(report.steps, 60);
        assert!(
            report.final_loss < report.initial_loss,
            "loss did not decrease: {} -> {}",
            report.initial_loss,
            report.final_loss
        );
        assert!(report.final_rd.bpp.is_finite());
    }

    #[test]
    fn trained_model_reconstructs_better_than_untrained() {
        let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 9);
        let frames_raw = ds.variables[0].frames.slice_axis(0, 0, 2);
        let (norm, _, _) = frames_raw.normalize_mean_range();
        let frames = norm.reshape(&[2, 1, 16, 16]);

        let untrained = Vae::new(VaeConfig::tiny());
        let err_untrained = mse(&frames, &untrained.reconstruct(&frames));

        let mut trainer = VaeTrainer::new(VaeConfig::tiny(), 16, 2);
        trainer.train(&ds.variables, 150);
        let trained = trainer.into_model();
        let err_trained = mse(&frames, &trained.reconstruct(&frames));

        assert!(
            err_trained < err_untrained,
            "training did not help: {err_trained} vs {err_untrained}"
        );
    }
}
