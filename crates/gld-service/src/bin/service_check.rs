//! `gld-service-check` — client-side smoke check against a live
//! `gld-serviced`, used by CI's boot-the-binary job.
//!
//! Connects (retrying while the server boots), negotiates, round-trips
//! variables through both rule-based codecs, verifies every byte against a
//! direct in-process `Codec` run, exercises an error path, then asks the
//! server to shut down.  Any mismatch or refusal exits non-zero.
//!
//! With `--pipelined` it instead exercises the pipelined client mode:
//! many keepalive connections each keep several requests outstanding,
//! replies are matched back by request id (out-of-order allowed), the
//! pipelined compress bytes are checked bit-identical to a blocking
//! compress of the same variable, and the `Status` op's per-shard
//! counters are asserted against the negotiated topology.
//!
//! ```text
//! gld-service-check [--pipelined] [HOST:PORT]   (default 127.0.0.1:7171)
//! ```

use gld_baselines::{SzCompressor, ZfpLikeCompressor};
use gld_core::{Codec, CodecId, Container, ErrorTarget, StreamConfig};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_service::{Backoff, ClientError, Reply, ServiceClient, Status};
use std::collections::HashMap;
use std::time::{Duration, Instant};

fn connect_with_retry(addr: &str) -> ServiceClient {
    // The same jittered exponential backoff `ResilientClient` uses, seeded
    // per process so parallel checks against one booting server do not
    // busy-dial in lockstep.
    let mut backoff = Backoff::new(
        Duration::from_millis(50),
        Duration::from_secs(2),
        std::process::id() as u64,
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match ServiceClient::connect(addr) {
            Ok(client) => return client,
            Err(e) if Instant::now() < deadline => {
                eprintln!("waiting for {addr}: {e}");
                backoff.sleep();
            }
            Err(e) => panic!("could not reach {addr} within 20s: {e}"),
        }
    }
}

/// Pipelined smoke check: 32 keepalive connections, each with a mixed
/// window of ping/compress/status/decompress submits matched back by
/// request id, verified bit-identical against one blocking compress.
fn pipelined_check(addr: &str) {
    let mut blocking = connect_with_retry(addr);
    let info = blocking
        .hello(&[CodecId::SzLike, CodecId::ZfpLike])
        .expect("hello negotiation");
    println!(
        "pipelined check: server has {} shard(s), window {}",
        info.shards, info.shard_window
    );

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(2, 24, 16, 16), 71);
    let variable = &ds.variables[0];
    let reference = blocking
        .compress(&variable.name, variable, 8, None)
        .expect("blocking compress reference");
    let codec = SzCompressor::new();
    let local_blocks = codec
        .decompress_container(&Container::decode(&reference).expect("container decodes"))
        .expect("local decompress");

    const CONNS: usize = 32;
    for conn in 0..CONNS {
        let mut setup = connect_with_retry(addr);
        setup
            .hello(&[CodecId::SzLike, CodecId::ZfpLike])
            .expect("hello negotiation");
        let mut pipe = setup.into_pipelined();

        let mut expected = HashMap::new();
        expected.insert(pipe.submit_ping().expect("submit ping"), "ping");
        expected.insert(
            pipe.submit_compress(&variable.name, variable, 8, None)
                .expect("submit compress"),
            "compress",
        );
        expected.insert(pipe.submit_status().expect("submit status"), "status");
        expected.insert(
            pipe.submit_decompress(&variable.name, &reference)
                .expect("submit decompress"),
            "decompress",
        );
        expected.insert(pipe.submit_ping().expect("submit ping"), "ping");
        assert_eq!(pipe.outstanding(), 5);

        for (id, reply) in pipe.drain().expect("drain pipelined replies") {
            let kind = expected
                .remove(&id)
                .expect("reply id matches an outstanding submit");
            match (kind, reply) {
                ("ping", Reply::Pong) => {}
                ("compress", Reply::Compressed(bytes)) => assert_eq!(
                    bytes, reference,
                    "pipelined compress differs from blocking compress"
                ),
                ("status", Reply::ServerStatus(status)) => {
                    assert_eq!(
                        status.shards.len(),
                        info.shards as usize,
                        "Status shard count differs from hello topology"
                    );
                    assert!(status.connections_active >= 1, "we are connected");
                }
                ("decompress", Reply::Decompressed(blocks)) => {
                    assert_eq!(blocks.len(), local_blocks.len());
                    for (a, b) in blocks.iter().zip(&local_blocks) {
                        assert_eq!(a.data(), b.data(), "pipelined decompress differs");
                    }
                }
                (kind, other) => panic!("conn {conn}: {kind} answered with {other:?}"),
            }
        }
        assert!(expected.is_empty(), "every submit answered exactly once");
    }

    let status = blocking.status().expect("status op");
    let completed: u64 = status.shards.iter().map(|s| s.completed).sum();
    assert!(
        completed as usize >= CONNS,
        "per-shard completed counters should cover the pipelined compresses"
    );
    println!(
        "{CONNS} pipelined connections OK ({} codec requests completed server-side)",
        completed
    );

    blocking.shutdown_server().expect("shutdown request");
    println!("pipelined service check OK");
}

fn main() {
    let mut pipelined = false;
    let mut addr = "127.0.0.1:7171".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--pipelined" => pipelined = true,
            other => addr = other.to_string(),
        }
    }
    if pipelined {
        pipelined_check(&addr);
        return;
    }
    let mut client = connect_with_retry(&addr);

    let info = client
        .hello(&[CodecId::SzLike, CodecId::ZfpLike])
        .expect("hello negotiation");
    println!(
        "negotiated {:?}; server has {} shard(s), window {}, queue depth {}",
        info.codec, info.shards, info.shard_window, info.queue_depth
    );
    assert_eq!(info.codec, CodecId::SzLike, "first preference wins");
    assert!(
        info.profiles,
        "default hello advertises shared profiles and the server knows them"
    );
    client.ping().expect("ping");

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(2, 24, 16, 16), 71);
    let codecs: [(&str, &dyn Codec); 2] = [
        ("SZ3-like", &SzCompressor::new()),
        ("ZFP-like", &ZfpLikeCompressor::new()),
    ];
    for (name, codec) in codecs {
        for (variable, target) in ds
            .variables
            .iter()
            .zip([None, Some(ErrorTarget::Nrmse(1e-2))])
        {
            let remote = client
                .compress_as(codec.id(), &variable.name, variable, 8, target)
                .expect("remote compress");
            // The default hello negotiated shared profiles, so the session's
            // compress responses are v4 containers — the local oracle is the
            // profiled path, not the per-frame-staged `compress_variable`.
            let (local, stats, _) =
                codec.compress_variable_profiled(variable, 8, target, StreamConfig::default());
            assert_eq!(
                remote,
                local.encode(),
                "{name}: remote container differs from direct Codec output"
            );
            println!(
                "{name} '{}': {} blocks, {} bytes — bit-identical to local",
                variable.name, stats.blocks, stats.compressed_bytes
            );

            let blocks = client
                .decompress(&variable.name, &remote)
                .expect("remote decompress");
            let reference = codec
                .decompress_container(&Container::decode(&remote).expect("container decodes"))
                .expect("local decompress");
            assert_eq!(blocks.len(), reference.len());
            for (a, b) in blocks.iter().zip(&reference) {
                assert_eq!(a.dims(), b.dims(), "{name}: block dims differ");
                assert_eq!(a.data(), b.data(), "{name}: block data differs");
            }
        }
    }

    // Error path: a variable too short for one block must come back as a
    // typed refusal, not a hung or dead connection.
    let refusal = client.compress_as(CodecId::SzLike, "too-short", &ds.variables[0], 1_000, None);
    match refusal {
        Err(ClientError::Server { status, .. }) => assert_eq!(status, Status::Malformed),
        other => panic!("expected a Malformed refusal, got {other:?}"),
    }
    client
        .ping()
        .expect("connection still serves after a refusal");

    client.shutdown_server().expect("shutdown request");
    println!("service check OK");
}
