//! Neural-network layers used by the VAE, the hyperprior and the space-time
//! UNet.  Each layer owns its [`Parameter`]s and exposes a `forward` that
//! records onto the caller's [`Tape`].

use crate::param::{Parameter, ParameterSet};
use crate::tape::{Tape, Var};
use gld_tensor::conv::Conv2dGeometry;
use gld_tensor::{Tensor, TensorRng};

/// Common interface for layers with a single-tensor forward signature.
pub trait Module {
    /// Applies the layer to `x`, recording onto `x`'s tape.
    fn forward(&self, x: &Var) -> Var;
    /// All trainable parameters of the layer.
    fn parameters(&self) -> ParameterSet;
}

/// A stack of boxed [`Module`]s applied in order.
#[derive(Default)]
pub struct Sequentialish {
    layers: Vec<Box<dyn Module>>,
}

impl Sequentialish {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequentialish { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Module>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequentialish {
    fn forward(&self, x: &Var) -> Var {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    fn parameters(&self) -> ParameterSet {
        let mut set = ParameterSet::new();
        for layer in &self.layers {
            set.extend(&layer.parameters());
        }
        set
    }
}

// ----------------------------------------------------------------------
// Linear
// ----------------------------------------------------------------------

/// Fully connected layer `y = x · W + b`.
///
/// Accepts rank-2 input `[batch, in]` or rank-3 input `[batch, len, in]`
/// (flattened internally), which is what the attention blocks use.
pub struct Linear {
    weight: Parameter,
    bias: Option<Parameter>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a linear layer with Kaiming-initialised weights.
    pub fn new(
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut TensorRng,
    ) -> Self {
        let weight = Parameter::new(
            format!("{name}.weight"),
            rng.kaiming(&[in_features, out_features], in_features),
        );
        let bias = if bias {
            Some(Parameter::new(
                format!("{name}.bias"),
                Tensor::zeros(&[out_features]),
            ))
        } else {
            None
        };
        Linear {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer, recording onto the variable's tape.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let dims = x.dims();
        assert!(
            dims.last() == Some(&self.in_features),
            "Linear expected trailing dim {}, got {:?}",
            self.in_features,
            dims
        );
        let w = tape.param(&self.weight);
        let (flat, restore): (Var, Option<Vec<usize>>) = match dims.len() {
            2 => (x.clone(), None),
            3 => {
                let mut out_dims = dims.clone();
                out_dims[2] = self.out_features;
                (x.reshape(&[dims[0] * dims[1], dims[2]]), Some(out_dims))
            }
            _ => panic!("Linear supports rank-2 or rank-3 input, got {dims:?}"),
        };
        let mut y = flat.matmul(&w);
        if let Some(b) = &self.bias {
            let bv = tape.param(b);
            y = y.add(&bv);
        }
        match restore {
            Some(out_dims) => y.reshape(&out_dims),
            None => y,
        }
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> ParameterSet {
        let mut set = ParameterSet::new();
        set.push(self.weight.clone());
        if let Some(b) = &self.bias {
            set.push(b.clone());
        }
        set
    }
}

// ----------------------------------------------------------------------
// Conv2d
// ----------------------------------------------------------------------

/// 2-D convolution layer over NCHW tensors.
pub struct Conv2d {
    weight: Parameter,
    bias: Option<Parameter>,
    geom: Conv2dGeometry,
    in_channels: usize,
    out_channels: usize,
}

impl Conv2d {
    /// Creates a convolution with a square kernel.
    pub fn new(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Parameter::new(
            format!("{name}.weight"),
            rng.kaiming(&[out_channels, in_channels, kernel, kernel], fan_in),
        );
        let bias = Some(Parameter::new(
            format!("{name}.bias"),
            Tensor::zeros(&[out_channels]),
        ));
        Conv2d {
            weight,
            bias,
            geom: Conv2dGeometry::new(kernel, stride, pad),
            in_channels,
            out_channels,
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> Conv2dGeometry {
        self.geom
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Applies the convolution, recording onto the variable's tape.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let w = tape.param(&self.weight);
        let b = self.bias.as_ref().map(|b| tape.param(b));
        x.conv2d(&w, b.as_ref(), self.geom)
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> ParameterSet {
        let mut set = ParameterSet::new();
        set.push(self.weight.clone());
        if let Some(b) = &self.bias {
            set.push(b.clone());
        }
        set
    }
}

// ----------------------------------------------------------------------
// GroupNorm
// ----------------------------------------------------------------------

/// Group normalisation with affine parameters.
pub struct GroupNorm {
    gamma: Parameter,
    beta: Parameter,
    groups: usize,
    eps: f32,
}

impl GroupNorm {
    /// Creates a group-norm layer over `channels` channels split into
    /// `groups` groups.
    pub fn new(name: &str, groups: usize, channels: usize) -> Self {
        assert!(
            channels.is_multiple_of(groups),
            "channels must divide into groups"
        );
        GroupNorm {
            gamma: Parameter::new(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Parameter::new(format!("{name}.beta"), Tensor::zeros(&[channels])),
            groups,
            eps: 1e-5,
        }
    }

    /// Applies normalisation, recording onto the variable's tape.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let gamma = tape.param(&self.gamma);
        let beta = tape.param(&self.beta);
        x.group_norm(self.groups, &gamma, &beta, self.eps)
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> ParameterSet {
        let mut set = ParameterSet::new();
        set.push(self.gamma.clone());
        set.push(self.beta.clone());
        set
    }
}

// ----------------------------------------------------------------------
// Self-attention
// ----------------------------------------------------------------------

/// Multi-head self-attention over sequences `[batch, len, channels]`.
///
/// The factorized space-time attention of the denoising UNet applies this
/// block twice per stage: once with the sequence axis set to time (temporal
/// attention) and once with it set to the flattened spatial grid (spatial
/// attention), exactly as in the paper's §3.2.
pub struct SelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    channels: usize,
}

impl SelfAttention {
    /// Creates a multi-head attention block.
    pub fn new(name: &str, channels: usize, heads: usize, rng: &mut TensorRng) -> Self {
        assert!(
            channels.is_multiple_of(heads),
            "channels must divide into heads"
        );
        SelfAttention {
            wq: Linear::new(&format!("{name}.wq"), channels, channels, false, rng),
            wk: Linear::new(&format!("{name}.wk"), channels, channels, false, rng),
            wv: Linear::new(&format!("{name}.wv"), channels, channels, false, rng),
            wo: Linear::new(&format!("{name}.wo"), channels, channels, true, rng),
            heads,
            channels,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Applies scaled dot-product self-attention.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let dims = x.dims();
        assert_eq!(
            dims.len(),
            3,
            "attention input must be [batch, len, channels]"
        );
        let (b, l, c) = (dims[0], dims[1], dims[2]);
        assert_eq!(c, self.channels, "attention channel mismatch");
        let h = self.heads;
        let dh = c / h;

        let split_heads = |v: &Var| -> Var {
            // [B, L, C] -> [B, L, H, dh] -> [B, H, L, dh] -> [B*H, L, dh]
            v.reshape(&[b, l, h, dh])
                .permute(&[0, 2, 1, 3])
                .reshape(&[b * h, l, dh])
        };

        let q = split_heads(&self.wq.forward(tape, x));
        let k = split_heads(&self.wk.forward(tape, x));
        let v = split_heads(&self.wv.forward(tape, x));

        let scale = 1.0 / (dh as f32).sqrt();
        let scores = q.matmul(&k.permute(&[0, 2, 1])).scale(scale); // [B*H, L, L]
        let attn = scores.softmax_last();
        let ctx = attn.matmul(&v); // [B*H, L, dh]
        let merged = ctx
            .reshape(&[b, h, l, dh])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b, l, c]);
        self.wo.forward(tape, &merged)
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> ParameterSet {
        let mut set = ParameterSet::new();
        set.extend(&self.wq.parameters());
        set.extend(&self.wk.parameters());
        set.extend(&self.wv.parameters());
        set.extend(&self.wo.parameters());
        set
    }
}

// ----------------------------------------------------------------------
// Timestep embedding
// ----------------------------------------------------------------------

/// Sinusoidal timestep embedding followed by a two-layer MLP, as used by the
/// denoising UNet to condition on the diffusion timestep `t`.
pub struct TimeEmbedding {
    mlp1: Linear,
    mlp2: Linear,
    dim: usize,
}

impl TimeEmbedding {
    /// Creates an embedding with sinusoidal dimension `dim` and output
    /// dimension `out_dim`.
    pub fn new(name: &str, dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        assert!(dim.is_multiple_of(2), "sinusoidal dimension must be even");
        TimeEmbedding {
            mlp1: Linear::new(&format!("{name}.mlp1"), dim, out_dim, true, rng),
            mlp2: Linear::new(&format!("{name}.mlp2"), out_dim, out_dim, true, rng),
            dim,
        }
    }

    /// Builds the (non-trainable) sinusoidal features for a batch of integer
    /// timesteps.
    pub fn sinusoidal(&self, timesteps: &[usize]) -> Tensor {
        sinusoidal_embedding(timesteps, self.dim)
    }

    /// Embeds the timesteps into a `[batch, out_dim]` feature tensor.
    pub fn forward(&self, tape: &Tape, timesteps: &[usize]) -> Var {
        let base = tape.constant(self.sinusoidal(timesteps));
        let h = self.mlp1.forward(tape, &base).silu();
        self.mlp2.forward(tape, &h)
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> ParameterSet {
        let mut set = ParameterSet::new();
        set.extend(&self.mlp1.parameters());
        set.extend(&self.mlp2.parameters());
        set
    }
}

/// Standard transformer/diffusion sinusoidal embedding of integer timesteps.
pub fn sinusoidal_embedding(timesteps: &[usize], dim: usize) -> Tensor {
    assert!(dim.is_multiple_of(2), "sinusoidal dimension must be even");
    let half = dim / 2;
    let mut data = vec![0.0f32; timesteps.len() * dim];
    for (bi, &t) in timesteps.iter().enumerate() {
        for i in 0..half {
            let freq = (10_000.0f32).powf(-(i as f32) / half as f32);
            let angle = t as f32 * freq;
            data[bi * dim + i] = angle.sin();
            data[bi * dim + half + i] = angle.cos();
        }
    }
    Tensor::from_vec(data, &[timesteps.len(), dim])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_rank2_and_rank3() {
        let mut rng = TensorRng::new(0);
        let lin = Linear::new("lin", 8, 4, true, &mut rng);
        let tape = Tape::new();
        let x2 = tape.constant(rng.randn(&[3, 8]));
        assert_eq!(lin.forward(&tape, &x2).dims(), vec![3, 4]);
        let x3 = tape.constant(rng.randn(&[2, 5, 8]));
        assert_eq!(lin.forward(&tape, &x3).dims(), vec![2, 5, 4]);
        assert_eq!(lin.parameters().len(), 2);
    }

    #[test]
    fn conv2d_layer_shapes() {
        let mut rng = TensorRng::new(1);
        let conv = Conv2d::new("c", 3, 8, 3, 2, 1, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(rng.randn(&[2, 3, 8, 8]));
        let y = conv.forward(&tape, &x);
        assert_eq!(y.dims(), vec![2, 8, 4, 4]);
        assert_eq!(conv.parameters().num_scalars(), 8 * 3 * 3 * 3 + 8);
    }

    #[test]
    fn group_norm_normalises_groups() {
        let mut rng = TensorRng::new(2);
        let gn = GroupNorm::new("gn", 2, 4);
        let tape = Tape::new();
        let x = tape.constant(rng.randn(&[2, 4, 5, 5]).scale(10.0).add_scalar(3.0));
        let y = gn.forward(&tape, &x).value();
        // With gamma=1, beta=0 the per-group mean is ~0 and variance ~1.
        let group = y.slice_axis(1, 0, 2);
        assert!(group.mean().abs() < 1e-3);
        assert!((group.variance() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn attention_preserves_shape_and_mixes_positions() {
        let mut rng = TensorRng::new(3);
        let attn = SelfAttention::new("attn", 8, 2, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(rng.randn(&[2, 6, 8]));
        let y = attn.forward(&tape, &x);
        assert_eq!(y.dims(), vec![2, 6, 8]);
        assert_eq!(attn.parameters().len(), 5); // 3 projections (no bias) + out weight + out bias
    }

    #[test]
    fn sinusoidal_embedding_properties() {
        let e = sinusoidal_embedding(&[0, 1, 500], 16);
        assert_eq!(e.dims(), &[3, 16]);
        // t = 0 gives sin = 0, cos = 1.
        for i in 0..8 {
            assert!(e.at(&[0, i]).abs() < 1e-6);
            assert!((e.at(&[0, 8 + i]) - 1.0).abs() < 1e-6);
        }
        // Distinct timesteps give distinct embeddings.
        let d01: f32 = (0..16).map(|i| (e.at(&[0, i]) - e.at(&[1, i])).abs()).sum();
        assert!(d01 > 1e-3);
    }

    #[test]
    fn time_embedding_forward_shape() {
        let mut rng = TensorRng::new(4);
        let te = TimeEmbedding::new("t", 8, 16, &mut rng);
        let tape = Tape::new();
        let y = te.forward(&tape, &[3, 7]);
        assert_eq!(y.dims(), vec![2, 16]);
        assert_eq!(te.parameters().len(), 4);
    }

    #[test]
    fn sequentialish_composes_modules() {
        struct Scale2;
        impl Module for Scale2 {
            fn forward(&self, x: &Var) -> Var {
                x.scale(2.0)
            }
            fn parameters(&self) -> ParameterSet {
                ParameterSet::new()
            }
        }
        let mut seq = Sequentialish::new();
        seq.push(Box::new(Scale2));
        seq.push(Box::new(Scale2));
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2]));
        let y = seq.forward(&x);
        assert_eq!(y.value().data(), &[4.0, 4.0]);
        assert_eq!(seq.len(), 2);
    }
}
