//! Regenerates Table 1 (dataset inventory): the paper's original datasets
//! side by side with the synthetic stand-ins this reproduction evaluates on.

use gld_bench::{bench_spec, write_result};
use gld_datasets::table1_rows;

fn main() {
    let spec = bench_spec();
    println!("Table 1 — Datasets Information (paper vs synthetic stand-in)\n");
    println!(
        "{:<22} {:<12} {:<26} {:>12} | {:<26} {:>12}",
        "Application",
        "Domain",
        "Paper dimensions",
        "Paper size",
        "Synthetic dimensions",
        "Synth size"
    );
    let mut csv = String::from("application,domain,paper_dims,paper_size,synth_dims,synth_size\n");
    for (paper, synth) in table1_rows(&spec) {
        let pd = format!(
            "{} x {} x {} x {}",
            paper.dims[0], paper.dims[1], paper.dims[2], paper.dims[3]
        );
        let sd = format!(
            "{} x {} x {} x {}",
            synth.dims[0], synth.dims[1], synth.dims[2], synth.dims[3]
        );
        println!(
            "{:<22} {:<12} {:<26} {:>12} | {:<26} {:>12}",
            paper.name,
            paper.domain,
            pd,
            paper.size_human(),
            sd,
            synth.size_human()
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            paper.name,
            paper.domain,
            pd.replace(' ', ""),
            paper.size_human(),
            sd.replace(' ', ""),
            synth.size_human()
        ));
    }
    write_result("table1_datasets.csv", &csv);
}
