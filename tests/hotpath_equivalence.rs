//! Equivalence suite for the allocation-free hot path: every optimized
//! kernel must be **bit-identical** to its frozen pre-optimisation
//! reference.
//!
//! Three layers are pinned down:
//!
//! * **entropy** — the table-driven range coder round-trips arbitrary
//!   histogram streams, the LUT symbol search resolves exactly the same
//!   bins (and consumes exactly the same stream state) as the binary-search
//!   reference, and the reference arithmetic back end still decodes its own
//!   streams through the shared model code;
//! * **kernels** — the split boundary/interior Lorenzo walk with branchless
//!   quantisation (`SzCompressor`) and the tiled ZFP-like path produce
//!   byte-identical frames to `gld_baselines::reference` driven over the
//!   same range back end, and decompress to bit-identical tensors;
//! * **arena** — `compress_block_scratch` with an arbitrarily dirty
//!   `CodecScratch` equals `compress_block_at`, and the streaming executor
//!   (whose workers reuse thread-local arenas) emits containers
//!   byte-identical to the sequential reference across worker counts and
//!   queue depths.  CI runs this file on both `RAYON_NUM_THREADS` legs;
//! * **backends** — every SIMD kernel backend the host supports produces
//!   byte-identical frames, containers and LZ stage streams to the forced
//!   scalar backend, through the full compressors, across dirty scratch
//!   reuse and under the parallel executor.  CI additionally runs the whole
//!   suite with `GLD_KERNEL_BACKEND=scalar`.

use gld_baselines::{reference, ErrorBoundedCompressor, SzCompressor, ZfpLikeCompressor};
use gld_core::{Codec, CodecError, CodecScratch, Container, ErrorTarget, StreamConfig};
use gld_datasets::Variable;
use gld_entropy::{
    ArithmeticBackend, EntropyBackend, EntropyEncoder, HistogramModel, RangeBackend, RangeDecoder,
    RangeEncoder,
};
use gld_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

fn random_tensor(seed: u64, dims: &[usize]) -> Tensor {
    let mut rng = TensorRng::new(seed);
    rng.randn(dims).scale(3.0)
}

/// Shapes mixing ranks, interior-heavy volumes and degenerate edges.
fn shape_matrix() -> Vec<Vec<usize>> {
    vec![
        vec![48],
        vec![1, 1, 1],
        vec![7, 9],
        vec![4, 12, 12],
        vec![3, 5, 17],
        vec![1, 16, 16],
        vec![2, 2, 8, 8],
        vec![5, 1, 9],
    ]
}

// ----------------------------------------------------------------------
// Entropy layer
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The LUT-driven symbol search and the binary-search reference must
    /// resolve identical symbols from identical stream state, symbol by
    /// symbol.
    #[test]
    fn lut_decode_equals_binary_search_decode(
        symbols in prop::collection::vec(-600i32..600, 1..400),
    ) {
        let model = HistogramModel::fit(&symbols);
        let mut enc = RangeEncoder::new();
        model.encode(&mut enc, &symbols);
        let bytes = enc.finish();
        let mut lut_dec = RangeDecoder::new(&bytes);
        let mut ref_dec = RangeDecoder::new(&bytes);
        for &expected in &symbols {
            let via_lut = model.decode_symbol(&mut lut_dec);
            let via_search = model.decode_symbol_binary_search(&mut ref_dec);
            prop_assert_eq!(via_lut, expected);
            prop_assert_eq!(via_search, expected);
        }
    }

    /// Both entropy back ends must round-trip the same model-coded stream
    /// (each over its own bytes — the coders differ on the wire by design).
    #[test]
    fn both_backends_roundtrip_histogram_streams(
        symbols in prop::collection::vec(-50i32..50, 1..300),
    ) {
        fn run<B: EntropyBackend>(symbols: &[i32]) -> Vec<i32> {
            let model = HistogramModel::fit(symbols);
            let mut enc = B::encoder();
            model.encode(&mut enc, symbols);
            let bytes = enc.finish();
            let mut dec = B::decoder(&bytes);
            model.decode(&mut dec, symbols.len())
        }
        prop_assert_eq!(run::<RangeBackend>(&symbols), symbols.clone());
        prop_assert_eq!(run::<ArithmeticBackend>(&symbols), symbols);
    }
}

// ----------------------------------------------------------------------
// Kernel layer: optimized vs reference, byte-for-byte
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sz_optimized_kernel_is_bit_identical_to_reference(
        seed in 0u64..10_000,
        eb_exp in -4i32..0,
        d0 in 1usize..5,
        d1 in 1usize..14,
        d2 in 1usize..14,
    ) {
        let data = random_tensor(seed, &[d0, d1, d2]);
        let eb = 10f32.powi(eb_exp);
        let sz = SzCompressor::new();
        let optimized = sz.compress(&data, eb);
        let reference = reference::sz_compress::<RangeBackend>(&data, eb);
        prop_assert_eq!(&optimized, &reference);
        let fast = sz.decompress(&optimized);
        let slow = reference::sz_decompress::<RangeBackend>(&reference);
        prop_assert_eq!(fast.data(), slow.data());
    }

    #[test]
    fn zfp_optimized_kernel_is_bit_identical_to_reference(
        seed in 0u64..10_000,
        eb in 0.001f32..0.5,
        d0 in 1usize..6,
        d1 in 1usize..11,
        d2 in 1usize..11,
    ) {
        let data = random_tensor(seed, &[d0, d1, d2]);
        let zfp = ZfpLikeCompressor::new();
        let optimized = zfp.compress(&data, eb);
        let reference = reference::zfp_compress::<RangeBackend>(&data, eb);
        prop_assert_eq!(&optimized, &reference);
        let fast = zfp.decompress(&optimized);
        let slow = reference::zfp_decompress::<RangeBackend>(&reference);
        prop_assert_eq!(fast.data(), slow.data());
    }

    /// Outlier-heavy fields exercise the escape/verbatim path through both
    /// kernels.
    #[test]
    fn escape_paths_are_bit_identical_to_reference(
        seed in 0u64..10_000,
        spike in 1e8f32..1e30,
    ) {
        let mut data = random_tensor(seed, &[3, 8, 8]);
        let n = data.numel();
        let spike_at = (seed as usize * 31) % n;
        let mut v = data.data().to_vec();
        v[spike_at] = spike;
        v[(spike_at + n / 2) % n] = -spike;
        data = Tensor::from_vec(v, &[3, 8, 8]);
        let sz = SzCompressor::new();
        prop_assert_eq!(
            sz.compress(&data, 1e-3),
            reference::sz_compress::<RangeBackend>(&data, 1e-3)
        );
        let zfp = ZfpLikeCompressor::new();
        prop_assert_eq!(
            zfp.compress(&data, 1e-3),
            reference::zfp_compress::<RangeBackend>(&data, 1e-3)
        );
    }
}

#[test]
fn rank_matrix_is_bit_identical_to_reference() {
    for (i, dims) in shape_matrix().into_iter().enumerate() {
        let data = random_tensor(100 + i as u64, &dims);
        for eb in [1e-1f32, 1e-3] {
            assert_eq!(
                SzCompressor::new().compress(&data, eb),
                reference::sz_compress::<RangeBackend>(&data, eb),
                "sz dims {dims:?} eb {eb}"
            );
            assert_eq!(
                ZfpLikeCompressor::new().compress(&data, eb),
                reference::zfp_compress::<RangeBackend>(&data, eb),
                "zfp dims {dims:?} eb {eb}"
            );
        }
    }
}

// ----------------------------------------------------------------------
// Arena layer: scratch reuse and the streaming executor
// ----------------------------------------------------------------------

#[test]
fn dirty_codec_scratch_never_changes_frames() {
    // One scratch carried across codecs *and* shapes — worst-case staleness.
    let mut scratch = CodecScratch::new();
    let sz = SzCompressor::new();
    let zfp = ZfpLikeCompressor::new();
    for (i, dims) in shape_matrix().into_iter().enumerate() {
        let block = random_tensor(200 + i as u64, &dims);
        for codec in [&sz as &dyn Codec, &zfp] {
            for target in [
                None,
                Some(ErrorTarget::PointwiseAbs(0.01)),
                Some(ErrorTarget::Nrmse(1e-3)),
            ] {
                let fresh = codec.compress_block_at(&block, target, 0);
                let reused = codec.compress_block_scratch(&block, target, 0, &mut scratch);
                assert_eq!(fresh, reused, "codec {} dims {dims:?}", codec.name());
            }
        }
    }
}

#[test]
fn streaming_executor_with_arenas_matches_sequential_reference() {
    let frames = 18;
    let t = random_tensor(7, &[frames, 12, 12]);
    let variable = Variable::new("hotpath-var", t);
    let sz = SzCompressor::new();
    let (seq, seq_stats) = sz.compress_variable_sequential(&variable, 3, None);
    for depth in [1, 2, 7] {
        for workers in [0, 1, 3] {
            let (streamed, stats, _) = sz.compress_variable_streaming(
                &variable,
                3,
                None,
                StreamConfig {
                    queue_depth: depth,
                    workers,
                },
            );
            assert_eq!(
                streamed.encode(),
                seq.encode(),
                "depth {depth} workers {workers}"
            );
            assert_eq!(stats, seq_stats, "depth {depth} workers {workers}");
        }
    }
}

#[test]
fn rank5_block_is_a_typed_codec_error_through_the_trait() {
    let block = Tensor::zeros(&[2, 2, 2, 2, 2]);
    for codec in [
        &SzCompressor::new() as &dyn Codec,
        &ZfpLikeCompressor::new(),
    ] {
        let err = codec
            .try_compress_block_at(&block, None, 0)
            .expect_err("rank-5 must be rejected");
        assert_eq!(
            err,
            CodecError::UnsupportedRank { rank: 5 },
            "codec {}",
            codec.name()
        );
        assert!(err.to_string().contains("rank 5"));
    }
}

#[test]
fn rank4_block_still_compresses_through_the_try_path() {
    let block = random_tensor(9, &[2, 2, 6, 6]);
    let sz = SzCompressor::new();
    let frame = sz
        .try_compress_block_at(&block, None, 0)
        .expect("rank-4 is supported");
    assert_eq!(frame, sz.compress_block_at(&block, None, 0));
}

// ----------------------------------------------------------------------
// Backend layer: every SIMD backend vs forced scalar, through full codecs
// ----------------------------------------------------------------------

use gld_kernels::Backend;
use std::sync::Mutex;

/// Serialises tests that force the process-global kernel backend.  (Tests
/// that *don't* force one are unaffected by a concurrent force: all
/// backends are bit-identical, which is exactly what this section proves.)
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Runs `op` once per available backend and asserts every backend's output
/// equals the scalar backend's.
fn assert_backends_agree<T: PartialEq + std::fmt::Debug>(label: &str, mut op: impl FnMut() -> T) {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    gld_kernels::force(Backend::Scalar).expect("scalar always available");
    let expected = op();
    for backend in gld_kernels::available_backends() {
        if backend == Backend::Scalar {
            continue;
        }
        gld_kernels::force(backend).expect("listed backends are available");
        let got = op();
        assert_eq!(got, expected, "{label}: {backend} diverged from scalar");
    }
    gld_kernels::clear_force();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full SZ and ZFP frames — including decompressed tensors bit-for-bit
    /// (the decode side exercises the SIMD CDF scan) — must not depend on
    /// the backend, over random shapes and error bounds.
    #[test]
    fn all_backends_produce_identical_frames(
        seed in 0u64..10_000,
        eb_exp in -4i32..0,
        d0 in 1usize..5,
        d1 in 1usize..14,
        d2 in 1usize..14,
    ) {
        let data = random_tensor(seed, &[d0, d1, d2]);
        let eb = 10f32.powi(eb_exp);
        let sz = SzCompressor::new();
        let zfp = ZfpLikeCompressor::new();
        assert_backends_agree("sz frame+decode", || {
            let frame = sz.compress(&data, eb);
            let bits: Vec<u32> = sz.decompress(&frame).data().iter().map(|v| v.to_bits()).collect();
            (frame, bits)
        });
        assert_backends_agree("zfp frame+decode", || {
            let frame = zfp.compress(&data, eb);
            let bits: Vec<u32> = zfp.decompress(&frame).data().iter().map(|v| v.to_bits()).collect();
            (frame, bits)
        });
    }

    /// Escape-heavy fields (huge spikes, non-finite cells) hit the verbatim
    /// paths of every backend's quantiser.
    #[test]
    fn backend_escape_paths_are_identical(
        seed in 0u64..10_000,
        spike in 1e8f32..1e30,
    ) {
        let mut v = random_tensor(seed, &[3, 8, 8]).data().to_vec();
        let n = v.len();
        let spike_at = (seed as usize * 31) % n;
        v[spike_at] = spike;
        v[(spike_at + n / 2) % n] = -spike;
        v[(spike_at + n / 3) % n] = f32::INFINITY;
        let data = Tensor::from_vec(v, &[3, 8, 8]);
        let sz = SzCompressor::new();
        let zfp = ZfpLikeCompressor::new();
        assert_backends_agree("sz escapes", || sz.compress(&data, 1e-3));
        assert_backends_agree("zfp escapes", || zfp.compress(&data, 1e-3));
    }

    /// The LZ stage (batch hashing + SIMD match extension) must emit
    /// identical stage streams on every backend, for both compressed-frame
    /// payloads and pathological repetitive input.
    #[test]
    fn lz_stage_streams_are_identical_across_backends(
        seed in 0u64..10_000,
        period in 1usize..40,
    ) {
        let frame = SzCompressor::new().compress(&random_tensor(seed, &[4, 10, 10]), 1e-2);
        let repetitive: Vec<u8> = (0..2048).map(|i| (i % period) as u8).collect();
        assert_backends_agree("lz stage", || {
            let mut scratch = gld_lz::LzScratch::new();
            (
                gld_lz::compress(&frame, &mut scratch),
                gld_lz::compress(&repetitive, &mut scratch),
            )
        });
    }
}

/// A `CodecScratch` dirtied by one backend then reused by another must not
/// change any frame — arena reuse and backend dispatch are orthogonal.
#[test]
fn dirty_scratch_reused_across_backends_is_identical() {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sz = SzCompressor::new();
    let zfp = ZfpLikeCompressor::new();
    let backends = gld_kernels::available_backends();
    let mut scratch = CodecScratch::new();
    for (i, dims) in shape_matrix().into_iter().enumerate() {
        let block = random_tensor(300 + i as u64, &dims);
        for codec in [&sz as &dyn Codec, &zfp] {
            let fresh = codec.compress_block_at(&block, None, 0);
            // Rotate through every backend with the same dirty scratch.
            for &backend in &backends {
                gld_kernels::force(backend).expect("available");
                let reused = codec.compress_block_scratch(&block, None, 0, &mut scratch);
                assert_eq!(
                    reused,
                    fresh,
                    "codec {} dims {dims:?} backend {backend}",
                    codec.name()
                );
            }
        }
    }
    gld_kernels::clear_force();
}

/// Container v4 (shared profiles + warm semi-static stage) must encode to
/// the same bytes on every kernel backend: profile fitting, the frozen
/// coding tables, and the dictionary-primed match finder all sit on top of
/// backend-dispatched kernels, and a v4 container written on an AVX2 host
/// must decode warm on a scalar one.
#[test]
fn v4_profiled_containers_are_identical_across_backends() {
    let t = random_tensor(41, &[24, 12, 12]);
    let variable = Variable::new("profile-var", t);
    let sz = SzCompressor::new();
    let zfp = ZfpLikeCompressor::new();
    assert_backends_agree("sz v4 profiled", || {
        let (container, _) = sz.compress_variable_profiled_sequential(&variable, 8, None);
        let v4 = container.encode();
        let blocks = sz
            .decompress_container(&Container::decode(&v4).expect("v4 decodes"))
            .expect("v4 decompresses");
        let bits: Vec<Vec<u32>> = blocks
            .iter()
            .map(|b| b.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        (v4, bits)
    });
    assert_backends_agree("zfp v4 profiled", || {
        let (container, _) = zfp.compress_variable_profiled_sequential(&variable, 8, None);
        container.encode()
    });
}

/// The parallel streaming executor with the best SIMD backend forced must
/// equal the sequential reference — SIMD dispatch is safe under the
/// thread-pooled arena path.
#[test]
fn streaming_executor_matches_sequential_with_simd_forced() {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let t = random_tensor(8, &[18, 12, 12]);
    let variable = Variable::new("backend-var", t);
    let sz = SzCompressor::new();
    gld_kernels::force(Backend::Scalar).expect("scalar always available");
    let (seq, seq_stats) = sz.compress_variable_sequential(&variable, 3, None);
    gld_kernels::force(gld_kernels::best_available()).expect("best backend is available");
    for workers in [0, 1, 3] {
        let (streamed, stats, _) = sz.compress_variable_streaming(
            &variable,
            3,
            None,
            StreamConfig {
                queue_depth: 2,
                workers,
            },
        );
        assert_eq!(streamed.encode(), seq.encode(), "workers {workers}");
        assert_eq!(stats, seq_stats, "workers {workers}");
    }
    gld_kernels::clear_force();
}
