//! Learned-compression baselines (paper §4.7): analogues of CDC-X, CDC-ε,
//! GCD and VAE-SR built on the same VAE substrate as the proposed method.
//!
//! The structural property the paper's comparison isolates is that all four
//! baselines store a latent representation for **every** frame (or every
//! block), whereas the proposed method stores only keyframe latents and
//! generates the rest.  The analogues reproduce that property exactly:
//!
//! * **VAE-SR** — per-frame latents coded with the full hyperprior
//!   (Gaussian conditional) model and decoded with the VAE decoder; the
//!   strongest learned baseline, as in the paper.
//! * **CDC-X / CDC-ε** — per-frame latents coded *without* the hyperprior's
//!   conditional model (CDC is a natural-image codec, not tuned to
//!   scientific data), decoded with the VAE decoder followed by a
//!   pixel-space diffusion refinement whose step count differs between the
//!   X (signal-predicting) and ε (noise-predicting) variants.  The
//!   refinement runs in the full-resolution data space, which is what makes
//!   these methods slow to decode (Table 2).
//! * **GCD** — the 3-D block-based extension: the whole block's latents are
//!   coded as one unit and the pixel-space refinement runs over the whole
//!   block, making it the slowest decoder.

use gld_diffusion::{ConditionalDiffusion, FramePartition};
use gld_entropy::{HistogramModel, RangeDecoder, RangeEncoder};
use gld_tensor::{Tensor, TensorRng};
use gld_vae::codec::{read_dims, write_dims};
use gld_vae::{FrameCodec, Vae};
use serde::{Deserialize, Serialize};

/// Which baseline a [`LearnedBaseline`] instance emulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LearnedBaselineKind {
    /// Conditional diffusion compression, signal-predicting variant.
    CdcX,
    /// Conditional diffusion compression, noise-predicting variant.
    CdcEps,
    /// Guaranteed conditional diffusion (3-D block-based CDC).
    Gcd,
    /// VAE with super-resolution refinement.
    VaeSr,
}

impl LearnedBaselineKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            LearnedBaselineKind::CdcX => "CDC-X",
            LearnedBaselineKind::CdcEps => "CDC-eps",
            LearnedBaselineKind::Gcd => "GCD",
            LearnedBaselineKind::VaeSr => "VAE-SR",
        }
    }

    /// All baselines, in the order the paper lists them.
    pub fn all() -> [LearnedBaselineKind; 4] {
        [
            LearnedBaselineKind::CdcX,
            LearnedBaselineKind::CdcEps,
            LearnedBaselineKind::Gcd,
            LearnedBaselineKind::VaeSr,
        ]
    }

    /// Number of data-space refinement steps the decoder runs (zero for
    /// VAE-SR, which refines with a feed-forward module instead).
    pub fn refinement_steps(&self) -> usize {
        match self {
            LearnedBaselineKind::CdcX => 4,
            LearnedBaselineKind::CdcEps => 8,
            LearnedBaselineKind::Gcd => 12,
            LearnedBaselineKind::VaeSr => 0,
        }
    }

    /// Whether latents are entropy-coded with the hyperprior's Gaussian
    /// conditional model (scientific-data-aware) or a plain histogram.
    pub fn uses_hyperprior_coding(&self) -> bool {
        matches!(self, LearnedBaselineKind::VaeSr)
    }
}

/// A learned baseline bound to a trained VAE (and optionally a pixel-space
/// diffusion model used purely as the decode-time refinement stage).
pub struct LearnedBaseline<'a> {
    kind: LearnedBaselineKind,
    vae: &'a Vae,
    refiner: Option<&'a ConditionalDiffusion>,
}

impl<'a> LearnedBaseline<'a> {
    /// Creates a baseline around a trained VAE.  `refiner`, when given, is a
    /// diffusion model operating on single-channel data-space frames; it is
    /// only exercised by the CDC/GCD variants.
    pub fn new(
        kind: LearnedBaselineKind,
        vae: &'a Vae,
        refiner: Option<&'a ConditionalDiffusion>,
    ) -> Self {
        LearnedBaseline { kind, vae, refiner }
    }

    /// The baseline kind.
    pub fn kind(&self) -> LearnedBaselineKind {
        self.kind
    }

    /// Compresses a block `[N, H, W]`, storing a latent for every frame.
    pub fn compress(&self, block: &Tensor) -> Vec<u8> {
        assert_eq!(block.rank(), 3, "block must be [N, H, W]");
        if self.kind.uses_hyperprior_coding() {
            // Full hyperprior bitstream (identical machinery to the keyframe
            // path of the proposed method, but applied to every frame).
            FrameCodec::new(self.vae).compress(block)
        } else {
            // Histogram-coded latents: per-frame normalisation metadata plus
            // a flat factorized model over all latent symbols.
            let codec = FrameCodec::new(self.vae);
            let (normalized, norms) = codec.normalize(block);
            let y = self.vae.quantize_latent(&normalized);
            let symbols: Vec<i32> = y.quantized_symbols();
            let model = HistogramModel::fit(&symbols);
            let mut out = Vec::new();
            write_dims(&mut out, block.dims());
            write_dims(&mut out, y.dims());
            for norm in &norms {
                out.extend_from_slice(&norm.mean.to_le_bytes());
                out.extend_from_slice(&norm.range.to_le_bytes());
            }
            let model_bytes = model.to_bytes();
            out.extend_from_slice(&(model_bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&model_bytes);
            let mut enc = RangeEncoder::new();
            model.encode(&mut enc, &symbols);
            let stream = enc.finish();
            out.extend_from_slice(&(stream.len() as u32).to_le_bytes());
            out.extend_from_slice(&stream);
            out
        }
    }

    /// Decompresses a block produced by [`LearnedBaseline::compress`].
    pub fn decompress(&self, bytes: &[u8]) -> Tensor {
        let decoded = if self.kind.uses_hyperprior_coding() {
            FrameCodec::new(self.vae).decompress(bytes)
        } else {
            self.decompress_histogram(bytes)
        };
        self.refine(decoded)
    }

    fn decompress_histogram(&self, bytes: &[u8]) -> Tensor {
        let (block_dims, used) = read_dims(bytes);
        let n = block_dims[0];
        let mut off = used;
        let (y_dims, used) = read_dims(&bytes[off..]);
        off += used;
        let mut norms = Vec::with_capacity(n);
        for _ in 0..n {
            let mean = f32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let range = f32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            norms.push(gld_vae::codec::FrameNorm { mean, range });
            off += 8;
        }
        let model_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        let (model, used) = HistogramModel::from_bytes(&bytes[off..off + model_len]);
        assert_eq!(used, model_len);
        off += model_len;
        let stream_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        let mut dec = RangeDecoder::new(&bytes[off..off + stream_len]);
        let count: usize = y_dims.iter().product();
        let symbols = model.decode(&mut dec, count);
        let y = Tensor::from_vec(symbols.iter().map(|&s| s as f32).collect(), &y_dims);
        let frames = self.vae.decode_latent(&y);
        FrameCodec::new(self.vae).denormalize(&frames, &norms)
    }

    /// Data-space diffusion refinement (the expensive part of CDC/GCD
    /// decoding).  The refinement conditions on every frame being "clean"
    /// except that it re-generates them one step at a time from a lightly
    /// noised copy; with an untrained or absent refiner this is a no-op on
    /// values, but the compute cost (pixel-space UNet evaluations) is always
    /// paid, which is what Table 2 measures.
    fn refine(&self, decoded: Tensor) -> Tensor {
        let steps = self.kind.refinement_steps();
        let Some(refiner) = self.refiner else {
            return decoded;
        };
        if steps == 0 {
            return decoded;
        }
        let (n, h, w) = (decoded.dim(0), decoded.dim(1), decoded.dim(2));
        // Normalise to the refiner's working range, run the denoiser, and
        // map back.  Conditioning keeps the first frame anchored, analogous
        // to CDC's conditioning on the coded representation.
        let (norm, lo, hi) = decoded.normalize_minmax();
        let frames = norm.reshape(&[n, 1, h, w]);
        let partition = FramePartition::from_conditioning(n, &[0]);
        let mut rng = TensorRng::new(0xC0DEC);
        let refined = refiner.generate(&frames, &partition, steps, &mut rng);
        // The refinement is residual: average it with the VAE output so an
        // imperfect refiner degrades gracefully rather than destroying the
        // reconstruction (CDC blends the conditioned estimate the same way).
        let blended = frames.scale(0.8).add(&refined.scale(0.2));
        blended.reshape(&[n, h, w]).denormalize_minmax(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gld_datasets::{generate, DatasetKind, FieldSpec};
    use gld_diffusion::DiffusionConfig;
    use gld_tensor::stats::nrmse;
    use gld_vae::VaeConfig;

    fn setup() -> (Vae, Tensor) {
        let vae = Vae::new(VaeConfig::tiny());
        let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 21);
        let block = ds.variables[0].frames.slice_axis(0, 0, 8);
        (vae, block)
    }

    #[test]
    fn all_baselines_roundtrip_with_correct_shapes() {
        let (vae, block) = setup();
        for kind in LearnedBaselineKind::all() {
            let baseline = LearnedBaseline::new(kind, &vae, None);
            let bytes = baseline.compress(&block);
            let recon = baseline.decompress(&bytes);
            assert_eq!(recon.dims(), block.dims(), "{kind:?}");
            assert!(recon.data().iter().all(|v| v.is_finite()), "{kind:?}");
            assert!(bytes.len() < block.numel() * 4, "{kind:?} did not compress");
        }
    }

    #[test]
    fn per_frame_storage_grows_with_frame_count() {
        let (vae, block) = setup();
        let baseline = LearnedBaseline::new(LearnedBaselineKind::VaeSr, &vae, None);
        let small = baseline.compress(&block.slice_axis(0, 0, 2)).len();
        let large = baseline.compress(&block).len();
        assert!(
            large > small * 2,
            "per-frame storage should scale with N: {small} vs {large}"
        );
    }

    #[test]
    fn refinement_changes_values_but_not_scale() {
        let (vae, block) = setup();
        let refiner = ConditionalDiffusion::new(DiffusionConfig {
            latent_channels: 1,
            ..DiffusionConfig::tiny()
        });
        let with = LearnedBaseline::new(LearnedBaselineKind::CdcEps, &vae, Some(&refiner));
        let without = LearnedBaseline::new(LearnedBaselineKind::CdcEps, &vae, None);
        let bytes = with.compress(&block);
        let refined = with.decompress(&bytes);
        let plain = without.decompress(&bytes);
        assert_ne!(refined, plain, "refinement had no effect");
        // The blend keeps the reconstruction in the right ballpark even with
        // an untrained refiner.
        assert!(nrmse(&plain, &refined) < 0.5);
    }

    #[test]
    fn kind_metadata_is_consistent() {
        assert_eq!(LearnedBaselineKind::all().len(), 4);
        assert!(
            LearnedBaselineKind::Gcd.refinement_steps()
                > LearnedBaselineKind::CdcX.refinement_steps()
        );
        assert!(LearnedBaselineKind::VaeSr.uses_hyperprior_coding());
        assert!(!LearnedBaselineKind::CdcX.uses_hyperprior_coding());
        assert_eq!(LearnedBaselineKind::CdcEps.name(), "CDC-eps");
    }
}
