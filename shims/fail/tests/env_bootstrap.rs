//! The one-time `GLD_FAILPOINTS` bootstrap, exercised in a pristine
//! process (integration tests get their own binary, and nothing here
//! touches the registry before the env var is in place).
//!
//! Regression coverage: the bootstrap once routed through `configure`,
//! which re-entered the bootstrap's own `Once` — a self-deadlock that
//! wedged the first instrumented thread of any process started with the
//! env var set.  `active()` returning at all is the heart of this test.

use std::time::Duration;

#[test]
fn env_var_arms_the_registry_on_first_use() {
    // Edition 2021: `set_var` is safe.  This runs before any registry
    // call in this process, so first `active()` takes the env path.
    std::env::set_var("GLD_FAILPOINTS", "env.point=delay:5ms;env.other=err_io:50%");

    assert!(fail::active(), "the env spec must arm the registry");
    assert_eq!(
        fail::check("env.point"),
        Some(fail::Action::Delay(Duration::from_millis(5)))
    );
    assert_eq!(fail::check("env.unarmed"), None);

    // Programmatic configuration still replaces the env spec outright.
    fail::configure("env.point=off").expect("reconfigure");
    assert!(!fail::active(), "the override disarmed everything");
    assert_eq!(fail::check("env.point"), None);
}
