//! # gld-entropy
//!
//! Entropy coding for the GLD compression stack.
//!
//! Four pieces live here:
//!
//! * [`range`] — the production **byte-wise range coder**: byte-at-a-time
//!   renormalisation with carry propagation, division-free bypass bits.
//!   This is the lossless back end every compressor in the workspace uses
//!   on its hot path.
//! * [`arith`] — the original bit-renormalising arithmetic coder, kept as
//!   the reference back end for the equivalence suite and the hot-path
//!   benchmark's pre-optimisation baseline.
//! * [`backend`] — the [`EntropyEncoder`]/[`EntropyDecoder`] traits both
//!   coders implement, plus [`EntropyBackend`] pairs for parameterising
//!   whole compression paths.
//! * [`adaptive`] — header-free **adaptive** binary/bit-tree models whose
//!   probabilities converge on the data as it streams (encoder and decoder
//!   replay identical updates); the `gld-lz` general lossless stage codes
//!   its LZ sequences with these.
//! * [`gaussian`] — numerically careful normal CDF / inverse utilities.
//! * [`models`] — the symbol models on top of the coder: the
//!   **Gaussian conditional** model used for VAE latents `y` (whose per
//!   element mean/scale come from the hyperprior, paper Eq. 1–2), the
//!   **histogram factorized prior** used for hyper-latents `z` (with a
//!   precomputed slot→bin table for the decode-side symbol search), and a
//!   raw **bypass** coder for escape values.
//!
//! The crate is deliberately framework-free: it works on plain `i32` symbol
//! slices so that both the learned compressors (`gld-vae`) and the rule-based
//! baselines (`gld-baselines`) can reuse it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod arith;
pub mod backend;
pub mod gaussian;
pub mod models;
pub mod range;

pub use adaptive::{AdaptiveBitModel, AdaptiveTreeModel};
pub use arith::{ArithmeticDecoder, ArithmeticEncoder};
pub use backend::{
    ArithmeticBackend, EntropyBackend, EntropyDecoder, EntropyEncoder, RangeBackend,
};
pub use models::{
    BitCounter, BypassCoder, GaussianConditionalModel, HistogramModel, ModelDecodeError,
};
pub use range::{RangeDecoder, RangeEncoder};
