//! # gld-kernels
//!
//! Runtime-dispatched CPU kernels for the per-block inner loops of the GLD
//! compression stack: the SZ Lorenzo predict/quantise walk, the ZFP-like
//! DCT tile transform and coefficient quantiser, the histogram model's
//! decode-side bin search, and the `gld-lz` match finder's prefix scan and
//! hash precomputation.
//!
//! The design follows the device/backend split used by tensor frameworks:
//! consumers call through the [`KernelBackend`] trait (or the convenience
//! [`kernels`] accessor) and never see dispatch; the backend is selected
//! **once** per process from CPU feature detection, overridable with the
//! `GLD_KERNEL_BACKEND` environment variable (`auto`, `simd`, `scalar`,
//! `sse2`, `avx2`) or programmatically with [`force`] (used by the bench
//! `--backend` flags and the equivalence suite).
//!
//! ## Bit-identity contract
//!
//! Every backend produces **bit-identical** results to the scalar reference
//! for every kernel — same reconstructed floats, same quantisation codes,
//! same bins, same match lengths.  This is what lets the compressors keep
//! their byte-for-byte equivalence against `gld_baselines::reference`
//! regardless of the host CPU, and what makes switching backends mid-process
//! safe (a cached backend handle can never change observable output).  The
//! SIMD paths therefore avoid every value-changing shortcut:
//!
//! * no FMA contraction (separate multiply and add, exactly like scalar);
//! * `f32::round` (half away from zero) is emulated exactly on top of
//!   round-to-nearest-even plus an exact tie fix-up (the difference
//!   `x - rint(x)` is exact by Sterbenz's lemma, so ties are detected
//!   without double rounding);
//! * accumulation order in the DCT matches the scalar loop term by term,
//!   including the leading `0.0 +` step (signed-zero behaviour);
//! * comparisons use ordered (quiet) predicates so NaN propagates to the
//!   same escape decisions as scalar.
//!
//! The crate-level tests cross-check every kernel against the scalar
//! implementation on every backend the host supports; the workspace
//! equivalence suite (`tests/hotpath_equivalence.rs`) proves the same
//! property end-to-end through the compressors.
//!
//! This is the only crate in the workspace allowed to use `unsafe` (for
//! `std::arch` intrinsics); everything it exports is a safe API.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};

mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use scalar::sz_quantize_cell;

/// Largest representable SZ quantisation code; residuals beyond this are
/// stored as raw floats.  Mirrored by `gld-baselines::szlike`.
pub const SZ_MAX_CODE: i32 = 4096;
/// Sentinel SZ code marking an unpredictable (verbatim) value.
pub const SZ_UNPREDICTABLE: i32 = SZ_MAX_CODE + 1;
/// Largest histogram-coded ZFP quantisation code; larger magnitudes escape
/// to raw 32-bit storage.  Mirrored by `gld-baselines::zfplike`.
pub const ZFP_MAX_CODE: i32 = 8191;
/// Sentinel marking an escaped ZFP coefficient.
pub const ZFP_ESCAPE: i32 = ZFP_MAX_CODE + 1;

/// One plane of the SZ Lorenzo walk, handed to
/// [`KernelBackend::sz_quantize_plane`].
///
/// All slices have length `d1 * d2`.  On entry `recon`'s row `j == 0` and
/// column `k == 0` hold the already-reconstructed boundary cells and `prev`
/// holds the fully reconstructed previous plane; the kernel fills the
/// interior (`j >= 1 && k >= 1`) entries of `recon` and `codes` and leaves
/// everything else untouched.
pub struct SzPlane<'a> {
    /// Source values for this plane.
    pub src: &'a [f32],
    /// Reconstructed previous plane (`i - 1`).
    pub prev: &'a [f32],
    /// Reconstruction of this plane; boundary row/column prefilled.
    pub recon: &'a mut [f32],
    /// Quantisation codes for this plane; interior entries are written.
    pub codes: &'a mut [i32],
    /// Number of rows in the plane.
    pub d1: usize,
    /// Number of columns in the plane.
    pub d2: usize,
    /// Quantisation bin width (`2 * abs_error`).
    pub two_eb: f32,
    /// Point-wise absolute error bound.
    pub abs_error: f32,
}

/// The swappable kernel set.  Default methods are the scalar reference;
/// SIMD backends override whichever loops they accelerate (anything left
/// unimplemented silently keeps the — bit-identical — scalar path, which is
/// how the SSE2 backend handles the gather-hungry Lorenzo walk).
pub trait KernelBackend: Send + Sync {
    /// Which [`Backend`] this kernel set implements.
    fn backend(&self) -> Backend;

    /// Quantises the interior of one plane of the SZ Lorenzo walk (see
    /// [`SzPlane`] for the contract).
    fn sz_quantize_plane(&self, plane: &mut SzPlane<'_>) {
        scalar::sz_plane(plane);
    }

    /// Applies the separable 4-point transform to a `4x4x4` tile: axes
    /// `0,1,2` with `basis` rows forward, axes `2,1,0` with the transpose
    /// when `inverse`.
    fn zfp_transform(&self, block: &mut [f32; 64], basis: &[[f32; 4]; 4], inverse: bool) {
        scalar::zfp_transform(block, basis, inverse);
    }

    /// Quantises the 64 coefficients of one transformed tile with bin width
    /// `step`, writing one code per coefficient and appending the clamped
    /// raw value of every escaped coefficient to `escapes` in tile order.
    fn zfp_quantize(
        &self,
        block: &[f32; 64],
        step: f32,
        codes: &mut [i32; 64],
        escapes: &mut Vec<i32>,
    ) {
        scalar::zfp_quantize(block, step, codes, escapes);
    }

    /// Resolves the histogram decode bin by scanning forward from `bin`
    /// until `cdf[bin + 1] > target` (the caller guarantees a terminator:
    /// `target < cdf.last()`).
    fn find_bin(&self, cdf: &[u32], bin: usize, target: u32) -> usize {
        scalar::find_bin(cdf, bin, target)
    }

    /// Length of the longest common prefix of `a` and `b` — the LZ match
    /// extension loop.
    fn match_len(&self, a: &[u8], b: &[u8]) -> usize {
        scalar::match_len(a, b)
    }

    /// Computes the LZ 4-byte rolling hash (`u32_le * 0x9E37_79B1 >>
    /// (32 - bits)`) for positions `0..out.len()` of `input`
    /// (`out.len() <= input.len() - 3`).
    fn hash4_batch(&self, input: &[u8], bits: u32, out: &mut [u32]) {
        scalar::hash4_batch(input, bits, out);
    }
}

/// Backend selector.  `Sse2`/`Avx2` exist on every platform so selection
/// code is portable, but are only *available* on x86-64 (and `Avx2` only
/// when the CPU reports the feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar reference kernels (always available).
    Scalar,
    /// x86-64 baseline vector kernels (SSE2 is part of the x86-64 ABI).
    Sse2,
    /// AVX2 kernels, runtime-detected.
    Avx2,
}

impl Backend {
    /// All selectable backends, strongest last.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Sse2, Backend::Avx2];

    /// Stable lowercase name (`scalar`, `sse2`, `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Whether this backend can run on the current host.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Parses a backend *selection*: a concrete backend name, or
    /// `auto`/`simd` (both meaning [`best_available`]).  Returns `None` for
    /// anything else.
    pub fn parse_selection(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "auto" | "simd" => Some(best_available()),
            "scalar" => Some(Backend::Scalar),
            "sse2" => Some(Backend::Sse2),
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }

    fn to_code(self) -> u8 {
        match self {
            Backend::Scalar => 1,
            Backend::Sse2 => 2,
            Backend::Avx2 => 3,
        }
    }

    fn from_code(code: u8) -> Option<Backend> {
        match code {
            1 => Some(Backend::Scalar),
            2 => Some(Backend::Sse2),
            3 => Some(Backend::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned by [`force`] for a backend the host cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendUnavailable(pub Backend);

impl std::fmt::Display for BackendUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kernel backend {} is not available on this CPU", self.0)
    }
}

impl std::error::Error for BackendUnavailable {}

/// Every backend the current host can run, weakest first.
pub fn available_backends() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// The strongest backend the current host can run.
pub fn best_available() -> Backend {
    *available_backends()
        .last()
        .expect("scalar is always available")
}

/// Detected CPU SIMD features as a space-separated list (recorded in bench
/// artifacts so throughput numbers are attributable to the hardware).
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats = vec!["sse2"]; // part of the x86-64 ABI
        let probes: [(&str, bool); 7] = [
            ("ssse3", std::arch::is_x86_feature_detected!("ssse3")),
            ("sse4.1", std::arch::is_x86_feature_detected!("sse4.1")),
            ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
        ];
        feats.extend(probes.iter().filter(|(_, hit)| *hit).map(|(name, _)| *name));
        feats.join(" ")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "none".to_string()
    }
}

/// `0` = not yet resolved; otherwise a `Backend::to_code`.
static RESOLVED: AtomicU8 = AtomicU8::new(0);
/// `0` = no override; otherwise a `Backend::to_code` set via [`force`].
static FORCED: AtomicU8 = AtomicU8::new(0);

fn resolve_from_env() -> Backend {
    match std::env::var("GLD_KERNEL_BACKEND") {
        Ok(v) => {
            let sel = Backend::parse_selection(&v).unwrap_or_else(|| {
                panic!(
                    "GLD_KERNEL_BACKEND={v:?} is not a valid backend \
                     (expected auto, simd, scalar, sse2 or avx2)"
                )
            });
            assert!(
                sel.is_available(),
                "GLD_KERNEL_BACKEND={v:?} requests a backend this CPU cannot run"
            );
            sel
        }
        Err(_) => best_available(),
    }
}

/// The backend in effect: a [`force`]d override if set, else the selection
/// resolved once from `GLD_KERNEL_BACKEND` / CPU detection.
pub fn active() -> Backend {
    if let Some(b) = Backend::from_code(FORCED.load(Ordering::Relaxed)) {
        return b;
    }
    if let Some(b) = Backend::from_code(RESOLVED.load(Ordering::Relaxed)) {
        return b;
    }
    let b = resolve_from_env();
    RESOLVED.store(b.to_code(), Ordering::Relaxed);
    b
}

/// Forces `backend` process-wide until [`clear_force`].  Because every
/// backend is bit-identical, flipping the backend mid-run can never change
/// the bytes other threads produce — the override exists so benches and
/// tests can attribute *time*, not output, to a backend.
pub fn force(backend: Backend) -> Result<(), BackendUnavailable> {
    if !backend.is_available() {
        return Err(BackendUnavailable(backend));
    }
    FORCED.store(backend.to_code(), Ordering::Relaxed);
    Ok(())
}

/// Removes a [`force`] override, returning to env/auto selection.
pub fn clear_force() {
    FORCED.store(0, Ordering::Relaxed);
}

/// The kernel set for the [`active`] backend.
pub fn kernels() -> &'static dyn KernelBackend {
    kernels_for(active())
}

/// The kernel set for a specific backend (callers must check
/// [`Backend::is_available`]; an unavailable backend falls back to scalar
/// rather than faulting).
pub fn kernels_for(backend: Backend) -> &'static dyn KernelBackend {
    static SCALAR: ScalarKernels = ScalarKernels;
    if !backend.is_available() {
        return &SCALAR;
    }
    match backend {
        Backend::Scalar => &SCALAR,
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => {
            static SSE2: x86::Sse2Kernels = x86::Sse2Kernels;
            &SSE2
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            static AVX2: x86::Avx2Kernels = x86::Avx2Kernels;
            &AVX2
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => &SCALAR,
    }
}

/// The portable scalar reference kernels.
pub struct ScalarKernels;

impl KernelBackend for ScalarKernels {
    fn backend(&self) -> Backend {
        Backend::Scalar
    }
}

#[cfg(test)]
mod tests;
