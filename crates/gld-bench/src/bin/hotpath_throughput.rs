//! Hot-path throughput benchmark: per-block compress/decompress speed of
//! the rule-based codecs, optimized path vs the frozen pre-optimisation
//! reference, single- and multi-thread.
//!
//! Sections:
//!
//! 1. **single-thread** — `compress_block_scratch` / `decompress_block`
//!    over a `[8, 64, 64]` E3SM-like window, against
//!    `gld_baselines::reference` driven by the pre-optimisation arithmetic
//!    back end (the exact pre-PR coding path), reporting blocks/s, MB/s and
//!    p50/p99 latency plus the speedup;
//! 2. **multi-thread** — `compress_variable_streaming` over a long variable
//!    on the shared pool (the arena-reusing executor path).
//!
//! Results land in `results/hotpath.csv` and `BENCH_hotpath.json` (repo
//! root).  Flags:
//!
//! * `--quick` — short measurement windows (CI mode);
//! * `--check <baseline.json>` — exit non-zero if any optimized compress
//!   throughput regresses more than 20% against the committed baseline's
//!   speedup-vs-reference ratio (speedups are machine-relative, so the gate
//!   is stable across runner hardware).

use gld_baselines::{reference, ErrorBoundedCompressor, SzCompressor, ZfpLikeCompressor};
use gld_bench::{write_result, write_root_result};
use gld_core::{Codec, CodecScratch, StreamConfig};
use gld_datasets::{generate, DatasetKind, FieldSpec, Variable};
use gld_entropy::ArithmeticBackend;
use gld_tensor::Tensor;
use std::time::Instant;

/// How much a speedup ratio may shrink vs the committed baseline before
/// `--check` fails the run.
const REGRESSION_TOLERANCE: f64 = 0.8;

struct Sample {
    blocks_per_s: f64,
    mb_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    assert!(!sorted_ms.is_empty());
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Runs `op` repeatedly for ~`window_s` seconds and reports throughput and
/// latency percentiles.
fn measure(window_s: f64, bytes_per_block: usize, mut op: impl FnMut()) -> Sample {
    // Warm up: caches, lazy statics, the shared pool.
    op();
    let start = Instant::now();
    let mut lat_ms = Vec::new();
    while start.elapsed().as_secs_f64() < window_s {
        let t0 = Instant::now();
        op();
        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let n = lat_ms.len() as f64;
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Sample {
        blocks_per_s: n / elapsed,
        mb_per_s: n * bytes_per_block as f64 / 1e6 / elapsed,
        p50_ms: percentile(&lat_ms, 50.0),
        p99_ms: percentile(&lat_ms, 99.0),
    }
}

struct Pair {
    optimized: Sample,
    reference: Sample,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.optimized.blocks_per_s / self.reference.blocks_per_s
    }
}

fn bench_block_pair(
    window_s: f64,
    block: &Tensor,
    optimized_compress: impl FnMut(),
    reference_compress: impl FnMut(),
) -> Pair {
    let bytes = block.numel() * std::mem::size_of::<f32>();
    let optimized = measure(window_s, bytes, optimized_compress);
    let reference = measure(window_s, bytes, reference_compress);
    Pair {
        optimized,
        reference,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());
    let window_s = if quick { 0.35 } else { 2.0 };

    // The workload: one streaming-executor window of an E3SM-like field —
    // the same shape the service compresses per block.
    let spec = FieldSpec::new(1, 8, 64, 64);
    let ds = generate(DatasetKind::E3sm, &spec, 16);
    let frames = &ds.variables[0].frames;
    let range = frames.max() - frames.min();
    let eb = 1e-3 * range;
    let block_bytes = frames.numel() * std::mem::size_of::<f32>();

    let sz = SzCompressor::new();
    let zfp = ZfpLikeCompressor::new();

    println!(
        "hotpath_throughput: block [8, 64, 64] ({:.2} MB), eb {eb:.3e}, window {window_s}s, RAYON_NUM_THREADS={}",
        block_bytes as f64 / 1e6,
        std::env::var("RAYON_NUM_THREADS").unwrap_or_else(|_| "default".into()),
    );

    // --- single-thread compress ---------------------------------------
    // Re-runnable so the regression gate can re-measure with a longer
    // window before concluding a speedup really regressed.
    let run_sz_compress = |w: f64| {
        let mut scratch = CodecScratch::new();
        bench_block_pair(
            w,
            frames,
            || {
                std::hint::black_box(sz.compress_block_scratch(frames, None, 0, &mut scratch));
            },
            || {
                std::hint::black_box(reference::sz_compress::<ArithmeticBackend>(frames, eb));
            },
        )
    };
    let run_zfp_compress = |w: f64| {
        let mut scratch = CodecScratch::new();
        bench_block_pair(
            w,
            frames,
            || {
                std::hint::black_box(zfp.compress_block_scratch(frames, None, 0, &mut scratch));
            },
            || {
                std::hint::black_box(reference::zfp_compress::<ArithmeticBackend>(frames, eb));
            },
        )
    };
    let sz_compress = run_sz_compress(window_s);
    let zfp_compress = run_zfp_compress(window_s);

    // --- single-thread decompress -------------------------------------
    let sz_frame = sz.compress(frames, eb);
    let sz_ref_frame = reference::sz_compress::<ArithmeticBackend>(frames, eb);
    let sz_decompress = bench_block_pair(
        window_s,
        frames,
        || {
            std::hint::black_box(ErrorBoundedCompressor::decompress(&sz, &sz_frame));
        },
        || {
            std::hint::black_box(reference::sz_decompress::<ArithmeticBackend>(&sz_ref_frame));
        },
    );
    let zfp_frame = zfp.compress(frames, eb);
    let zfp_ref_frame = reference::zfp_compress::<ArithmeticBackend>(frames, eb);
    let zfp_decompress = bench_block_pair(
        window_s,
        frames,
        || {
            std::hint::black_box(ErrorBoundedCompressor::decompress(&zfp, &zfp_frame));
        },
        || {
            std::hint::black_box(reference::zfp_decompress::<ArithmeticBackend>(
                &zfp_ref_frame,
            ));
        },
    );

    // --- multi-thread streaming executor ------------------------------
    let long = generate(DatasetKind::E3sm, &FieldSpec::new(1, 48, 64, 64), 17);
    let variable: &Variable = &long.variables[0];
    let var_bytes = variable.frames.numel() * std::mem::size_of::<f32>();
    let mt_blocks = variable.timesteps() / 8;
    let mt = measure(window_s, var_bytes, || {
        std::hint::black_box(sz.compress_variable_streaming(
            variable,
            8,
            None,
            StreamConfig::default(),
        ));
    });

    // --- report ---------------------------------------------------------
    let mut csv = String::from(
        "section,codec,path,blocks_per_s,mb_per_s,p50_ms,p99_ms,speedup_vs_reference\n",
    );
    let mut row = |section: &str, codec: &str, path: &str, s: &Sample, speedup: f64| {
        csv.push_str(&format!(
            "{section},{codec},{path},{:.2},{:.2},{:.4},{:.4},{:.3}\n",
            s.blocks_per_s, s.mb_per_s, s.p50_ms, s.p99_ms, speedup
        ));
    };
    for (codec, pair, section) in [
        ("sz", &sz_compress, "compress"),
        ("zfp", &zfp_compress, "compress"),
        ("sz", &sz_decompress, "decompress"),
        ("zfp", &zfp_decompress, "decompress"),
    ] {
        row(section, codec, "optimized", &pair.optimized, pair.speedup());
        row(section, codec, "reference", &pair.reference, 1.0);
        println!(
            "{section:>10} {codec:>4}: optimized {:8.1} blk/s ({:6.1} MB/s, p50 {:.3} ms) vs reference {:8.1} blk/s -> {:.2}x",
            pair.optimized.blocks_per_s,
            pair.optimized.mb_per_s,
            pair.optimized.p50_ms,
            pair.reference.blocks_per_s,
            pair.speedup()
        );
    }
    row("compress-variable", "sz", "streaming-pool", &mt, 0.0);
    println!(
        "  variable  sz: streaming executor {:6.1} vars/s ({:6.1} MB/s, {} blocks/var)",
        mt.blocks_per_s, mt.mb_per_s, mt_blocks
    );
    write_result("hotpath.csv", &csv);

    let json = format!(
        concat!(
            "{{\n",
            "  \"block_dims\": [8, 64, 64],\n",
            "  \"quick\": {quick},\n",
            "  \"single_thread\": {{\n",
            "    \"sz\": {{\"compress_blocks_per_s\": {sc:.2}, \"compress_speedup\": {scs:.3},",
            " \"decompress_blocks_per_s\": {sd:.2}, \"decompress_speedup\": {sds:.3}}},\n",
            "    \"zfp\": {{\"compress_blocks_per_s\": {zc:.2}, \"compress_speedup\": {zcs:.3},",
            " \"decompress_blocks_per_s\": {zd:.2}, \"decompress_speedup\": {zds:.3}}}\n",
            "  }},\n",
            "  \"streaming_pool\": {{\"sz_vars_per_s\": {mv:.2}, \"sz_mb_per_s\": {mm:.2}}}\n",
            "}}\n"
        ),
        quick = quick,
        sc = sz_compress.optimized.blocks_per_s,
        scs = sz_compress.speedup(),
        sd = sz_decompress.optimized.blocks_per_s,
        sds = sz_decompress.speedup(),
        zc = zfp_compress.optimized.blocks_per_s,
        zcs = zfp_compress.speedup(),
        zd = zfp_decompress.optimized.blocks_per_s,
        zds = zfp_decompress.speedup(),
        mv = mt.blocks_per_s,
        mm = mt.mb_per_s,
    );
    write_root_result("BENCH_hotpath.json", &json);

    // --- regression gate -------------------------------------------------
    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        type Rerun<'a> = &'a dyn Fn(f64) -> Pair;
        let mut checks: [(&str, f64, Rerun); 2] = [
            (
                "sz_compress_speedup",
                sz_compress.speedup(),
                &run_sz_compress,
            ),
            (
                "zfp_compress_speedup",
                zfp_compress.speedup(),
                &run_zfp_compress,
            ),
        ];
        let mut failures = Vec::new();
        for (key, measured, rerun) in checks.iter_mut() {
            let expected = json_number(&baseline, key)
                .unwrap_or_else(|| panic!("baseline {path} missing {key}"));
            let floor = expected * REGRESSION_TOLERANCE;
            let mut value = *measured;
            if value < floor {
                // A quick window on a noisy shared runner can dip a ratio
                // spuriously; re-measure once with a longer window before
                // declaring a regression.
                let retry = rerun(window_s.max(1.5));
                println!(
                    "check {key}: quick measurement {value:.3} below floor, re-measured {:.3}",
                    retry.speedup()
                );
                value = value.max(retry.speedup());
            }
            println!("check {key}: measured {value:.3}, baseline {expected:.3}, floor {floor:.3}");
            if value < floor {
                failures.push(format!(
                    "{key} regressed: {value:.3} < {floor:.3} (baseline {expected:.3} - 20%)"
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!(
                "hotpath throughput regression:\n  {}",
                failures.join("\n  ")
            );
            std::process::exit(1);
        }
        println!("regression gate passed");
    }
}

/// Minimal `"key": number` extractor — the baseline file is a flat JSON
/// object we write ourselves, so a full parser would be overkill.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
