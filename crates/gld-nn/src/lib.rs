//! # gld-nn
//!
//! A small reverse-mode automatic-differentiation engine and neural-network
//! layer zoo built on top of [`gld_tensor`].  It provides exactly the pieces
//! needed to train the paper's models on a CPU:
//!
//! * a tape-based autograd ([`tape::Tape`], [`tape::Var`]) with broadcast-aware
//!   element-wise ops, batched matmul, convolution, group normalisation,
//!   softmax, pooling and upsampling;
//! * trainable [`param::Parameter`]s and composable layers
//!   ([`layers::Conv2d`], [`layers::Linear`], [`layers::GroupNorm`],
//!   [`layers::SelfAttention`], [`layers::TimeEmbedding`], …);
//! * optimizers ([`optim::Adam`], [`optim::Sgd`]) and learning-rate
//!   schedules ([`optim::LrSchedule`]).
//!
//! The engine favours clarity and testability over raw speed: every op's
//! backward rule is validated against finite differences in the test suite,
//! because a silently wrong gradient is the most expensive bug a learned
//! compressor can have.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod layers;
pub mod loss;
pub mod optim;
pub mod param;
pub mod tape;

pub use layers::{Conv2d, GroupNorm, Linear, Module, SelfAttention, Sequentialish, TimeEmbedding};
pub use loss::{l1_loss, mse_loss};
pub use optim::{Adam, AdamConfig, LrSchedule, Sgd};
pub use param::{Parameter, ParameterSet};
pub use tape::{Tape, Var};

/// Prelude with the types needed by downstream model crates.
pub mod prelude {
    pub use crate::layers::*;
    pub use crate::loss::{l1_loss, mse_loss};
    pub use crate::optim::{Adam, AdamConfig, LrSchedule, Sgd};
    pub use crate::param::{Parameter, ParameterSet};
    pub use crate::tape::{Tape, Var};
}
