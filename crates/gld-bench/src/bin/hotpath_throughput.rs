//! Hot-path throughput benchmark: per-block compress/decompress speed of
//! the rule-based codecs, optimized path vs the frozen pre-optimisation
//! reference, single- and multi-thread, per kernel backend.
//!
//! Sections:
//!
//! 1. **single-thread** — `compress_block_scratch` / `decompress_block`
//!    over a `[8, 64, 64]` E3SM-like window, against
//!    `gld_baselines::reference` driven by the pre-optimisation arithmetic
//!    back end (the exact pre-PR coding path), reporting blocks/s, MB/s and
//!    p50/p99 latency plus the speedup — measured once per kernel backend
//!    (scalar, SSE2, AVX2 — whatever the host supports);
//! 2. **multi-thread** — `compress_variable_streaming` over a long variable
//!    on the shared pool (the arena-reusing executor path), on the headline
//!    backend.
//!
//! Results land in `results/hotpath.csv` and `BENCH_hotpath.json` (repo
//! root); both record the active backend and detected CPU features so
//! throughput numbers are attributable to the hardware.  Flags:
//!
//! * `--quick` — short measurement windows (CI mode);
//! * `--backend <scalar|sse2|avx2|simd|auto>` — pin the benchmark to one
//!   backend (`simd`/`auto` resolve to the best the host supports); without
//!   it every available backend is measured;
//! * `--check <baseline.json>` — exit non-zero if the **scalar** compress
//!   speedup-vs-reference ratio regresses more than 20% against the
//!   committed baseline (speedups are machine-relative, so the gate is
//!   stable across runner hardware), or if a SIMD backend is available but
//!   fails to reach [`SIMD_SZ_COMPRESS_FLOOR`]x the scalar row on SZ
//!   compress.

use gld_baselines::{reference, ErrorBoundedCompressor, SzCompressor, ZfpLikeCompressor};
use gld_bench::{write_result, write_root_result};
use gld_core::{Codec, CodecScratch, StreamConfig};
use gld_datasets::{generate, DatasetKind, FieldSpec, Variable};
use gld_entropy::ArithmeticBackend;
use gld_kernels::Backend;
use gld_tensor::Tensor;
use std::time::Instant;

/// How much a speedup ratio may shrink vs the committed baseline before
/// `--check` fails the run.
const REGRESSION_TOLERANCE: f64 = 0.8;

/// Minimum SZ single-thread compress advantage the best SIMD backend must
/// hold over the same-run scalar row for `--check` to pass on SIMD hosts.
const SIMD_SZ_COMPRESS_FLOOR: f64 = 1.5;

struct Sample {
    blocks_per_s: f64,
    mb_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    assert!(!sorted_ms.is_empty());
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Runs `op` repeatedly for ~`window_s` seconds and reports throughput and
/// latency percentiles.
fn measure(window_s: f64, bytes_per_block: usize, mut op: impl FnMut()) -> Sample {
    // Warm up: caches, lazy statics, the shared pool.
    op();
    let start = Instant::now();
    let mut lat_ms = Vec::new();
    while start.elapsed().as_secs_f64() < window_s {
        let t0 = Instant::now();
        op();
        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let n = lat_ms.len() as f64;
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Sample {
        blocks_per_s: n / elapsed,
        mb_per_s: n * bytes_per_block as f64 / 1e6 / elapsed,
        p50_ms: percentile(&lat_ms, 50.0),
        p99_ms: percentile(&lat_ms, 99.0),
    }
}

/// One single-thread section: the frozen reference measured once, the
/// optimized path measured once per kernel backend.
struct Section {
    reference: Sample,
    per_backend: Vec<(Backend, Sample)>,
}

impl Section {
    fn speedup(&self, backend: Backend) -> f64 {
        self.sample(backend).blocks_per_s / self.reference.blocks_per_s
    }

    fn sample(&self, backend: Backend) -> &Sample {
        &self
            .per_backend
            .iter()
            .find(|(b, _)| *b == backend)
            .expect("backend was measured")
            .1
    }
}

fn bench_section(
    window_s: f64,
    backends: &[Backend],
    block: &Tensor,
    mut optimized: impl FnMut(),
    mut reference_op: impl FnMut(),
) -> Section {
    let bytes = block.numel() * std::mem::size_of::<f32>();
    let per_backend = backends
        .iter()
        .map(|&b| {
            gld_kernels::force(b).expect("measured backends are available");
            (b, measure(window_s, bytes, &mut optimized))
        })
        .collect();
    let reference = measure(window_s, bytes, &mut reference_op);
    Section {
        reference,
        per_backend,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());
    let backend_arg = args
        .iter()
        .position(|a| a == "--backend")
        .map(|i| args.get(i + 1).expect("--backend needs a value").clone());
    let window_s = if quick { 0.35 } else { 2.0 };

    // Which backends to measure: all the host supports, or just the pinned
    // one.  The headline backend (JSON top-level fields, streaming section)
    // is the pinned backend or the strongest available.
    let backends: Vec<Backend> = match backend_arg.as_deref() {
        None => gld_kernels::available_backends(),
        Some(sel) => {
            let b = Backend::parse_selection(sel)
                .unwrap_or_else(|| panic!("--backend: unknown selection {sel:?}"));
            assert!(b.is_available(), "--backend {b} not available on this host");
            vec![b]
        }
    };
    let headline = *backends.last().expect("at least one backend");

    // The workload: one streaming-executor window of an E3SM-like field —
    // the same shape the service compresses per block.
    let spec = FieldSpec::new(1, 8, 64, 64);
    let ds = generate(DatasetKind::E3sm, &spec, 16);
    let frames = &ds.variables[0].frames;
    let range = frames.max() - frames.min();
    let eb = 1e-3 * range;
    let block_bytes = frames.numel() * std::mem::size_of::<f32>();

    let sz = SzCompressor::new();
    let zfp = ZfpLikeCompressor::new();

    let cpu = gld_kernels::cpu_features();
    println!(
        "hotpath_throughput: block [8, 64, 64] ({:.2} MB), eb {eb:.3e}, window {window_s}s, RAYON_NUM_THREADS={}",
        block_bytes as f64 / 1e6,
        std::env::var("RAYON_NUM_THREADS").unwrap_or_else(|_| "default".into()),
    );
    println!(
        "  backends: {} (headline {headline}), cpu: {cpu}",
        backends
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(" "),
    );

    // --- single-thread compress ---------------------------------------
    // Re-runnable per backend so the regression gate can re-measure with a
    // longer window before concluding a speedup really regressed.
    let run_sz_compress = |w: f64, bs: &[Backend]| {
        let mut scratch = CodecScratch::new();
        bench_section(
            w,
            bs,
            frames,
            || {
                std::hint::black_box(sz.compress_block_scratch(frames, None, 0, &mut scratch));
            },
            || {
                std::hint::black_box(reference::sz_compress::<ArithmeticBackend>(frames, eb));
            },
        )
    };
    let run_zfp_compress = |w: f64, bs: &[Backend]| {
        let mut scratch = CodecScratch::new();
        bench_section(
            w,
            bs,
            frames,
            || {
                std::hint::black_box(zfp.compress_block_scratch(frames, None, 0, &mut scratch));
            },
            || {
                std::hint::black_box(reference::zfp_compress::<ArithmeticBackend>(frames, eb));
            },
        )
    };
    let sz_compress = run_sz_compress(window_s, &backends);
    let zfp_compress = run_zfp_compress(window_s, &backends);

    // --- single-thread decompress -------------------------------------
    let sz_frame = sz.compress(frames, eb);
    let sz_ref_frame = reference::sz_compress::<ArithmeticBackend>(frames, eb);
    let sz_decompress = bench_section(
        window_s,
        &backends,
        frames,
        || {
            std::hint::black_box(ErrorBoundedCompressor::decompress(&sz, &sz_frame));
        },
        || {
            std::hint::black_box(reference::sz_decompress::<ArithmeticBackend>(&sz_ref_frame));
        },
    );
    let zfp_frame = zfp.compress(frames, eb);
    let zfp_ref_frame = reference::zfp_compress::<ArithmeticBackend>(frames, eb);
    let zfp_decompress = bench_section(
        window_s,
        &backends,
        frames,
        || {
            std::hint::black_box(ErrorBoundedCompressor::decompress(&zfp, &zfp_frame));
        },
        || {
            std::hint::black_box(reference::zfp_decompress::<ArithmeticBackend>(
                &zfp_ref_frame,
            ));
        },
    );

    // --- multi-thread streaming executor (headline backend) ------------
    gld_kernels::force(headline).expect("headline backend is available");
    let long = generate(DatasetKind::E3sm, &FieldSpec::new(1, 48, 64, 64), 17);
    let variable: &Variable = &long.variables[0];
    let var_bytes = variable.frames.numel() * std::mem::size_of::<f32>();
    let mt_blocks = variable.timesteps() / 8;
    let mt = measure(window_s, var_bytes, || {
        std::hint::black_box(sz.compress_variable_streaming(
            variable,
            8,
            None,
            StreamConfig::default(),
        ));
    });

    // --- report ---------------------------------------------------------
    let mut csv = String::from(
        "section,codec,backend,path,blocks_per_s,mb_per_s,p50_ms,p99_ms,speedup_vs_reference\n",
    );
    let mut row =
        |section: &str, codec: &str, backend: &str, path: &str, s: &Sample, speedup: f64| {
            csv.push_str(&format!(
                "{section},{codec},{backend},{path},{:.2},{:.2},{:.4},{:.4},{:.3}\n",
                s.blocks_per_s, s.mb_per_s, s.p50_ms, s.p99_ms, speedup
            ));
        };
    for (codec, section, name) in [
        ("sz", &sz_compress, "compress"),
        ("zfp", &zfp_compress, "compress"),
        ("sz", &sz_decompress, "decompress"),
        ("zfp", &zfp_decompress, "decompress"),
    ] {
        for &(b, ref s) in &section.per_backend {
            row(name, codec, b.name(), "optimized", s, section.speedup(b));
            println!(
                "{name:>10} {codec:>4} [{:>6}]: {:8.1} blk/s ({:6.1} MB/s, p50 {:.3} ms) vs reference {:8.1} blk/s -> {:.2}x",
                b.name(),
                s.blocks_per_s,
                s.mb_per_s,
                s.p50_ms,
                section.reference.blocks_per_s,
                section.speedup(b)
            );
        }
        row(name, codec, "-", "reference", &section.reference, 1.0);
    }
    row(
        "compress-variable",
        "sz",
        headline.name(),
        "streaming-pool",
        &mt,
        0.0,
    );
    println!(
        "  variable  sz: streaming executor {:6.1} vars/s ({:6.1} MB/s, {} blocks/var) on {headline}",
        mt.blocks_per_s, mt.mb_per_s, mt_blocks
    );
    write_result("hotpath.csv", &csv);

    let backend_json = backends
        .iter()
        .map(|&b| {
            format!(
                concat!(
                    "    \"{name}\": {{\"sz_compress_blocks_per_s\": {sc:.2}, \"sz_compress_speedup\": {scs:.3},",
                    " \"zfp_compress_blocks_per_s\": {zc:.2}, \"zfp_compress_speedup\": {zcs:.3},",
                    " \"sz_decompress_speedup\": {sds:.3}, \"zfp_decompress_speedup\": {zds:.3}}}"
                ),
                name = b.name(),
                sc = sz_compress.sample(b).blocks_per_s,
                scs = sz_compress.speedup(b),
                zc = zfp_compress.sample(b).blocks_per_s,
                zcs = zfp_compress.speedup(b),
                sds = sz_decompress.speedup(b),
                zds = zfp_decompress.speedup(b),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"block_dims\": [8, 64, 64],\n",
            "  \"quick\": {quick},\n",
            "  \"backend\": \"{backend}\",\n",
            "  \"cpu_features\": \"{cpu}\",\n",
            "  \"single_thread\": {{\n",
            "    \"sz\": {{\"compress_blocks_per_s\": {sc:.2}, \"compress_speedup\": {scs:.3},",
            " \"decompress_blocks_per_s\": {sd:.2}, \"decompress_speedup\": {sds:.3}}},\n",
            "    \"zfp\": {{\"compress_blocks_per_s\": {zc:.2}, \"compress_speedup\": {zcs:.3},",
            " \"decompress_blocks_per_s\": {zd:.2}, \"decompress_speedup\": {zds:.3}}}\n",
            "  }},\n",
            "  \"backends\": {{\n{backend_json}\n  }},\n",
            "  \"streaming_pool\": {{\"sz_vars_per_s\": {mv:.2}, \"sz_mb_per_s\": {mm:.2}}}\n",
            "}}\n"
        ),
        quick = quick,
        backend = headline.name(),
        cpu = cpu,
        sc = sz_compress.sample(headline).blocks_per_s,
        scs = sz_compress.speedup(headline),
        sd = sz_decompress.sample(headline).blocks_per_s,
        sds = sz_decompress.speedup(headline),
        zc = zfp_compress.sample(headline).blocks_per_s,
        zcs = zfp_compress.speedup(headline),
        zd = zfp_decompress.sample(headline).blocks_per_s,
        zds = zfp_decompress.speedup(headline),
        backend_json = backend_json,
        mv = mt.blocks_per_s,
        mm = mt.mb_per_s,
    );
    write_root_result("BENCH_hotpath.json", &json);

    // --- regression gate -------------------------------------------------
    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut failures = Vec::new();

        // Scalar speedups vs the committed baseline: the SIMD backends must
        // never be bought by letting the portable path rot.  When the run is
        // pinned to a non-scalar backend the scalar rows don't exist and the
        // check is skipped (CI's scalar leg pins scalar explicitly).
        if backends.contains(&Backend::Scalar) {
            type Rerun<'a> = &'a dyn Fn(f64, &[Backend]) -> Section;
            let checks: [(&str, f64, Rerun); 2] = [
                (
                    "sz_compress_speedup",
                    sz_compress.speedup(Backend::Scalar),
                    &run_sz_compress,
                ),
                (
                    "zfp_compress_speedup",
                    zfp_compress.speedup(Backend::Scalar),
                    &run_zfp_compress,
                ),
            ];
            for (key, measured, rerun) in checks {
                let expected = json_number(&baseline, key)
                    .unwrap_or_else(|| panic!("baseline {path} missing {key}"));
                let floor = expected * REGRESSION_TOLERANCE;
                let mut value = measured;
                if value < floor {
                    // A quick window on a noisy shared runner can dip a ratio
                    // spuriously; re-measure once with a longer window before
                    // declaring a regression.
                    let retry = rerun(window_s.max(1.5), &[Backend::Scalar]);
                    println!(
                        "check {key}: quick measurement {value:.3} below floor, re-measured {:.3}",
                        retry.speedup(Backend::Scalar)
                    );
                    value = value.max(retry.speedup(Backend::Scalar));
                }
                println!(
                    "check {key} [scalar]: measured {value:.3}, baseline {expected:.3}, floor {floor:.3}"
                );
                if value < floor {
                    failures.push(format!(
                        "{key} regressed: {value:.3} < {floor:.3} (baseline {expected:.3} - 20%)"
                    ));
                }
            }
        } else {
            println!("check: scalar not measured (pinned to {headline}), baseline gate skipped");
        }

        // SIMD must actually pay for itself on the flagship loop.
        let best = gld_kernels::best_available();
        if best != Backend::Scalar
            && backends.contains(&best)
            && backends.contains(&Backend::Scalar)
        {
            let ratio = sz_compress.sample(best).blocks_per_s
                / sz_compress.sample(Backend::Scalar).blocks_per_s;
            let mut value = ratio;
            if value < SIMD_SZ_COMPRESS_FLOOR {
                let retry = run_sz_compress(window_s.max(1.5), &[Backend::Scalar, best]);
                let retry_ratio =
                    retry.sample(best).blocks_per_s / retry.sample(Backend::Scalar).blocks_per_s;
                println!(
                    "check simd_sz_compress_ratio: quick measurement {value:.3} below floor, re-measured {retry_ratio:.3}"
                );
                value = value.max(retry_ratio);
            }
            println!(
                "check simd_sz_compress_ratio [{best} vs scalar]: measured {value:.3}, floor {SIMD_SZ_COMPRESS_FLOOR:.2}"
            );
            if value < SIMD_SZ_COMPRESS_FLOOR {
                failures.push(format!(
                    "{best} sz compress only {value:.3}x scalar (< {SIMD_SZ_COMPRESS_FLOOR:.2}x)"
                ));
            }
        } else {
            println!(
                "check simd_sz_compress_ratio: skipped (no SIMD backend measured alongside scalar)"
            );
        }

        if !failures.is_empty() {
            eprintln!(
                "hotpath throughput regression:\n  {}",
                failures.join("\n  ")
            );
            std::process::exit(1);
        }
        println!("regression gate passed");
    }
}

/// Minimal `"key": number` extractor — the baseline file is a flat JSON
/// object we write ourselves, so a full parser would be overkill.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
