//! # gld-diffusion
//!
//! Conditional latent diffusion for generative interpolation of spatio-
//! temporal latents (paper §3.2–§3.4):
//!
//! * [`schedule::NoiseSchedule`] — the forward-process β/ᾱ schedule (Eq. 3–4)
//!   plus respacing for few-step sampling;
//! * [`unet::SpaceTimeUnet`] — the denoising network with factorized
//!   temporal/spatial attention (§3.2, "Denoising UNet");
//! * [`model::ConditionalDiffusion`] — keyframe conditioning (§3.3): noise is
//!   added only to the frames to be generated, the clean keyframe latents are
//!   spliced in with the ⊕ operator, and the loss is restricted to the
//!   generated frames (Eq. 7 / Algorithm 1);
//! * [`train::DiffusionTrainer`] — the two-phase training loop (many-step
//!   training followed by few-step fine-tuning, §4.6).
//!
//! The module operates purely on latent blocks `[N, C, h, w]`; producing
//! those latents (and decoding the generated ones) is the job of `gld-vae`
//! and the pipeline crate `gld-core`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod model;
pub mod schedule;
pub mod train;
pub mod unet;

pub use config::DiffusionConfig;
pub use model::{ConditionalDiffusion, FramePartition};
pub use schedule::NoiseSchedule;
pub use train::{DiffusionTrainReport, DiffusionTrainer};
pub use unet::SpaceTimeUnet;
