//! The [`Tensor`] type: contiguous row-major `f32` storage plus the core
//! arithmetic (broadcast element-wise ops, batched matmul, reshaping,
//! slicing and concatenation).

use crate::shape::{broadcast_shapes, Shape};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single data container used by every crate in the GLD
/// workspace: scientific field blocks, network activations, latent codes and
/// residuals are all `Tensor`s.  The representation is deliberately simple —
/// a shape and a flat `Vec<f32>` — which keeps the autograd tape in `gld-nn`
/// easy to reason about.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor { shape, data }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a 1-D tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    /// Creates a 1-D tensor of `n` points linearly spaced between `start` and
    /// `end` inclusive.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n >= 2, "linspace requires at least two points");
        let step = (end - start) / (n as f32 - 1.0);
        Tensor::from_vec((0..n).map(|i| start + step * i as f32).collect(), &[n])
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Extent of dimension `axis`.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the value at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() requires a one-element tensor, got shape {}",
            self.shape
        );
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let new_shape = Shape::new(dims);
        assert_eq!(
            new_shape.numel(),
            self.numel(),
            "cannot reshape {} ({} elements) into {} ({} elements)",
            self.shape,
            self.numel(),
            new_shape,
            new_shape.numel()
        );
        Tensor {
            shape: new_shape,
            data: self.data.clone(),
        }
    }

    /// Reorders dimensions according to `perm` (a permutation of `0..rank`).
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let old_dims = self.dims();
        let new_dims: Vec<usize> = perm.iter().map(|&p| old_dims[p]).collect();
        let old_strides = self.shape.strides();
        let new_shape = Shape::new(&new_dims);
        let mut out = vec![0.0f32; self.numel()];
        let new_strides = new_shape.strides();
        // For each output element compute the source offset.
        out.par_iter_mut().enumerate().for_each(|(flat, v)| {
            let mut rem = flat;
            let mut src = 0usize;
            for axis in 0..new_dims.len() {
                let coord = rem / new_strides[axis];
                rem %= new_strides[axis];
                src += coord * old_strides[perm[axis]];
            }
            *v = self.data[src];
        });
        Tensor {
            shape: new_shape,
            data: out,
        }
    }

    /// Transposes a rank-2 tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 requires a rank-2 tensor");
        self.permute(&[1, 0])
    }

    /// Inserts a size-1 dimension at `axis`.
    pub fn unsqueeze(&self, axis: usize) -> Tensor {
        let mut dims = self.dims().to_vec();
        assert!(axis <= dims.len(), "unsqueeze axis out of range");
        dims.insert(axis, 1);
        self.reshape(&dims)
    }

    /// Removes a size-1 dimension at `axis`.
    pub fn squeeze(&self, axis: usize) -> Tensor {
        let mut dims = self.dims().to_vec();
        assert!(
            axis < dims.len() && dims[axis] == 1,
            "squeeze axis must have extent 1"
        );
        dims.remove(axis);
        self.reshape(&dims)
    }

    /// Concatenates tensors along `axis`.  All other dimensions must match.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let rank = tensors[0].rank();
        assert!(
            axis < rank,
            "concat axis {axis} out of range for rank {rank}"
        );
        for t in tensors {
            assert_eq!(t.rank(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != axis {
                    assert_eq!(t.dim(d), tensors[0].dim(d), "concat dimension {d} mismatch");
                }
            }
        }
        let mut out_dims = tensors[0].dims().to_vec();
        out_dims[axis] = tensors.iter().map(|t| t.dim(axis)).sum();
        // Treat data as [outer, axis, inner].
        let outer: usize = out_dims[..axis].iter().product();
        let inner: usize = out_dims[axis + 1..].iter().product();
        let total_axis = out_dims[axis];
        let mut out = vec![0.0f32; outer * total_axis * inner];
        let mut axis_offset = 0usize;
        for t in tensors {
            let a = t.dim(axis);
            for o in 0..outer {
                let src_start = o * a * inner;
                let dst_start = o * total_axis * inner + axis_offset * inner;
                out[dst_start..dst_start + a * inner]
                    .copy_from_slice(&t.data[src_start..src_start + a * inner]);
            }
            axis_offset += a;
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Extracts the half-open range `[start, end)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Tensor {
        assert!(axis < self.rank(), "slice axis out of range");
        assert!(
            start <= end && end <= self.dim(axis),
            "invalid slice range {start}..{end} for axis extent {}",
            self.dim(axis)
        );
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let a = dims[axis];
        let len = end - start;
        let mut out_dims = dims.to_vec();
        out_dims[axis] = len;
        let mut out = vec![0.0f32; outer * len * inner];
        for o in 0..outer {
            let src_start = o * a * inner + start * inner;
            let dst_start = o * len * inner;
            out[dst_start..dst_start + len * inner]
                .copy_from_slice(&self.data[src_start..src_start + len * inner]);
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Selects the given indices along `axis` (gather).
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Tensor {
        assert!(axis < self.rank(), "index_select axis out of range");
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let a = dims[axis];
        for &i in indices {
            assert!(i < a, "index {i} out of bounds for axis extent {a}");
        }
        let mut out_dims = dims.to_vec();
        out_dims[axis] = indices.len();
        let mut out = vec![0.0f32; outer * indices.len() * inner];
        for o in 0..outer {
            for (k, &i) in indices.iter().enumerate() {
                let src = o * a * inner + i * inner;
                let dst = o * indices.len() * inner + k * inner;
                out[dst..dst + inner].copy_from_slice(&self.data[src..src + inner]);
            }
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Writes `src` into the given indices along `axis` (scatter assign).
    /// The extents of `src` must match `self` everywhere except `axis`, where
    /// it must equal `indices.len()`.
    pub fn index_assign(&mut self, axis: usize, indices: &[usize], src: &Tensor) {
        assert!(axis < self.rank(), "index_assign axis out of range");
        assert_eq!(
            src.dim(axis),
            indices.len(),
            "index_assign source extent mismatch"
        );
        let dims = self.dims().to_vec();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let a = dims[axis];
        for &i in indices {
            assert!(i < a, "index {i} out of bounds for axis extent {a}");
        }
        for o in 0..outer {
            for (k, &i) in indices.iter().enumerate() {
                let dst = o * a * inner + i * inner;
                let s = o * indices.len() * inner + k * inner;
                self.data[dst..dst + inner].copy_from_slice(&src.data[s..s + inner]);
            }
        }
    }

    /// Broadcasts the tensor to `dims`, which must be broadcast-compatible.
    pub fn broadcast_to(&self, dims: &[usize]) -> Tensor {
        let target = Shape::new(dims);
        let bshape = broadcast_shapes(&self.shape, &target)
            .unwrap_or_else(|| panic!("cannot broadcast {} to {}", self.shape, target));
        assert_eq!(
            bshape, target,
            "broadcast_to target {target} is smaller than source {}",
            self.shape
        );
        let src_dims = self.dims();
        let src_strides = self.shape.strides();
        let out_strides = target.strides();
        let rank = target.rank();
        let offset = rank - self.rank();
        let mut out = vec![0.0f32; target.numel()];
        out.par_iter_mut().enumerate().for_each(|(flat, v)| {
            let mut rem = flat;
            let mut src = 0usize;
            for (axis, &stride) in out_strides.iter().enumerate().take(rank) {
                let coord = rem / stride;
                rem %= stride;
                if axis >= offset {
                    let saxis = axis - offset;
                    let c = if src_dims[saxis] == 1 { 0 } else { coord };
                    src += c * src_strides[saxis];
                }
            }
            *v = self.data[src];
        });
        Tensor {
            shape: target,
            data: out,
        }
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync + Send) -> Tensor {
        let mut data = vec![0.0f32; self.numel()];
        data.par_iter_mut()
            .zip(self.data.par_iter())
            .for_each(|(o, &x)| *o = f(x));
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync + Send) {
        self.data.par_iter_mut().for_each(|x| *x = f(*x));
    }

    fn binary_op(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync + Send) -> Tensor {
        if self.shape == other.shape {
            let mut data = vec![0.0f32; self.numel()];
            data.par_iter_mut()
                .zip(self.data.par_iter().zip(other.data.par_iter()))
                .for_each(|(o, (&a, &b))| *o = f(a, b));
            return Tensor {
                shape: self.shape.clone(),
                data,
            };
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape).unwrap_or_else(|| {
            panic!(
                "shapes {} and {} are not broadcast-compatible",
                self.shape, other.shape
            )
        });
        let a = self.broadcast_to(out_shape.dims());
        let b = other.broadcast_to(out_shape.dims());
        let mut data = vec![0.0f32; out_shape.numel()];
        data.par_iter_mut()
            .zip(a.data.par_iter().zip(b.data.par_iter()))
            .for_each(|(o, (&x, &y))| *o = f(x, y));
        Tensor {
            shape: out_shape,
            data,
        }
    }

    /// Element-wise (broadcasting) addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.binary_op(other, |a, b| a + b)
    }

    /// Element-wise (broadcasting) subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.binary_op(other, |a, b| a - b)
    }

    /// Element-wise (broadcasting) multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.binary_op(other, |a, b| a * b)
    }

    /// Element-wise (broadcasting) division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.binary_op(other, |a, b| a / b)
    }

    /// Element-wise maximum of two tensors.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        self.binary_op(other, f32::max)
    }

    /// Element-wise minimum of two tensors.
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        self.binary_op(other, f32::min)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(move |x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(move |x| x * s)
    }

    /// Negates every element.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// In-place `self += other` (shapes must match exactly).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        self.data
            .par_iter_mut()
            .zip(other.data.par_iter())
            .for_each(|(a, &b)| *a += b);
    }

    /// In-place `self += alpha * other` (shapes must match exactly).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        self.data
            .par_iter_mut()
            .zip(other.data.par_iter())
            .for_each(|(a, &b)| *a += alpha * b);
    }

    // ------------------------------------------------------------------
    // Matrix multiplication
    // ------------------------------------------------------------------

    /// Matrix multiplication.
    ///
    /// * rank-2 × rank-2: standard `[m,k] × [k,n] -> [m,n]`.
    /// * rank-3 × rank-3: batched `[b,m,k] × [b,k,n] -> [b,m,n]` (batch sizes
    ///   must match or either may be 1, in which case it is broadcast).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        match (self.rank(), other.rank()) {
            (2, 2) => {
                let (m, k) = (self.dim(0), self.dim(1));
                let (k2, n) = (other.dim(0), other.dim(1));
                assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
                let mut out = vec![0.0f32; m * n];
                matmul_block(&self.data, &other.data, &mut out, m, k, n);
                Tensor::from_vec(out, &[m, n])
            }
            (3, 3) => {
                let (ba, m, k) = (self.dim(0), self.dim(1), self.dim(2));
                let (bb, k2, n) = (other.dim(0), other.dim(1), other.dim(2));
                assert_eq!(
                    k, k2,
                    "batched matmul inner dimension mismatch: {k} vs {k2}"
                );
                assert!(
                    ba == bb || ba == 1 || bb == 1,
                    "batched matmul batch mismatch: {ba} vs {bb}"
                );
                let b = ba.max(bb);
                let mut out = vec![0.0f32; b * m * n];
                out.par_chunks_mut(m * n)
                    .enumerate()
                    .for_each(|(bi, chunk)| {
                        let ai = if ba == 1 { 0 } else { bi };
                        let bi2 = if bb == 1 { 0 } else { bi };
                        let a = &self.data[ai * m * k..(ai + 1) * m * k];
                        let bmat = &other.data[bi2 * k * n..(bi2 + 1) * k * n];
                        matmul_block(a, bmat, chunk, m, k, n);
                    });
                Tensor::from_vec(out, &[b, m, n])
            }
            (ra, rb) => panic!("matmul supports rank 2×2 or 3×3, got {ra}×{rb}"),
        }
    }

    /// Dot product of two equally-shaped tensors (sum of element products).
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "dot shape mismatch");
        self.data
            .par_iter()
            .zip(other.data.par_iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum::<f64>() as f32
    }
}

/// Dense `m×k · k×n` matrix multiply into a pre-allocated output slice.
///
/// Uses an i-k-j loop order so the inner loop is a contiguous AXPY over the
/// output row, which the compiler auto-vectorises.
pub fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.rank(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn construct_wrong_len_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3, 3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[2, 2]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[4], 2.5).data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_matrix() {
        let e = Tensor::eye(3);
        assert_eq!(e.at(&[0, 0]), 1.0);
        assert_eq!(e.at(&[1, 1]), 1.0);
        assert_eq!(e.at(&[0, 1]), 0.0);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(-1.0, 1.0, 5);
        assert!((t.at(&[0]) + 1.0).abs() < 1e-6);
        assert!((t.at(&[4]) - 1.0).abs() < 1e-6);
        assert!((t.at(&[2])).abs() < 1e-6);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    fn permute_2d_is_transpose() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose2();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[0, 1]), 4.0);
        assert_eq!(tt.at(&[2, 0]), 3.0);
    }

    #[test]
    fn permute_3d_roundtrip() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
        let back = p.permute(&[1, 2, 0]);
        assert_eq!(back, t);
    }

    #[test]
    fn broadcast_add_row() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let c = a.add(&row);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.at(&[0, 0]), 11.0);
        assert_eq!(c.at(&[1, 2]), 36.0);
    }

    #[test]
    fn broadcast_mul_column() {
        let a = Tensor::ones(&[2, 3]);
        let col = Tensor::from_vec(vec![2.0, 3.0], &[2, 1]);
        let c = a.mul(&col);
        assert_eq!(c.at(&[0, 2]), 2.0);
        assert_eq!(c.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "not broadcast-compatible")]
    fn incompatible_add_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 4]);
        a.add(&b);
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0], &[1, 2]);
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.at(&[2, 1]), 6.0);

        let d = Tensor::from_vec(vec![7.0, 8.0], &[2, 1]);
        let e = Tensor::concat(&[&a, &d], 1);
        assert_eq!(e.dims(), &[2, 3]);
        assert_eq!(e.at(&[0, 2]), 7.0);
        assert_eq!(e.at(&[1, 2]), 8.0);
    }

    #[test]
    fn slice_axis_middle() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let s = t.slice_axis(1, 1, 3);
        assert_eq!(s.dims(), &[2, 2, 4]);
        assert_eq!(s.at(&[0, 0, 0]), t.at(&[0, 1, 0]));
        assert_eq!(s.at(&[1, 1, 3]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn index_select_and_assign_roundtrip() {
        let t = Tensor::arange(24).reshape(&[4, 6]);
        let sel = t.index_select(0, &[1, 3]);
        assert_eq!(sel.dims(), &[2, 6]);
        assert_eq!(sel.at(&[0, 0]), 6.0);
        assert_eq!(sel.at(&[1, 5]), 23.0);

        let mut dst = Tensor::zeros(&[4, 6]);
        dst.index_assign(0, &[1, 3], &sel);
        assert_eq!(dst.at(&[1, 0]), 6.0);
        assert_eq!(dst.at(&[3, 5]), 23.0);
        assert_eq!(dst.at(&[0, 0]), 0.0);
    }

    #[test]
    fn matmul_2d_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.at(&[0, 0]), 58.0);
        assert_eq!(c.at(&[0, 1]), 64.0);
        assert_eq!(c.at(&[1, 0]), 139.0);
        assert_eq!(c.at(&[1, 1]), 154.0);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::arange(9).reshape(&[3, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn batched_matmul_broadcasts_batch() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let b = Tensor::eye(3).reshape(&[1, 3, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 3]);
        assert_eq!(c, a);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::ones(&[4]);
        let b = Tensor::full(&[4], 2.0);
        a.add_assign(&b);
        assert!(a.data().iter().all(|&x| x == 3.0));
        a.axpy(0.5, &b);
        assert!(a.data().iter().all(|&x| x == 4.0));
    }

    #[test]
    fn unsqueeze_squeeze() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let u = t.unsqueeze(0);
        assert_eq!(u.dims(), &[1, 2, 3]);
        let s = u.squeeze(0);
        assert_eq!(s.dims(), &[2, 3]);
    }

    #[test]
    fn broadcast_to_explicit() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = t.broadcast_to(&[2, 3]);
        assert_eq!(b.dims(), &[2, 3]);
        assert_eq!(b.at(&[0, 2]), 1.0);
        assert_eq!(b.at(&[1, 0]), 2.0);
    }

    #[test]
    fn scalar_tensor_item() {
        let s = Tensor::scalar(3.25);
        assert_eq!(s.item(), 3.25);
        assert_eq!(s.rank(), 0);
    }
}
