//! Self-healing front end over [`ServiceClient`]: connect/request
//! deadlines, jittered exponential backoff, automatic reconnect with full
//! `Hello` re-negotiation, and an idempotent-retry policy.
//!
//! Compress and decompress are pure functions of their request bodies, so
//! retrying after a connection reset cannot duplicate work or corrupt
//! state — the only question is *which* failures are worth retrying:
//!
//! * **I/O and protocol failures** (reset, timeout, torn frame, corrupted
//!   response): the connection is untrustworthy.  Drop it, back off,
//!   re-dial, re-run the full `Hello` feature negotiation, retry.
//! * **Typed server refusals that promise the op is safe later**
//!   ([`Status::RateLimited`], [`Status::DeadlineExceeded`],
//!   [`Status::ShuttingDown`]): the connection is healthy; back off and
//!   retry on it.
//! * **Everything else** (`NoCommonCodec`, `Malformed`, `FrameTooLarge`,
//!   ...): deterministic refusals that retrying cannot fix — surfaced
//!   immediately as [`ResilientError::Fatal`].
//!
//! When the retry budget runs out the last error comes back inside
//! [`ResilientError::Exhausted`], so callers can distinguish "the service
//! is down" from "my request is wrong".

use crate::client::{ClientError, ServerInfo, ServiceClient};
use crate::protocol::Status;
use gld_core::{CodecId, ErrorTarget};
use gld_datasets::Variable;
use gld_tensor::Tensor;
use std::fmt;
use std::time::Duration;

/// Jittered exponential backoff: each delay is the current step scaled by
/// a uniform factor in `[0.5, 1.0)`, and the step doubles (up to the cap)
/// per call.  The jitter stream is a deterministic xorshift seeded by the
/// caller, so two clients with different seeds cannot thundering-herd in
/// lockstep while tests stay reproducible.
#[derive(Clone, Debug)]
pub struct Backoff {
    step: Duration,
    max: Duration,
    rng: u64,
}

impl Backoff {
    /// Starts a fresh schedule at `base`, doubling per delay up to `max`.
    pub fn new(base: Duration, max: Duration, seed: u64) -> Self {
        Backoff {
            step: base.max(Duration::from_millis(1)),
            max: max.max(base),
            rng: seed | 1,
        }
    }

    /// The next delay in the schedule (advances the step and the jitter
    /// stream).
    pub fn next_delay(&mut self) -> Duration {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let unit = (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        let delay = self.step.mul_f64(0.5 + unit / 2.0);
        self.step = (self.step * 2).min(self.max);
        delay
    }

    /// Sleeps for [`Backoff::next_delay`].
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}

/// Retry tuning for [`ResilientClient`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Bound on each TCP dial.
    pub connect_timeout: Duration,
    /// Bound on every blocking socket read/write once connected (`None`
    /// waits forever).  A stalled server surfaces as a retryable I/O error.
    pub request_timeout: Option<Duration>,
    /// Retries after the first attempt (so `max_retries + 1` attempts
    /// total).
    pub max_retries: usize,
    /// First backoff delay; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Some(Duration::from_secs(30)),
            max_retries: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Terminal failures out of a [`ResilientClient`] op.
#[derive(Debug)]
pub enum ResilientError {
    /// Every attempt failed with a retryable error; `last` is the final
    /// one.  The service is unreachable or persistently overloaded.
    Exhausted {
        /// Attempts made (`max_retries + 1`).
        attempts: usize,
        /// The error the final attempt died with.
        last: ClientError,
    },
    /// A deterministic refusal that retrying cannot fix (bad request,
    /// unsupported codec, ...), surfaced from the first attempt that hit
    /// it.
    Fatal(ClientError),
}

impl fmt::Display for ResilientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilientError::Exhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            ResilientError::Fatal(e) => write!(f, "not retryable: {e}"),
        }
    }
}

impl std::error::Error for ResilientError {}

/// How one failed attempt affects the next.
enum Recovery {
    /// The connection is untrustworthy: drop it and re-dial + re-`Hello`.
    Reconnect,
    /// The connection is healthy; retry the op on it after backoff.
    SameConnection,
    /// Deterministic refusal: stop.
    Fatal,
}

fn classify(error: &ClientError) -> Recovery {
    match error {
        ClientError::Io(_) | ClientError::Protocol(_) => Recovery::Reconnect,
        ClientError::Server { status, .. } => match status {
            Status::RateLimited | Status::DeadlineExceeded | Status::ShuttingDown => {
                Recovery::SameConnection
            }
            _ => Recovery::Fatal,
        },
    }
}

/// A [`ServiceClient`] that survives resets, stalls, and transient
/// refusals: every op runs under the [`RetryPolicy`], reconnecting (with a
/// full `Hello` re-negotiation, so the codec and container feature bits
/// are re-established) whenever the connection stops being trustworthy.
pub struct ResilientClient {
    addr: String,
    preferences: Vec<CodecId>,
    policy: RetryPolicy,
    client: Option<ServiceClient>,
    info: Option<ServerInfo>,
    retries: u64,
    reconnects: u64,
}

impl ResilientClient {
    /// Dials `addr` and negotiates the session (retrying under `policy`),
    /// with `preferences` as the codec preference order for every `Hello`.
    pub fn connect(
        addr: impl Into<String>,
        preferences: &[CodecId],
        policy: RetryPolicy,
    ) -> Result<Self, ResilientError> {
        let mut client = ResilientClient {
            addr: addr.into(),
            preferences: preferences.to_vec(),
            policy,
            client: None,
            info: None,
            retries: 0,
            reconnects: 0,
        };
        client.with_retry(|_| Ok(()))?;
        Ok(client)
    }

    /// The session negotiated by the most recent successful `Hello`
    /// (`None` only between a connection loss and the reconnect).
    pub fn server_info(&self) -> Option<ServerInfo> {
        self.info
    }

    /// Retries performed across every op (attempts beyond each first).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Successful dial + `Hello` negotiations beyond the first — how many
    /// times the connection was rebuilt.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.saturating_sub(1)
    }

    /// Liveness probe under the retry policy.
    pub fn ping(&mut self) -> Result<(), ResilientError> {
        self.with_retry(|client| client.ping())
    }

    /// [`ServiceClient::compress`] under the retry policy (pure, so safe
    /// to retry after a reset).
    pub fn compress(
        &mut self,
        key: &str,
        variable: &Variable,
        block_frames: u32,
        target: Option<ErrorTarget>,
    ) -> Result<Vec<u8>, ResilientError> {
        self.with_retry(|client| client.compress(key, variable, block_frames, target))
    }

    /// [`ServiceClient::compress_as`] under the retry policy.
    pub fn compress_as(
        &mut self,
        codec: CodecId,
        key: &str,
        variable: &Variable,
        block_frames: u32,
        target: Option<ErrorTarget>,
    ) -> Result<Vec<u8>, ResilientError> {
        self.with_retry(|client| client.compress_as(codec, key, variable, block_frames, target))
    }

    /// [`ServiceClient::decompress`] under the retry policy.
    pub fn decompress(
        &mut self,
        key: &str,
        container: &[u8],
    ) -> Result<Vec<Tensor>, ResilientError> {
        self.with_retry(|client| client.decompress(key, container))
    }

    /// [`ServiceClient::status`] under the retry policy.
    pub fn status(&mut self) -> Result<crate::protocol::StatusResponse, ResilientError> {
        self.with_retry(|client| client.status())
    }

    /// Dials and negotiates if no healthy connection is held.
    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.client.is_some() {
            return Ok(());
        }
        let mut client =
            ServiceClient::connect_with_timeout(self.addr.as_str(), self.policy.connect_timeout)?;
        client.set_io_timeouts(self.policy.request_timeout)?;
        let info = client.hello(&self.preferences)?;
        // `hello` may have re-dialled internally (legacy-server downgrade),
        // which resets the socket options — re-apply the deadlines.
        client.set_io_timeouts(self.policy.request_timeout)?;
        self.info = Some(info);
        self.client = Some(client);
        self.reconnects += 1;
        Ok(())
    }

    /// Runs `op` under the policy: backoff between attempts, reconnect
    /// when the connection stops being trustworthy, fatal on deterministic
    /// refusals, [`ResilientError::Exhausted`] when the budget runs out.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut ServiceClient) -> Result<T, ClientError>,
    ) -> Result<T, ResilientError> {
        let mut backoff = Backoff::new(
            self.policy.base_backoff,
            self.policy.max_backoff,
            self.policy.seed,
        );
        let attempts = self.policy.max_retries + 1;
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
                backoff.sleep();
            }
            let error = match self.ensure_connected() {
                Ok(()) => match op(self.client.as_mut().expect("just connected")) {
                    Ok(value) => return Ok(value),
                    Err(e) => e,
                },
                Err(e) => e,
            };
            match classify(&error) {
                Recovery::Reconnect => {
                    self.client = None;
                    self.info = None;
                }
                Recovery::SameConnection => {}
                Recovery::Fatal => return Err(ResilientError::Fatal(error)),
            }
            last = Some(error);
        }
        Err(ResilientError::Exhausted {
            attempts,
            last: last.expect("the loop ran at least once and failed"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_under_a_cap_with_bounded_jitter() {
        let mut backoff = Backoff::new(Duration::from_millis(100), Duration::from_millis(400), 7);
        let mut expected_step = 100u64;
        for _ in 0..6 {
            let delay = backoff.next_delay().as_secs_f64() * 1000.0;
            let step = expected_step as f64;
            assert!(
                delay >= step * 0.5 - 1e-9 && delay < step,
                "delay {delay}ms outside [{}, {}) jitter band",
                step * 0.5,
                step
            );
            expected_step = (expected_step * 2).min(400);
        }
    }

    #[test]
    fn backoff_streams_differ_by_seed_and_repeat_by_seed() {
        let delays = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(Duration::from_millis(64), Duration::from_secs(1), seed);
            (0..5).map(|_| b.next_delay()).collect()
        };
        assert_eq!(delays(3), delays(3), "same seed, same schedule");
        assert_ne!(delays(3), delays(4), "different seeds de-synchronise");
    }

    #[test]
    fn classification_matches_the_retry_contract() {
        let io = ClientError::Io(std::io::Error::other("reset"));
        assert!(matches!(classify(&io), Recovery::Reconnect));
        let busy = ClientError::Server {
            status: Status::RateLimited,
            message: String::new(),
        };
        assert!(matches!(classify(&busy), Recovery::SameConnection));
        let late = ClientError::Server {
            status: Status::DeadlineExceeded,
            message: String::new(),
        };
        assert!(matches!(classify(&late), Recovery::SameConnection));
        let bad = ClientError::Server {
            status: Status::Malformed,
            message: String::new(),
        };
        assert!(matches!(classify(&bad), Recovery::Fatal));
    }

    #[test]
    fn unreachable_address_exhausts_into_a_typed_error() {
        // Reserved TEST-NET-1 address: connects fail fast or time out.
        let policy = RetryPolicy {
            connect_timeout: Duration::from_millis(50),
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let error = ResilientClient::connect("192.0.2.1:9", &[], policy)
            .map(|_| ())
            .expect_err("TEST-NET-1 must be unreachable");
        match error {
            ResilientError::Exhausted {
                attempts: 2,
                last: ClientError::Io(_),
            } => {}
            other => panic!("expected exhaustion with an I/O error, got {other:?}"),
        }
    }
}
