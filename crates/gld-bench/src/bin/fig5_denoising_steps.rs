//! Regenerates Figure 5: the denoising-step ablation on the combustion-like
//! dataset.  A single model is trained at the full schedule, fine-tuned at a
//! short schedule, and then evaluated with {full, 128, 32, 8, 2, 1} sampling
//! steps across a sweep of error-bound targets.

use gld_bench::{bench_budget, bench_config, bench_spec, write_result};
use gld_core::{GldCompressor, GldConfig};
use gld_datasets::{generate, DatasetKind};

const NRMSE_TARGETS: [f32; 3] = [2e-2, 1e-2, 5e-3];

fn main() {
    let dataset = generate(DatasetKind::S3d, &bench_spec(), 505);
    let config: GldConfig = bench_config();
    let full_steps = config.diffusion.train_steps;
    let step_counts = [full_steps, 128, 32, 8, 2, 1];

    println!("Figure 5 — denoising-step ablation (S3D-like), training schedule T = {full_steps}\n");
    let mut compressor = GldCompressor::train(config, &dataset.variables, bench_budget());

    let mut csv = String::from("steps,compression_ratio,nrmse\n");
    for &steps in &step_counts {
        compressor.set_denoising_steps(steps.min(full_steps));
        print!("{:>5} steps:", steps.min(full_steps));
        for &target in &NRMSE_TARGETS {
            let (_, ratio, err) = compressor.compress_variable(&dataset.variables[0], Some(target));
            print!("  {ratio:6.1}x@{err:.1e}");
            csv.push_str(&format!("{},{ratio},{err}\n", steps.min(full_steps)));
        }
        println!();
    }
    println!("\nPaper finding: ≥32 steps matches the full schedule; 1–2 steps degrade.");
    write_result("fig5_denoising_steps.csv", &csv);
}
