//! Per-kernel bit-identity: every backend the host supports must agree
//! with the scalar reference to the last bit, including NaN/infinity
//! escapes, round-to-half ties and values near the `2^23` rint guard.

use crate::*;
use proptest::prelude::*;

fn simd_backends() -> Vec<&'static dyn KernelBackend> {
    available_backends()
        .into_iter()
        .filter(|&b| b != Backend::Scalar)
        .map(kernels_for)
        .collect()
}

/// Tiny deterministic generator so the crate stays dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    }

    /// Mostly smooth values with occasional outliers and non-finite lanes.
    fn field_value(&mut self, spiky: bool) -> f32 {
        let v = self.f32() * 4.0;
        if !spiky {
            return v;
        }
        match self.next_u64() % 19 {
            0 => v * 1e20,
            1 => f32::INFINITY,
            2 => f32::NEG_INFINITY,
            3 => f32::NAN,
            _ => v,
        }
    }
}

fn random_plane(seed: u64, d1: usize, d2: usize, spiky: bool) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut rng = Rng::new(seed);
    let n = d1 * d2;
    let src: Vec<f32> = (0..n).map(|_| rng.field_value(spiky)).collect();
    let prev: Vec<f32> = (0..n).map(|_| rng.field_value(spiky)).collect();
    // Boundary row/column prefilled, interior poisoned so a lane that
    // skips a cell cannot silently agree.
    let mut recon = vec![f32::NAN; n];
    for slot in recon.iter_mut().take(d2) {
        *slot = rng.f32();
    }
    for j in 1..d1 {
        recon[j * d2] = rng.f32();
    }
    (src, prev, recon)
}

fn run_sz_plane(
    backend: &dyn KernelBackend,
    src: &[f32],
    prev: &[f32],
    recon_init: &[f32],
    d1: usize,
    d2: usize,
    two_eb: f32,
) -> (Vec<f32>, Vec<i32>) {
    let mut recon = recon_init.to_vec();
    let mut codes = vec![i32::MIN; recon.len()];
    let mut plane = SzPlane {
        src,
        prev,
        recon: &mut recon,
        codes: &mut codes,
        d1,
        d2,
        two_eb,
        abs_error: two_eb / 2.0,
    };
    backend.sz_quantize_plane(&mut plane);
    (recon, codes)
}

fn random_basis(seed: u64) -> [[f32; 4]; 4] {
    let mut rng = Rng::new(seed);
    let mut basis = [[0.0f32; 4]; 4];
    for row in &mut basis {
        for v in row {
            *v = rng.f32();
        }
    }
    basis
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sz_plane_backends_are_bit_identical(
        seed in 0u64..1_000_000,
        d1 in 1usize..24,
        d2 in 1usize..40,
        eb_exp in -5i32..1,
        spiky_pick in 0u32..2,
    ) {
        let spiky = spiky_pick == 1;
        let (src, prev, recon_init) = random_plane(seed, d1, d2, spiky);
        let two_eb = 2.0 * 10f32.powi(eb_exp);
        let (rec_ref, codes_ref) = run_sz_plane(
            kernels_for(Backend::Scalar), &src, &prev, &recon_init, d1, d2, two_eb,
        );
        for backend in simd_backends() {
            let (rec, codes) = run_sz_plane(backend, &src, &prev, &recon_init, d1, d2, two_eb);
            prop_assert_eq!(
                rec.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                rec_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            prop_assert_eq!(&codes, &codes_ref);
        }
    }

    #[test]
    fn zfp_transform_backends_are_bit_identical(
        seed in 0u64..1_000_000,
        inverse_pick in 0u32..2,
        spiky_pick in 0u32..2,
    ) {
        let (inverse, spiky) = (inverse_pick == 1, spiky_pick == 1);
        let mut rng = Rng::new(seed);
        let basis = random_basis(seed ^ 0xA5A5);
        let mut reference = [0.0f32; 64];
        for v in &mut reference {
            *v = rng.field_value(spiky);
        }
        let mut expected = reference;
        kernels_for(Backend::Scalar).zfp_transform(&mut expected, &basis, inverse);
        for backend in simd_backends() {
            let mut block = reference;
            backend.zfp_transform(&mut block, &basis, inverse);
            prop_assert_eq!(
                block.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn zfp_quantize_backends_are_bit_identical(
        seed in 0u64..1_000_000,
        step in 1e-6f32..10.0,
        spiky_pick in 0u32..2,
    ) {
        let spiky = spiky_pick == 1;
        let mut rng = Rng::new(seed);
        let mut block = [0.0f32; 64];
        for v in &mut block {
            *v = rng.field_value(spiky) * 100.0;
        }
        let mut codes_ref = [0i32; 64];
        let mut escapes_ref = vec![7; 3]; // dirty prefix must be preserved
        kernels_for(Backend::Scalar).zfp_quantize(&block, step, &mut codes_ref, &mut escapes_ref);
        for backend in simd_backends() {
            let mut codes = [0i32; 64];
            let mut escapes = vec![7; 3];
            backend.zfp_quantize(&block, step, &mut codes, &mut escapes);
            prop_assert_eq!(&codes[..], &codes_ref[..]);
            prop_assert_eq!(&escapes, &escapes_ref);
        }
    }

    #[test]
    fn find_bin_backends_are_bit_identical(
        freqs in prop::collection::vec(0u32..50, 1..600),
        target_pick in 0u32..u32::MAX,
    ) {
        let mut cdf = Vec::with_capacity(freqs.len() + 1);
        let mut acc = 1u32; // every model's cdf starts at 0 < total
        cdf.push(0);
        for f in &freqs {
            acc += f;
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        let target = target_pick % total;
        let expected = kernels_for(Backend::Scalar).find_bin(&cdf, 0, target);
        for backend in simd_backends() {
            prop_assert_eq!(backend.find_bin(&cdf, 0, target), expected);
            // Starting from the answer must be a no-op scan on every backend.
            prop_assert_eq!(backend.find_bin(&cdf, expected, target), expected);
        }
    }

    #[test]
    fn match_len_backends_are_bit_identical(
        common in prop::collection::vec(0u32..256, 0..200),
        tail_a in prop::collection::vec(0u32..256, 0..40),
        tail_b in prop::collection::vec(0u32..256, 0..40),
    ) {
        let a: Vec<u8> = common.iter().chain(tail_a.iter()).map(|&v| v as u8).collect();
        let b: Vec<u8> = common.iter().chain(tail_b.iter()).map(|&v| v as u8).collect();
        let expected = kernels_for(Backend::Scalar).match_len(&a, &b);
        for backend in simd_backends() {
            prop_assert_eq!(backend.match_len(&a, &b), expected);
        }
    }

    #[test]
    fn hash4_batch_backends_are_bit_identical(
        input in prop::collection::vec(0u32..256, 0..300),
        bits in 8u32..22,
    ) {
        let input: Vec<u8> = input.iter().map(|&v| v as u8).collect();
        let n = input.len().saturating_sub(3);
        let mut expected = vec![0u32; n];
        kernels_for(Backend::Scalar).hash4_batch(&input, bits, &mut expected);
        for backend in simd_backends() {
            let mut out = vec![0u32; n];
            backend.hash4_batch(&input, bits, &mut out);
            prop_assert_eq!(&out, &expected);
        }
    }
}

/// Deterministic worst cases for the round emulation: exact ties, the
/// double-rounding trap, the `2^23` rint guard and non-finite inputs.
#[test]
fn round_edge_cases_survive_quantisation() {
    let tricky = [
        0.5f32,
        -0.5,
        1.5,
        -1.5,
        2.5,
        -2.5,
        0.499_999_97,
        -0.499_999_97,
        4095.5,
        4096.5,
        8_388_607.5,
        8_388_608.0,
        16_777_216.0,
        -16_777_216.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MIN_POSITIVE,
        -0.0,
        0.0,
    ];
    let mut block = [0.0f32; 64];
    block[..tricky.len()].copy_from_slice(&tricky);
    for step in [1.0f32, 0.5, 1e-3] {
        let mut codes_ref = [0i32; 64];
        let mut escapes_ref = Vec::new();
        kernels_for(Backend::Scalar).zfp_quantize(&block, step, &mut codes_ref, &mut escapes_ref);
        for backend in simd_backends() {
            let mut codes = [0i32; 64];
            let mut escapes = Vec::new();
            backend.zfp_quantize(&block, step, &mut codes, &mut escapes);
            assert_eq!(
                codes[..],
                codes_ref[..],
                "step {step} on {}",
                backend.backend()
            );
            assert_eq!(escapes, escapes_ref, "step {step} on {}", backend.backend());
        }
    }
}

#[test]
fn selection_parsing_and_forcing() {
    assert_eq!(Backend::parse_selection("scalar"), Some(Backend::Scalar));
    assert_eq!(Backend::parse_selection("SSE2"), Some(Backend::Sse2));
    assert_eq!(Backend::parse_selection(" avx2 "), Some(Backend::Avx2));
    assert_eq!(Backend::parse_selection("auto"), Some(best_available()));
    assert_eq!(Backend::parse_selection("simd"), Some(best_available()));
    assert_eq!(Backend::parse_selection("neon"), None);

    assert!(Backend::Scalar.is_available());
    let backends = available_backends();
    assert_eq!(backends.first(), Some(&Backend::Scalar));
    assert_eq!(best_available(), *backends.last().unwrap());

    force(Backend::Scalar).unwrap();
    assert_eq!(active(), Backend::Scalar);
    assert_eq!(kernels().backend(), Backend::Scalar);
    force(best_available()).unwrap();
    assert_eq!(active(), best_available());
    clear_force();

    for b in backends {
        assert_eq!(kernels_for(b).backend(), b);
    }
    assert!(!cpu_features().is_empty());
}
