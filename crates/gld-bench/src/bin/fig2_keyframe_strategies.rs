//! Regenerates Figure 2: per-frame reconstruction error of the three
//! keyframe selection strategies (prediction, interpolation, mixed) with the
//! same number of keyframes, on the climate-like dataset.

use gld_bench::{bench_budget, bench_config, bench_spec, write_result};
use gld_core::{GldCompressor, GldConfig, KeyframeStrategy};
use gld_datasets::{generate, DatasetKind};
use gld_tensor::stats::nrmse;

fn main() {
    let dataset = generate(DatasetKind::E3sm, &bench_spec(), 2025);
    let strategies = [
        (
            "interpolation",
            KeyframeStrategy::Interpolation { interval: 3 },
        ),
        ("prediction", KeyframeStrategy::Prediction { count: 6 }),
        ("mixed", KeyframeStrategy::Mixed { count: 6 }),
    ];

    let mut csv = String::from("strategy,frame,nrmse,is_keyframe\n");
    println!("Figure 2 — keyframe selection strategies (per-frame NRMSE, E3SM-like)\n");
    let mut means = Vec::new();
    for (label, strategy) in strategies {
        let config = GldConfig {
            strategy,
            ..bench_config()
        };
        let compressor = GldCompressor::train(config, &dataset.variables, bench_budget());
        let block = dataset.variables[0]
            .frames
            .slice_axis(0, 0, config.block_frames);
        let compressed = compressor.compress_block(&block, None);
        let recon = compressor.decompress_block(&compressed);
        let partition = config.partition();

        print!("{label:<15}");
        let mut generated_sum = 0.0f32;
        for t in 0..config.block_frames {
            let err = nrmse(
                &block.slice_axis(0, t, t + 1),
                &recon.slice_axis(0, t, t + 1),
            );
            let is_key = partition.conditioning.contains(&t);
            csv.push_str(&format!("{label},{t},{err},{}\n", u8::from(is_key)));
            print!(" {err:.1e}{}", if is_key { "*" } else { " " });
            if !is_key {
                generated_sum += err;
            }
        }
        let mean = generated_sum / partition.num_generated() as f32;
        means.push((label, mean));
        println!("   | mean generated-frame NRMSE {mean:.3e}");
    }
    println!("\n(* keyframe)  Paper finding: interpolation < mixed < prediction.");
    means.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!(
        "Measured ordering (best to worst): {}",
        means
            .iter()
            .map(|(l, e)| format!("{l} ({e:.2e})"))
            .collect::<Vec<_>>()
            .join(" < ")
    );
    write_result("fig2_keyframe_strategies.csv", &csv);
}
