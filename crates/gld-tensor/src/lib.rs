//! # gld-tensor
//!
//! Dense `f32` tensor substrate for the GLD (Generative Latent Diffusion)
//! compression stack.
//!
//! The crate provides exactly what the learned-compression pipeline needs and
//! nothing more: contiguous row-major tensors, broadcasting element-wise
//! arithmetic, batched matrix multiplication, `im2col`/`col2im` for
//! convolutions, reductions, a seeded random-number layer, and a small
//! symmetric eigensolver used by the PCA-based error-bound module.
//!
//! Design notes (see `DESIGN.md` at the workspace root):
//!
//! * Storage is always contiguous row-major `Vec<f32>`; strided views are not
//!   exposed.  This keeps the autograd layer in `gld-nn` simple and makes
//!   every op trivially parallelisable with rayon.  Hot ops (`map`, `zip`,
//!   matmul, conv) dispatch onto rayon's persistent work-stealing pool —
//!   long-lived workers, no thread spawn/join per op — and inherit its
//!   `RAYON_NUM_THREADS` sizing; sub-threshold workloads stay inline on the
//!   calling thread.
//! * Shape errors panic with a descriptive message.  The compression stack
//!   constructs all shapes statically from configuration structs, so a shape
//!   mismatch is always a programming error, never a data error.
//! * All randomness flows through [`random::TensorRng`], which wraps a seeded
//!   PRNG so that experiments are reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conv;
pub mod eig;
pub mod ops;
pub mod pool;
pub mod random;
pub mod reduce;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use random::TensorRng;
pub use shape::{broadcast_shapes, Shape};
pub use tensor::Tensor;

/// Convenience prelude re-exporting the items almost every consumer needs.
pub mod prelude {
    pub use crate::random::TensorRng;
    pub use crate::shape::{broadcast_shapes, Shape};
    pub use crate::tensor::Tensor;
}
