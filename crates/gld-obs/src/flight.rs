//! The flight recorder: a bounded record of the process's last moments.
//!
//! Span events (per-thread rings, [`crate::span`]) and log events (the log
//! ring, [`crate::log`]) are merged, sorted by timestamp, and written as
//! JSON-lines:
//!
//! ```text
//! {"kind":"flight","reason":"panic","events":412,"t_ns":91282312}
//! {"kind":"span","t_ns":1201,"dur_ns":83,"name":"req.parse","conn":2,"req":7}
//! {"kind":"log","t_ns":1410,"level":"info","target":"serviced","msg":"..."}
//! ```
//!
//! Dumps go to the path configured by [`set_dump_path`] (or the
//! `GLD_FLIGHT_DUMP` environment variable), falling back to stderr.
//! [`install_panic_hook`] chains a dump in front of the existing panic
//! hook, so a crashing `gld-serviced` leaves a server-side timeline for
//! chaos-test postmortems.

use crate::{log, now_ns, span};
use std::io::Write;
use std::sync::{Mutex, OnceLock};

fn dump_path() -> &'static Mutex<Option<String>> {
    static PATH: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(std::env::var("GLD_FLIGHT_DUMP").ok()))
}

/// Routes future dumps to `path` (overriding `GLD_FLIGHT_DUMP`); `None`
/// falls back to stderr.
pub fn set_dump_path(path: Option<String>) {
    *dump_path().lock().unwrap_or_else(|e| e.into_inner()) = path;
}

/// Renders the current flight record (header line + every span and log
/// event in timestamp order) as JSON-lines.
pub fn render(reason: &str) -> String {
    let spans = span::collect();
    let logs = log::collect();
    // Merge-sort the two feeds by timestamp.  Each is already sorted.
    enum Ev {
        Span(span::SpanEvent),
        Log(log::LogEvent),
    }
    let mut events: Vec<(u64, Ev)> = spans
        .into_iter()
        .map(|s| (s.start_ns, Ev::Span(s)))
        .chain(logs.into_iter().map(|l| (l.t_ns, Ev::Log(l))))
        .collect();
    events.sort_by_key(|(t, _)| *t);
    let mut out = format!(
        "{{\"kind\":\"flight\",\"reason\":\"{}\",\"events\":{},\"t_ns\":{}}}\n",
        log::json_escape(reason),
        events.len(),
        now_ns()
    );
    for (_, event) in events {
        match event {
            Ev::Span(s) => out.push_str(&format!(
                "{{\"kind\":\"span\",\"t_ns\":{},\"dur_ns\":{},\"name\":\"{}\",\"conn\":{},\"req\":{}}}\n",
                s.start_ns,
                s.dur_ns,
                log::json_escape(s.name),
                s.conn,
                s.req
            )),
            Ev::Log(l) => {
                out.push_str(&log::render_json(&l));
                out.push('\n');
            }
        }
    }
    out
}

/// Dumps the flight record to the configured path (stderr when none),
/// returning the rendered JSON-lines.  Safe to call from a panic hook.
pub fn dump(reason: &str) -> String {
    let rendered = render(reason);
    let path = dump_path()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    match path {
        Some(path) => {
            if std::fs::write(&path, &rendered).is_err() {
                let mut err = std::io::stderr().lock();
                let _ = err.write_all(rendered.as_bytes());
            }
        }
        None => {
            let mut err = std::io::stderr().lock();
            let _ = err.write_all(rendered.as_bytes());
        }
    }
    rendered
}

/// Installs a panic hook that dumps the flight record (reason
/// `"panic: <message>"`) before delegating to the previously installed
/// hook.  Idempotent per process.
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            dump(&format!("panic: {message}"));
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_carries_spans_and_logs_in_order() {
        crate::span::record("flight.test", 100, 200, 1, 2);
        crate::log::emit(
            crate::Level::Warn,
            "flight-test",
            Vec::new(),
            "chaos".into(),
        );
        let dumped = render("unit-test");
        let mut lines = dumped.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"kind\":\"flight\""));
        assert!(header.contains("\"reason\":\"unit-test\""));
        assert!(dumped.contains("\"name\":\"flight.test\""));
        assert!(dumped.contains("\"msg\":\"chaos\""));
        // Every line is a JSON object; timestamps are sorted.
        let mut last = 0u64;
        for line in dumped.lines().skip(1) {
            assert!(line.starts_with('{') && line.ends_with('}'));
            let t: u64 = line
                .split("\"t_ns\":")
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(t >= last);
            last = t;
        }
    }
}
