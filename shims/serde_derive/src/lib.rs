//! No-op `Serialize`/`Deserialize` derive macros for offline builds.
//!
//! The workspace's persistent formats are all hand-framed binary (see
//! `gld_core::container`); the serde derives on config/data structs exist so
//! the types remain drop-in compatible with the real serde ecosystem.  These
//! shims accept the derive syntax and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
