//! # gld-entropy
//!
//! Entropy coding for the GLD compression stack.
//!
//! Three pieces live here:
//!
//! * [`arith`] — a binary-renormalising arithmetic coder (encoder/decoder
//!   pair) operating on cumulative-frequency intervals.  This is the
//!   lossless back end shared by every compressor in the workspace.
//! * [`gaussian`] — numerically careful normal CDF / inverse utilities.
//! * [`models`] — the symbol models on top of the coder: the
//!   **Gaussian conditional** model used for VAE latents `y` (whose per
//!   element mean/scale come from the hyperprior, paper Eq. 1–2), the
//!   **histogram factorized prior** used for hyper-latents `z`, and a raw
//!   **bypass** coder for escape values.
//!
//! The crate is deliberately framework-free: it works on plain `i32` symbol
//! slices so that both the learned compressors (`gld-vae`) and the rule-based
//! baselines (`gld-baselines`) can reuse it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arith;
pub mod gaussian;
pub mod models;

pub use arith::{ArithmeticDecoder, ArithmeticEncoder};
pub use models::{BitCounter, BypassCoder, GaussianConditionalModel, HistogramModel};
