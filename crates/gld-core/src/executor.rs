//! Streaming block executor: bounded-memory parallel compression of a
//! variable's temporal windows.
//!
//! The buffered pipeline this replaces materialised every window result
//! before packing the container, so the pipeline's working set grew with
//! the variable.  Here three roles run concurrently on the persistent pool
//! (`rayon::scope`):
//!
//! * a **producer** — a claim counter advanced under the flow lock; the
//!   claimed window itself is materialised (`temporal_window_at`) *outside*
//!   the lock, so block-sized copies never serialise the other roles.
//!   Claims are gated by a ticket window: index `i` may only be claimed
//!   while `i < emitted + queue_depth`, which is the bounded queue — at
//!   most `queue_depth` blocks exist between materialisation and emission,
//!   so in-flight blocks are O(depth), not O(variable);
//! * **one-shot worker jobs** — each claims at most one window, runs
//!   [`Codec::compress_block_at`] with the window's index (the per-block
//!   derived seed keeps output bit-identical to the sequential reference),
//!   posts the outcome to the reorder buffer and exits.  A job that finds
//!   the ticket window full exits immediately instead of parking, so the
//!   executor never blocks a pool thread and concurrent executors
//!   interleave fairly on the shared pool;
//! * an **ordered collector** (the calling thread) emits outcomes strictly
//!   in temporal order, tops the pool up with one fresh job per emission,
//!   and — while its next index is still in flight — helps by claiming and
//!   compressing blocks itself, so the executor finishes even if every
//!   pool worker is busy elsewhere.
//!
//! Emission order equals claim order equals temporal order, so containers,
//! statistics and every byte are identical across worker counts, queue
//! depths and `RAYON_NUM_THREADS` settings (`tests/streaming_executor.rs`).

use crate::codec::{Codec, CodecScratch, ErrorTarget};
use crate::container::{DictMode, EntropyProfile};
use gld_datasets::{blocks, Variable};
use gld_entropy::HistogramModel;
use gld_lz::LzProfile;
use gld_tensor::Tensor;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    /// Per-worker scratch arena: pool workers are persistent, so buffers
    /// reused across one-shot jobs stop the hot path from allocating per
    /// block.  Frames are bit-identical to the fresh-scratch path, so reuse
    /// never leaks state between blocks (or between interleaved executors
    /// sharing a pool thread).
    static WORKER_SCRATCH: RefCell<CodecScratch> = RefCell::new(CodecScratch::new());
}

/// Runs `compress_window_outcome` with this thread's reusable scratch.
///
/// The scratch is *taken out* of the thread-local slot for the duration of
/// the codec call rather than borrowed across it: if the codec's own
/// internal parallelism ever re-enters this function on the same thread
/// (work-stealing during a nested join), the re-entrant call simply finds
/// an empty slot and allocates fresh buffers instead of panicking on a
/// `RefCell` double-borrow.  Output is identical either way.
fn compress_window_outcome_pooled<C: Codec + ?Sized>(
    codec: &C,
    window: &Tensor,
    target: Option<ErrorTarget>,
    index: u64,
    stage: &StageMode,
) -> BlockOutcome {
    let mut scratch = WORKER_SCRATCH.with(|slot| std::mem::take(&mut *slot.borrow_mut()));
    let outcome = compress_window_outcome(codec, window, target, index, &mut scratch, stage);
    WORKER_SCRATCH.with(|slot| *slot.borrow_mut() = scratch);
    outcome
}

/// How each frame runs the container's lossless stage (and, for
/// [`StageMode::Shared`], its entropy coding) on the worker threads.
#[derive(Clone, Debug)]
pub enum StageMode {
    /// No staging — frames are headed for a stage-free v2 stream.
    Off,
    /// Cold per-frame staging (container v3): every frame refits its stage
    /// models from scratch.
    PerFrame,
    /// Warm shared-profile coding (container v4): every frame is coded
    /// against the variable's fitted [`WarmProfile`] — shared entropy model,
    /// primed stage models and the first-block seed dictionary — instead of
    /// refitting per frame.
    Shared(Arc<WarmProfile>),
}

/// A cross-frame coding profile fitted on a variable's first temporal
/// window ([`fit_variable_profile`]): the wire-format [`EntropyProfile`]
/// the container's table carries, plus the decoded working state the
/// workers code against.
#[derive(Clone, Debug)]
pub struct WarmProfile {
    /// The profile as serialised into the container's v4 profile table.
    pub profile: EntropyProfile,
    /// The stage snapshot every frame warm-starts its adaptive models from
    /// (the decoded copy of `profile`'s snapshot).
    pub lz: LzProfile,
    /// The profiled first-frame bytes — the [`DictMode::FirstBlock`] seed
    /// dictionary for every later frame's match window.  Empty windows for
    /// block 0 itself.
    pub dict: Vec<u8>,
}

/// Number of temporal windows whose embedded models are pooled into a
/// variable's shared entropy model.  Sampling a handful of windows spread
/// across the variable keeps the fit cheap while covering the code range of
/// windows the first one alone would miss.
const PROFILE_FIT_WINDOWS: usize = 4;

/// Fits a variable's shared coding profile: a **sample** of its temporal
/// windows is compressed cold, their embedded entropy models (if the codec
/// has one) are pooled into one shared histogram with an overflow escape
/// bin ([`HistogramModel::with_escape`]), the first window is re-coded
/// under that model, and the stage snapshot plus seed dictionary are fitted
/// on the resulting frame.  Deterministic — the executor later reproduces
/// the identical first frame, so the dictionary always matches what the
/// decoder reconstructs from block 0.
pub fn fit_variable_profile<C: Codec + ?Sized>(
    codec: &C,
    variable: &Variable,
    block_frames: usize,
    target: Option<ErrorTarget>,
) -> WarmProfile {
    let (_, windows) = checked_windows(variable, block_frames);
    let mut scratch = CodecScratch::new();
    let cold = {
        let window = blocks::temporal_window_at(variable, block_frames, 0);
        codec.compress_block_scratch(&window.data, target, 0, &mut scratch)
    };
    let model = codec.frame_model(&cold).map(|first| {
        let mut models = vec![first];
        // Sample later windows evenly (skipping window 0, already fitted).
        let extra = PROFILE_FIT_WINDOWS.min(windows).saturating_sub(1);
        for k in 1..=extra {
            let index = k * (windows - 1) / extra.max(1);
            if index == 0 {
                continue;
            }
            let window = blocks::temporal_window_at(variable, block_frames, index);
            let frame =
                codec.compress_block_scratch(&window.data, target, index as u64, &mut scratch);
            if let Some(m) = codec.frame_model(&frame) {
                models.push(m);
            }
        }
        HistogramModel::merged(models.iter())
            .expect("at least one window model")
            .with_escape()
    });
    let frame0 = match model.as_ref() {
        Some(m) => {
            m.prepare_decode();
            let window = blocks::temporal_window_at(variable, block_frames, 0);
            codec.compress_block_shared(&window.data, target, 0, &mut scratch, m)
        }
        None => cold,
    };
    let lz = LzProfile::fit(&frame0, &mut scratch.lz);
    WarmProfile {
        profile: EntropyProfile {
            model,
            lz: Some(lz.clone()),
            dict_mode: DictMode::FirstBlock,
        },
        lz,
        dict: frame0,
    }
}

/// Tuning for the streaming executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Maximum blocks simultaneously resident between materialisation and
    /// ordered emission (the bounded queue).  Clamped to at least 1.
    pub queue_depth: usize,
    /// Upper bound on one-shot worker jobs kept in flight on the pool; `0`
    /// means one per pool thread.  The collector always helps, so any
    /// value makes progress.
    pub workers: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            // Twice the worker count keeps every worker claimable while the
            // collector drains, without letting memory balloon.
            queue_depth: 2 * rayon::current_num_threads(),
            workers: 0,
        }
    }
}

/// Execution metrics, mainly for tests and benches asserting the memory
/// bound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamMetrics {
    /// Blocks compressed and emitted.
    pub blocks: usize,
    /// Peak number of simultaneously resident blocks (claimed but not yet
    /// emitted).  Bounded by [`StreamConfig::queue_depth`] by construction.
    pub peak_resident: usize,
}

/// Everything the collector needs from one compressed window: the container
/// frame plus the error/range partials the shared accounting aggregates.
pub struct BlockOutcome {
    /// The encoded container frame (unstaged codec bytes).
    pub frame: Vec<u8>,
    /// The frame's `gld-lz` stage stream when it is strictly smaller than
    /// the frame (the container v3 per-frame stage decision), computed on
    /// the worker thread through the scratch's `LzScratch` so the ordered
    /// collector never serialises stage compression.  `None` when the frame
    /// did not shrink or the caller asked for a stage-free stream.
    pub lz: Option<Vec<u8>>,
    /// Sum of squared reconstruction errors over the window.
    pub sq_err: f64,
    /// Number of values in the window.
    pub numel: usize,
    /// Minimum original value.
    pub lo: f32,
    /// Maximum original value.
    pub hi: f32,
}

/// Compresses one window through `codec` and measures the reconstruction —
/// the single definition both the sequential reference and the streaming
/// executor share, which is what makes them bit-identical.
pub(crate) fn compress_window_outcome<C: Codec + ?Sized>(
    codec: &C,
    window: &Tensor,
    target: Option<ErrorTarget>,
    index: u64,
    scratch: &mut CodecScratch,
    stage: &StageMode,
) -> BlockOutcome {
    // Per-block codec timing: one pre-resolved histogram handle per
    // process, so the worker hot path pays two atomic adds, never the
    // registry lock.
    fn encode_ns() -> &'static gld_obs::Histogram {
        static H: std::sync::OnceLock<std::sync::Arc<gld_obs::Histogram>> =
            std::sync::OnceLock::new();
        H.get_or_init(|| gld_obs::registry::histogram("gld_block_encode_ns", &[]))
    }
    let _span = gld_obs::span::SpanGuard::enter("block.encode", 0, index);
    let t0_ns = gld_obs::now_ns();
    let (frame, recon) = match stage {
        StageMode::Shared(warm) if warm.profile.model.is_some() => {
            let model = warm.profile.model.as_ref().unwrap();
            let frame = codec.compress_block_shared(window, target, index, scratch, model);
            let recon = codec.decompress_block_shared(&frame, Some(model));
            (frame, recon)
        }
        _ => {
            let frame = codec.compress_block_scratch(window, target, index, scratch);
            let recon = codec.decompress_block(&frame);
            (frame, recon)
        }
    };
    encode_ns().record(gld_obs::now_ns().saturating_sub(t0_ns));
    let mut sq_err = 0.0f64;
    for (a, b) in window.data().iter().zip(recon.data()) {
        let d = (*a - *b) as f64;
        sq_err += d * d;
    }
    let lz = match stage {
        StageMode::Off => None,
        StageMode::PerFrame => crate::container::stage_frame(&frame, &mut scratch.lz),
        StageMode::Shared(warm) => {
            // Block 0 is the dictionary itself: it de-stages dict-free.
            let dict = if index == 0 {
                &[][..]
            } else {
                warm.dict.as_slice()
            };
            crate::container::stage_frame_profiled(&frame, dict, &warm.lz, &mut scratch.lz)
        }
    };
    BlockOutcome {
        frame,
        lz,
        sq_err,
        numel: window.numel(),
        lo: window.min(),
        hi: window.max(),
    }
}

/// The streaming iterator over a variable's complete temporal windows plus
/// their total count — the one definition of the tiling contract (and its
/// too-few-timesteps diagnostic) shared by every compress path.
pub(crate) fn checked_windows(
    variable: &Variable,
    block_frames: usize,
) -> (blocks::TemporalWindows<'_>, usize) {
    let windows = blocks::temporal_windows_iter(variable, block_frames);
    let count = windows.count_total();
    assert!(
        count > 0,
        "variable '{}' has {} timesteps, too few for one {}-frame block",
        variable.name,
        variable.timesteps(),
        block_frames
    );
    (windows, count)
}

/// Shared flow-control state: the claim counter, the ticket window and the
/// reorder buffer, all under one lock.
struct FlowState {
    /// Lowest unclaimed window index; claims advance it in temporal order.
    next: usize,
    emitted: usize,
    resident: usize,
    peak_resident: usize,
    ready: BTreeMap<usize, BlockOutcome>,
    worker_panicked: bool,
    /// Set when the emit callback cancels the stream (e.g. the sink hit an
    /// I/O error): remaining windows are abandoned, not compressed.
    cancelled: bool,
}

struct Flow<'a> {
    variable: &'a Variable,
    block_frames: usize,
    count: usize,
    depth: usize,
    state: Mutex<FlowState>,
    /// Collector waits here for the next in-order outcome.
    outcome_posted: Condvar,
}

impl Flow<'_> {
    /// Claims the next window if the ticket window has room, materialising
    /// the block copy *after* releasing the lock.  Claim order under the
    /// lock *is* temporal order.  Returns `None` when the window is full or
    /// every index is claimed — callers exit or wait on the reorder buffer;
    /// nothing ever parks on a claim.
    fn try_claim(&self) -> Option<(usize, Tensor)> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.next >= self.count
            || state.worker_panicked
            || state.cancelled
            || state.next >= state.emitted + self.depth
        {
            return None;
        }
        let index = state.next;
        state.next += 1;
        state.resident += 1;
        state.peak_resident = state.peak_resident.max(state.resident);
        drop(state);
        let window = blocks::temporal_window_at(self.variable, self.block_frames, index);
        Some((index, window.data))
    }

    /// Posts a finished outcome into the reorder buffer.
    fn post(&self, index: usize, outcome: BlockOutcome) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.ready.insert(index, outcome);
        drop(state);
        self.outcome_posted.notify_all();
    }

    /// Marks the run failed so the collector stops instead of waiting for a
    /// block that will never arrive.
    fn poison(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.worker_panicked = true;
        drop(state);
        self.outcome_posted.notify_all();
    }

    /// Stops the stream early: no further windows are claimed; outstanding
    /// jobs drain out as no-ops.
    fn cancel(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.cancelled = true;
        drop(state);
        self.outcome_posted.notify_all();
    }
}

/// One pool job: claim at most one window, compress it, post the outcome.
/// Never blocks — a full ticket window or a drained variable makes it a
/// no-op (the collector tops jobs up as tickets free).  A codec panic
/// poisons the flow before re-throwing so the collector stops cleanly and
/// the pool's scope re-throws the original payload.
fn worker_step<C: Codec + ?Sized>(
    flow: &Flow<'_>,
    codec: &C,
    target: Option<ErrorTarget>,
    stage: &StageMode,
) {
    let run = catch_unwind(AssertUnwindSafe(|| {
        if let Some((index, window)) = flow.try_claim() {
            let outcome =
                compress_window_outcome_pooled(codec, &window, target, index as u64, stage);
            drop(window);
            flow.post(index, outcome);
        }
    }));
    if let Err(payload) = run {
        flow.poison();
        resume_unwind(payload);
    }
}

/// Streams every complete temporal window of `variable` through `codec` and
/// hands the outcomes to `emit` strictly in temporal order, holding at most
/// `config.queue_depth` blocks in flight.  `emit` runs on the calling
/// thread; emitting early frames overlaps with compressing later ones.
/// Returning `false` from `emit` cancels the stream: no further windows are
/// claimed or compressed (the sink writer uses this to abort on the first
/// I/O error instead of compressing the rest of the variable for nothing).
///
/// `stage` selects how the workers run the container's lossless stage per
/// frame (posted in [`BlockOutcome::lz`]): cold per-frame fits for a v3
/// stream, warm shared-profile coding for a v4 stream, or no staging at all
/// for a v2 stream.
///
/// A panic inside the codec — on a worker job or on the collector's helping
/// path — propagates out of this call with its original payload.
pub fn stream_compress_variable<C, F>(
    codec: &C,
    variable: &Variable,
    block_frames: usize,
    target: Option<ErrorTarget>,
    config: StreamConfig,
    stage: StageMode,
    mut emit: F,
) -> StreamMetrics
where
    C: Codec + ?Sized,
    F: FnMut(usize, BlockOutcome) -> bool,
{
    let stage = &stage;
    let (_, count) = checked_windows(variable, block_frames);
    let depth = config.queue_depth.max(1);
    let lookahead = match config.workers {
        0 => rayon::current_num_threads(),
        n => n,
    }
    .min(depth)
    .min(count)
    .max(1);

    let flow = Flow {
        variable,
        block_frames,
        count,
        depth,
        state: Mutex::new(FlowState {
            next: 0,
            emitted: 0,
            resident: 0,
            peak_resident: 0,
            ready: BTreeMap::new(),
            worker_panicked: false,
            cancelled: false,
        }),
        outcome_posted: Condvar::new(),
    };

    rayon::scope(|scope| {
        // Guarded like the worker jobs: if `emit` or the helping-path codec
        // call panics, the flow must be stopped before the panic unwinds
        // into the scope so outstanding jobs drain as no-ops and the
        // original payload is re-thrown.
        let flow = &flow;
        let collect = catch_unwind(AssertUnwindSafe(|| {
            let mut spawned = 0usize;
            let spawn_one = |spawned: &mut usize| {
                if *spawned < count {
                    *spawned += 1;
                    scope.spawn(move || worker_step(flow, codec, target, stage));
                }
            };
            for _ in 0..lookahead {
                spawn_one(&mut spawned);
            }

            let mut next_emit = 0usize;
            while next_emit < count {
                let mut state = flow.state.lock().unwrap_or_else(|e| e.into_inner());
                if state.worker_panicked {
                    // Exit without panicking: the worker's original payload
                    // is held by its pool batch, and the surrounding scope
                    // re-throws it once the jobs have drained — panicking
                    // here would mask the real error with a generic one.
                    break;
                }
                if let Some(outcome) = state.ready.remove(&next_emit) {
                    state.emitted += 1;
                    state.resident -= 1;
                    drop(state);
                    if !emit(next_emit, outcome) {
                        flow.cancel();
                        break;
                    }
                    next_emit += 1;
                    // A ticket just freed: keep the pool topped up with one
                    // job per emission (one-shot jobs never park, so this
                    // is the only replenishment point).
                    spawn_one(&mut spawned);
                    continue;
                }
                drop(state);
                // The next block is not ready.  Help: claim and compress
                // one ourselves; if the ticket window is full or everything
                // is claimed, the block we need is in flight — wait for a
                // post.
                if let Some((index, window)) = flow.try_claim() {
                    let outcome =
                        compress_window_outcome_pooled(codec, &window, target, index as u64, stage);
                    drop(window);
                    flow.post(index, outcome);
                } else {
                    let mut state = flow.state.lock().unwrap_or_else(|e| e.into_inner());
                    while !state.worker_panicked && !state.ready.contains_key(&next_emit) {
                        state = flow
                            .outcome_posted
                            .wait(state)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }));
        if let Err(payload) = collect {
            flow.cancel();
            resume_unwind(payload);
        }
    });

    let state = flow.state.into_inner().unwrap_or_else(|e| e.into_inner());
    debug_assert!(state.cancelled || state.worker_panicked || state.emitted == count);
    StreamMetrics {
        blocks: state.emitted,
        peak_resident: state.peak_resident,
    }
}
