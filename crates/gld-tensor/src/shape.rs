//! Shape arithmetic: dimension bookkeeping, row-major strides and NumPy-style
//! broadcasting rules.

use serde::{Deserialize, Serialize};

/// A tensor shape: an ordered list of dimension extents.
///
/// `Shape` is a thin, copy-friendly wrapper around `Vec<usize>` providing the
/// index arithmetic used throughout the crate.  The empty shape `[]` denotes a
/// scalar with one element.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major (C order) strides in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    /// Panics if the index rank does not match or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.0.len()
        );
        let strides = self.strides();
        let mut off = 0usize;
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            assert!(
                i < d,
                "index {i} out of bounds for axis {axis} with extent {d}"
            );
            off += i * strides[axis];
        }
        off
    }

    /// Converts a flat row-major offset back into a multi-dimensional index.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        let mut index = vec![0usize; self.0.len()];
        for axis in (0..self.0.len()).rev() {
            let d = self.0[axis];
            index[axis] = offset % d;
            offset /= d;
        }
        index
    }

    /// Returns true when the two shapes are broadcast-compatible under
    /// NumPy-style trailing alignment.
    pub fn broadcastable_with(&self, other: &Shape) -> bool {
        broadcast_shapes(self, other).is_some()
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Computes the broadcast shape of two shapes using NumPy trailing-dimension
/// rules, or `None` when they are incompatible.
///
/// Dimensions are aligned from the right; a pair of extents is compatible if
/// they are equal or either is 1.
pub fn broadcast_shapes(a: &Shape, b: &Shape) -> Option<Shape> {
    let rank = a.rank().max(b.rank());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < a.rank() {
            a.0[a.rank() - 1 - i]
        } else {
            1
        };
        let db = if i < b.rank() {
            b.0[b.rank() - 1 - i]
        } else {
            1
        };
        let d = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
        out[rank - 1 - i] = d;
    }
    Some(Shape(out))
}

/// Iterator over all multi-dimensional indices of a shape in row-major order.
pub struct IndexIter {
    dims: Vec<usize>,
    current: Vec<usize>,
    remaining: usize,
}

impl IndexIter {
    /// Creates a row-major index iterator over `shape`.
    pub fn new(shape: &Shape) -> Self {
        IndexIter {
            dims: shape.0.clone(),
            current: vec![0; shape.rank()],
            remaining: shape.numel(),
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        let item = self.current.clone();
        self.remaining -= 1;
        // Advance odometer.
        for axis in (0..self.dims.len()).rev() {
            self.current[axis] += 1;
            if self.current[axis] < self.dims[axis] {
                break;
            }
            self.current[axis] = 0;
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_and_unravel_are_inverse() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.numel() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        let s = Shape::new(&[2, 2]);
        s.offset(&[2, 0]);
    }

    #[test]
    fn broadcast_equal_shapes() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[2, 3]);
        assert_eq!(broadcast_shapes(&a, &b), Some(Shape::new(&[2, 3])));
    }

    #[test]
    fn broadcast_with_ones() {
        let a = Shape::new(&[4, 1, 3]);
        let b = Shape::new(&[2, 1]);
        assert_eq!(broadcast_shapes(&a, &b), Some(Shape::new(&[4, 2, 3])));
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::new(&[5, 7]);
        let b = Shape::new(&[]);
        assert_eq!(broadcast_shapes(&a, &b), Some(Shape::new(&[5, 7])));
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Shape::new(&[3, 2]);
        let b = Shape::new(&[4, 2]);
        assert_eq!(broadcast_shapes(&a, &b), None);
        assert!(!a.broadcastable_with(&b));
    }

    #[test]
    fn index_iter_visits_all_in_order() {
        let s = Shape::new(&[2, 3]);
        let all: Vec<_> = IndexIter::new(&s).collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn display_format() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(format!("{s}"), "[2, 3]");
    }
}
