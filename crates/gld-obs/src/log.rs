//! Leveled structured logging.
//!
//! Configured by `GLD_LOG=level[,json]` (or programmatically via [`init`]):
//! `level` is one of `off`, `error`, `warn`, `info` (the default), `debug`,
//! `trace`; appending `,json` switches the sink from the human-readable
//! line format to JSON-lines.  Events go to **stderr** in one write each,
//! and every emitted event is also appended to a bounded ring the flight
//! recorder drains.
//!
//! Use the macros ([`log_error!`](crate::log_error), [`log_warn!`](crate::log_warn),
//! [`log_info!`](crate::log_info), [`log_debug!`](crate::log_debug)) —
//! free-form `key=value` context goes before the format string:
//!
//! ```
//! gld_obs::log_info!("serviced", conn = 3, req = 9; "admitted {} bytes", 128);
//! ```

use crate::now_ns;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Mutex, OnceLock};

/// Log severity, ordered `Error < Warn < Info < Debug < Trace`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process (or a connection) is in trouble.
    Error,
    /// Unexpected but survivable.
    Warn,
    /// Lifecycle events worth a line in production.
    Info,
    /// Per-request noise for debugging.
    Debug,
    /// Everything.
    Trace,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

struct Config {
    /// `None` means logging is off.
    level: Option<Level>,
    json: bool,
}

static CONFIG: OnceLock<Config> = OnceLock::new();

fn parse_env() -> Config {
    let spec = std::env::var("GLD_LOG").unwrap_or_default();
    let mut level = Some(Level::Info);
    let mut json = false;
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match part.to_ascii_lowercase().as_str() {
            "off" | "none" => level = None,
            "error" => level = Some(Level::Error),
            "warn" => level = Some(Level::Warn),
            "info" => level = Some(Level::Info),
            "debug" => level = Some(Level::Debug),
            "trace" => level = Some(Level::Trace),
            "json" => json = true,
            _ => {} // Unknown words are ignored, like unknown ext bits.
        }
    }
    Config { level, json }
}

fn config() -> &'static Config {
    CONFIG.get_or_init(parse_env)
}

/// Sets the level and format explicitly, overriding `GLD_LOG`.  First call
/// wins (including the implicit env-driven one); later calls are no-ops.
pub fn init(level: Option<Level>, json: bool) {
    let _ = CONFIG.set(Config { level, json });
}

/// Whether events at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    config().level.is_some_and(|max| level <= max)
}

/// One structured log event, as the flight recorder retains it.
#[derive(Clone, Debug)]
pub struct LogEvent {
    /// Nanoseconds since the [`crate::now_ns`] epoch.
    pub t_ns: u64,
    /// Severity.
    pub level: Level,
    /// Component name (e.g. `"serviced"`).
    pub target: String,
    /// `key=value` context pairs.
    pub fields: Vec<(&'static str, String)>,
    /// The formatted message.
    pub msg: String,
}

/// Log events retained for the flight recorder.
pub const LOG_RING_CAPACITY: usize = 512;

fn log_ring() -> &'static Mutex<VecDeque<LogEvent>> {
    static RING: OnceLock<Mutex<VecDeque<LogEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(LOG_RING_CAPACITY)))
}

/// Recent log events, oldest first — the flight recorder's log feed.
pub fn collect() -> Vec<LogEvent> {
    log_ring()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emits one event (the macros call this).  Events below the configured
/// level are dropped before any formatting by the macro's `enabled` check;
/// calling this directly always records into the flight ring.
pub fn emit(level: Level, target: &str, fields: Vec<(&'static str, String)>, msg: String) {
    let event = LogEvent {
        t_ns: now_ns(),
        level,
        target: target.to_string(),
        fields,
        msg,
    };
    {
        let mut ring = log_ring().lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == LOG_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(event.clone());
    }
    if !enabled(level) {
        return;
    }
    let line = if config().json {
        render_json(&event)
    } else {
        render_human(&event)
    };
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

fn render_human(e: &LogEvent) -> String {
    let secs = e.t_ns as f64 / 1e9;
    let mut line = format!(
        "[{secs:10.6}] {:5} {}: {}",
        e.level.as_str().to_ascii_uppercase(),
        e.target,
        e.msg
    );
    for (k, v) in &e.fields {
        line.push_str(&format!(" {k}={v}"));
    }
    line
}

/// The JSON-lines rendering shared by the logger sink and the flight
/// recorder dump.
pub fn render_json(e: &LogEvent) -> String {
    let mut line = format!(
        "{{\"kind\":\"log\",\"t_ns\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
        e.t_ns,
        e.level.as_str(),
        json_escape(&e.target),
        json_escape(&e.msg)
    );
    for (k, v) in &e.fields {
        line.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    line.push('}');
    line
}

/// Core logging macro: `gld_log!(Level::Info, "target", k = v; "fmt {}", arg)`.
/// Prefer the per-level wrappers.
#[macro_export]
macro_rules! gld_log {
    ($level:expr, $target:expr, $($key:ident = $value:expr),+ ; $($fmt:tt)+) => {
        if $crate::log::enabled($level) {
            $crate::log::emit(
                $level,
                $target,
                vec![$((stringify!($key), format!("{}", $value))),+],
                format!($($fmt)+),
            );
        }
    };
    ($level:expr, $target:expr, $($fmt:tt)+) => {
        if $crate::log::enabled($level) {
            $crate::log::emit($level, $target, Vec::new(), format!($($fmt)+));
        }
    };
}

/// `log_error!("target", conn = 3; "msg {}", x)` — error-level event.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($rest:tt)+) => {
        $crate::gld_log!($crate::log::Level::Error, $target, $($rest)+)
    };
}

/// Warn-level event; see [`log_error!`](crate::log_error).
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($rest:tt)+) => {
        $crate::gld_log!($crate::log::Level::Warn, $target, $($rest)+)
    };
}

/// Info-level event; see [`log_error!`](crate::log_error).
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($rest:tt)+) => {
        $crate::gld_log!($crate::log::Level::Info, $target, $($rest)+)
    };
}

/// Debug-level event; see [`log_error!`](crate::log_error).
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($rest:tt)+) => {
        $crate::gld_log!($crate::log::Level::Debug, $target, $($rest)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Trace);
        if std::env::var("GLD_LOG").is_err() {
            let c = parse_env();
            assert_eq!(c.level, Some(Level::Info));
            assert!(!c.json);
        }
    }

    #[test]
    fn emit_lands_in_the_flight_ring() {
        // Bypass the macro's `enabled` gate so the test is independent of
        // whatever GLD_LOG the environment carries.
        emit(
            Level::Info,
            "test-log",
            vec![("conn", "1".to_string())],
            format!("hello {}", "ring"),
        );
        let events = collect();
        let e = events
            .iter()
            .rev()
            .find(|e| e.target == "test-log")
            .expect("logged");
        assert_eq!(e.msg, "hello ring");
        assert_eq!(e.fields, vec![("conn", "1".to_string())]);
        let json = render_json(e);
        assert!(json.contains("\"kind\":\"log\""));
        assert!(json.contains("\"conn\":\"1\""));
    }
}
