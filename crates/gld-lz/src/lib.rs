//! # gld-lz
//!
//! A general-purpose transparent lossless codec — the zstd-style entropy
//! stage layered over the domain-specific compressors' frame payloads
//! (container v3's per-frame `Lz` stage, the service's negotiated response
//! stage).
//!
//! The design is a deliberately small LZ77 + range-coder pipeline:
//!
//! * a **greedy/lazy match finder** over a hash-chain window
//!   ([`LzScratch`] holds the head/chain tables, reset per stream so output
//!   never depends on scratch history);
//! * **sequences** — literal bytes and `(length, offset)` matches — coded
//!   with the byte-wise range coder from `gld-entropy` under header-free
//!   *adaptive* models ([`gld_entropy::adaptive`]): a flag bit per
//!   sequence, an adaptive byte tree for literals, and log-slot +
//!   raw-bits coding for lengths and offsets;
//! * a **stored-block fallback**: when the coded stream does not beat the
//!   input, the stream is one tag byte plus the input verbatim, so
//!   incompressible payloads cost exactly one byte of framing.
//!
//! The stream is self-describing (`tag + declared decompressed length`) and
//! the decoder is hardened the same way the `GLDS` protocol decoders are:
//! arbitrary, truncated or bit-flipped input never panics, never allocates
//! beyond the declared decompressed size (which is itself capped by the
//! caller), and always surfaces a typed [`LzError`]
//! (`tests/lz_fuzz.rs` mirrors `protocol_fuzz.rs`).
//!
//! ## Stream layout
//!
//! ```text
//! byte 0        tag: 0 = stored, 1 = LZ
//! stored:       the content, verbatim
//! LZ:           LEB128 decompressed length, then one range-coded stream:
//!                 per sequence: flag bit (0 = literal, 1 = match)
//!                   literal: one byte through the adaptive byte tree
//!                   match:   length  = MIN_MATCH + slot(len tree)
//!                            offset  = 1 + slot(offset tree)
//!                 slot(v): k = floor(log2(v+1)) through a 5-bit tree,
//!                          then the low k bits of v+1 as bypass bits
//! ```
//!
//! Decoding stops exactly when the declared length has been produced; there
//! is no end marker (the range coder's tail only disambiguates the final
//! interval).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use gld_entropy::adaptive::{AdaptiveBitModel, AdaptiveTreeModel, PROB_TOTAL};
use gld_entropy::{RangeDecoder, RangeEncoder};
use gld_kernels::{kernels, KernelBackend};
use std::fmt;

/// Pre-resolved latency histograms for the stage's public entry points:
/// one registry lookup per process per family, a couple of atomic adds per
/// record — the codec hot loops never touch the registry lock.
fn compress_ns() -> &'static gld_obs::Histogram {
    static H: std::sync::OnceLock<std::sync::Arc<gld_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| gld_obs::registry::histogram("gld_lz_compress_ns", &[]))
}

fn decompress_ns() -> &'static gld_obs::Histogram {
    static H: std::sync::OnceLock<std::sync::Arc<gld_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| gld_obs::registry::histogram("gld_lz_decompress_ns", &[]))
}

/// Stream tag byte: the content follows verbatim.
pub const TAG_STORED: u8 = 0;

/// Stream tag byte: LEB128 length + range-coded LZ sequences follow.
pub const TAG_LZ: u8 = 1;

/// Shortest match the encoder emits (and the decoder's implied minimum).
pub const MIN_MATCH: usize = 4;

/// Hard cap on a declared decompressed length (1 GiB) — the same bound the
/// wire protocol puts on a frame body.  Callers typically pass a lower
/// limit.
pub const MAX_RAW_LEN: usize = 1 << 30;

/// Hash-table width of the match finder (entries, not bytes).
const HASH_BITS: u32 = 15;

/// How many chain links the match finder follows before giving up.
const MAX_CHAIN: usize = 48;

/// Slot-tree width: slots 0..=31 cover every `u32` length/offset.
const SLOT_BITS: u32 = 5;

/// "No position" marker in the hash head / chain tables.
const NIL: u32 = u32::MAX;

/// Typed decode failures.  The decoder never panics: arbitrary input yields
/// either the decompressed bytes or exactly one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LzError {
    /// The stream is empty.
    Empty,
    /// The tag byte is neither stored nor LZ.
    BadTag(u8),
    /// The declared decompressed length exceeds the caller's limit.
    TooLarge {
        /// Length the stream declared.
        declared: u64,
        /// Limit the caller enforced.
        max: usize,
    },
    /// The length prefix is malformed or the coded stream ends before the
    /// declared content was produced.
    Truncated,
    /// A match referenced bytes before the start of the output.
    BadOffset {
        /// The offending offset.
        offset: u64,
        /// Bytes produced when it was decoded.
        produced: usize,
    },
    /// A match would run past the declared decompressed length.
    Overrun,
    /// A serialised warm-start profile has the wrong size.
    BadProfile {
        /// Size of the rejected snapshot in bytes.
        len: usize,
        /// The only size a valid snapshot can have.
        expected: usize,
    },
}

impl fmt::Display for LzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LzError::Empty => write!(f, "empty stage stream"),
            LzError::BadTag(t) => write!(f, "unknown stage stream tag {t}"),
            LzError::TooLarge { declared, max } => {
                write!(
                    f,
                    "declared decompressed length {declared} exceeds limit {max}"
                )
            }
            LzError::Truncated => write!(f, "stage stream ended before the declared content"),
            LzError::BadOffset { offset, produced } => {
                write!(
                    f,
                    "match offset {offset} with only {produced} bytes produced"
                )
            }
            LzError::Overrun => write!(f, "match runs past the declared decompressed length"),
            LzError::BadProfile { len, expected } => {
                write!(f, "profile snapshot of {len} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for LzError {}

/// The adaptive models of one sequence stream, bundled so they reset (and
/// live in [`LzScratch`]) together.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SequenceModels {
    flag: AdaptiveBitModel,
    literal: AdaptiveTreeModel,
    len_slot: AdaptiveTreeModel,
    off_slot: AdaptiveTreeModel,
}

/// Number of probability estimates one [`SequenceModels`] snapshot holds:
/// the flag bit, the byte tree, and the two slot trees.
const SNAPSHOT_PROBS: usize = 1 + (1 << 8) + (1 << SLOT_BITS) + (1 << SLOT_BITS);

/// Serialised size of a warm-start profile in bytes (one `u16` per
/// probability, little-endian).
pub const PROFILE_BYTES: usize = SNAPSHOT_PROBS * 2;

impl SequenceModels {
    fn new() -> Self {
        SequenceModels {
            flag: AdaptiveBitModel::new(),
            literal: AdaptiveTreeModel::new(8),
            len_slot: AdaptiveTreeModel::new(SLOT_BITS),
            off_slot: AdaptiveTreeModel::new(SLOT_BITS),
        }
    }

    fn reset(&mut self) {
        self.flag.reset();
        self.literal.reset();
        self.len_slot.reset();
        self.off_slot.reset();
    }

    /// Flattens every probability estimate, in a fixed field order.
    fn snapshot(&self) -> Vec<u16> {
        let mut probs = Vec::with_capacity(SNAPSHOT_PROBS);
        probs.push(self.flag.probability());
        self.literal.snapshot_into(&mut probs);
        self.len_slot.snapshot_into(&mut probs);
        self.off_slot.snapshot_into(&mut probs);
        debug_assert_eq!(probs.len(), SNAPSHOT_PROBS);
        probs
    }

    /// Rebuilds the model set from a snapshot (`probs` must be exactly
    /// [`SNAPSHOT_PROBS`] long — callers validate first).  Each estimate is
    /// clamped off the probability poles on restore, so even an adversarial
    /// snapshot yields models that can code every symbol.
    fn restore(probs: &[u16]) -> Self {
        assert_eq!(probs.len(), SNAPSHOT_PROBS, "snapshot length mismatch");
        let mut models = SequenceModels::new();
        models.flag = AdaptiveBitModel::from_probability(probs[0]);
        let mut off = 1;
        let lit = models.literal.node_count();
        models.literal.restore_from(&probs[off..off + lit]);
        off += lit;
        let slots = models.len_slot.node_count();
        models.len_slot.restore_from(&probs[off..off + slots]);
        off += slots;
        models.off_slot.restore_from(&probs[off..off + slots]);
        models
    }
}

/// Fixed-point scale of a frozen symbol distribution (total frequency ≈
/// `1 << 15`, comfortably inside the range coder's `MAX_TOTAL` of `1 << 16`
/// even after every zero-rounded symbol is bumped to frequency 1).
const STATIC_SCALE_BITS: u32 = 15;

/// Slot count cap of a frozen model's decode lookup table.
const STATIC_LUT_SLOTS: usize = 1024;

/// One frozen binary probability: codes like [`AdaptiveBitModel`] but never
/// adapts, so encode/decode are a single range-coder interval each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StaticBitModel {
    p0: u16,
}

impl StaticBitModel {
    #[inline]
    fn encode(&self, enc: &mut RangeEncoder, bit: bool) {
        let p0 = u32::from(self.p0);
        if bit {
            enc.encode(p0, PROB_TOTAL, PROB_TOTAL);
        } else {
            enc.encode(0, p0, PROB_TOTAL);
        }
    }

    #[inline]
    fn decode(&self, dec: &mut RangeDecoder<'_>) -> bool {
        let p0 = u32::from(self.p0);
        let bit = dec.decode_target(PROB_TOTAL) >= p0;
        if bit {
            dec.decode_update(p0, PROB_TOTAL, PROB_TOTAL);
        } else {
            dec.decode_update(0, p0, PROB_TOTAL);
        }
        bit
    }
}

/// A frozen order-0 symbol distribution flattened out of an adaptive
/// bit-tree snapshot: one cumulative-frequency interval per symbol instead
/// of `bits` adaptive bit codings, plus a slot lookup table on the decode
/// side.  This is where the warm path's speed comes from — a profiled
/// literal costs one range-coder operation, not eight bit-model updates.
///
/// Derivation is integer-only (fixed-point products of the tree's node
/// probabilities), so every build and backend derives bit-identical tables
/// from the same snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StaticTreeModel {
    cdf: Vec<u32>,
    lut: Vec<u16>,
    shift: u32,
}

impl StaticTreeModel {
    /// Flattens a tree snapshot (heap-ordered node probabilities, root at
    /// index 1) into per-symbol frequencies: each symbol's probability is
    /// the fixed-point product of its path's branch probabilities.
    fn from_probs(bits: u32, probs: &[u16]) -> StaticTreeModel {
        let n = 1usize << bits;
        debug_assert_eq!(probs.len(), n);
        let mut cdf = Vec::with_capacity(n + 1);
        cdf.push(0u32);
        let mut total = 0u32;
        for s in 0..n as u32 {
            let mut ctx = 1usize;
            let mut acc: u64 = 1 << STATIC_SCALE_BITS;
            for i in (0..bits).rev() {
                let bit = (s >> i) & 1 == 1;
                let p0 = u64::from(probs[ctx].clamp(1, (PROB_TOTAL - 1) as u16));
                let f = if bit { u64::from(PROB_TOTAL) - p0 } else { p0 };
                acc = (acc * f) >> 12;
                ctx = (ctx << 1) | usize::from(bit);
            }
            total += (acc as u32).max(1);
            cdf.push(total);
        }
        let mut shift = 0u32;
        while (((total - 1) >> shift) as usize) + 1 > STATIC_LUT_SLOTS {
            shift += 1;
        }
        let n_slots = (((total - 1) >> shift) as usize) + 1;
        let mut lut = Vec::with_capacity(n_slots);
        let mut bin = 0usize;
        for slot in 0..n_slots {
            let target = (slot as u32) << shift;
            while cdf[bin + 1] <= target {
                bin += 1;
            }
            lut.push(bin as u16);
        }
        StaticTreeModel { cdf, lut, shift }
    }

    #[inline]
    fn total(&self) -> u32 {
        *self.cdf.last().unwrap()
    }

    #[inline]
    fn encode(&self, enc: &mut RangeEncoder, s: u32) {
        let s = s as usize;
        enc.encode(self.cdf[s], self.cdf[s + 1], self.total());
    }

    #[inline]
    fn decode(&self, dec: &mut RangeDecoder<'_>) -> u32 {
        let total = self.total();
        let target = dec.decode_target(total);
        let mut bin = usize::from(self.lut[(target >> self.shift) as usize]);
        while self.cdf[bin + 1] <= target {
            bin += 1;
        }
        dec.decode_update(self.cdf[bin], self.cdf[bin + 1], total);
        bin as u32
    }
}

/// The frozen coding tables of one profile, derived deterministically from
/// the adaptive snapshot.  The warm paths code sequences against these
/// without any per-symbol model updates (semi-static coding): the snapshot
/// already carries the converged estimates, so freezing trades a sliver of
/// in-frame adaptation for a much shorter hot loop.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StaticSequenceModels {
    flag: StaticBitModel,
    literal: StaticTreeModel,
    len_slot: StaticTreeModel,
    off_slot: StaticTreeModel,
}

impl StaticSequenceModels {
    fn derive(models: &SequenceModels) -> Self {
        let probs = models.snapshot();
        let lit = 1usize << 8;
        let slots = 1usize << SLOT_BITS;
        StaticSequenceModels {
            flag: StaticBitModel {
                p0: probs[0].clamp(1, (PROB_TOTAL - 1) as u16),
            },
            literal: StaticTreeModel::from_probs(8, &probs[1..1 + lit]),
            len_slot: StaticTreeModel::from_probs(SLOT_BITS, &probs[1 + lit..1 + lit + slots]),
            off_slot: StaticTreeModel::from_probs(SLOT_BITS, &probs[1 + lit + slots..]),
        }
    }
}

/// A warm-start profile for the stage: the adaptive sequence models of a
/// previously coded stream, snapshotted after training, plus the frozen
/// coding tables derived from that snapshot.  Streams compressed with a
/// profile are coded **semi-statically** against the converged estimates
/// (no cold-model ramp, no per-symbol adaptation), and — combined with a
/// seed dictionary — let every frame of a variable reuse what frame 0
/// taught the coder.
///
/// A profile is pure *coder* state: the bytes it produces decode only with
/// the same profile (the container's profile table carries it exactly once
/// per variable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LzProfile {
    models: SequenceModels,
    frozen: StaticSequenceModels,
}

impl LzProfile {
    /// Trains a profile on `sample` by compressing it cold and snapshotting
    /// the adaptive models afterwards.  The sample itself is discarded —
    /// callers that also want a seed dictionary pass the sample bytes to
    /// [`compress_profiled_into`] separately.
    pub fn fit(sample: &[u8], scratch: &mut LzScratch) -> Self {
        let mut sink = Vec::new();
        compress_into(sample, scratch, &mut sink);
        let models = scratch.models.clone();
        let frozen = StaticSequenceModels::derive(&models);
        LzProfile { models, frozen }
    }

    /// Serialises the profile: every probability estimate as a
    /// little-endian `u16`, fixed layout, [`PROFILE_BYTES`] total.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PROFILE_BYTES);
        for p in self.models.snapshot() {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Deserialises a profile written by [`LzProfile::to_bytes`].  The only
    /// structural check needed is the exact size; the probability estimates
    /// themselves are clamped into valid range on restore, so arbitrary
    /// bytes always yield a usable (if useless) profile — corruption is
    /// caught by the container's CRCs, not here.
    pub fn try_from_bytes(bytes: &[u8]) -> Result<Self, LzError> {
        if bytes.len() != PROFILE_BYTES {
            return Err(LzError::BadProfile {
                len: bytes.len(),
                expected: PROFILE_BYTES,
            });
        }
        let probs: Vec<u16> = bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        let models = SequenceModels::restore(&probs);
        let frozen = StaticSequenceModels::derive(&models);
        Ok(LzProfile { models, frozen })
    }
}

/// Reusable compressor state: the match finder's hash head and chain
/// tables, the adaptive models and the coded-stream buffer.  One scratch
/// per worker thread makes steady-state stage compression allocation-free
/// (`CodecScratch` in `gld-core` carries one); every table is reset at the
/// start of each stream, so **output never depends on what the scratch was
/// previously used for**.
#[derive(Debug)]
pub struct LzScratch {
    head: Vec<u32>,
    chain: Vec<u32>,
    /// Per-position 4-byte hashes, batch-computed up front by the active
    /// kernel backend so the match-finder loop never rehashes.
    hashes: Vec<u32>,
    models: SequenceModels,
    /// Recycled backing buffer for the range encoder's output.
    stream_buf: Vec<u8>,
    /// Dictionary-primed match window (`dict ‖ input`), used only by the
    /// profiled compression path.
    window: Vec<u8>,
}

impl Default for LzScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl LzScratch {
    /// Creates an empty scratch (tables are allocated lazily on first use).
    pub fn new() -> Self {
        LzScratch {
            head: Vec::new(),
            chain: Vec::new(),
            hashes: Vec::new(),
            models: SequenceModels::new(),
            stream_buf: Vec::new(),
            window: Vec::new(),
        }
    }

    /// Rebuilds the match-finder tables over `window` and pre-seeds the
    /// hash chains with every position below `base` (the dictionary
    /// prefix), so matching at `base..` can reach back into the dictionary
    /// from the first byte.
    fn prepare_tables(&mut self, window: &[u8], base: usize) {
        self.head.clear();
        self.head.resize(1 << HASH_BITS, NIL);
        self.chain.clear();
        self.chain.resize(window.len(), NIL);
        self.hashes.clear();
        self.hashes.resize(window.len().saturating_sub(3), 0);
        kernels().hash4_batch(window, HASH_BITS, &mut self.hashes);
        for p in 0..base {
            insert(&self.hashes, p, &mut self.head, &mut self.chain);
        }
    }

    fn prepare(&mut self, input: &[u8]) {
        self.prepare_tables(input, 0);
        self.models.reset();
    }
}

/// Slot decomposition of a value: `(k, low)` with `v + 1 = (1 << k) | low`.
#[inline]
fn slot_of(v: u32) -> (u32, u32) {
    let n = v + 1;
    let k = 31 - n.leading_zeros();
    (k, n - (1 << k))
}

#[inline]
fn encode_slot(enc: &mut RangeEncoder, tree: &mut AdaptiveTreeModel, v: u32) {
    let (k, low) = slot_of(v);
    tree.encode(enc, k);
    if k > 0 {
        enc.encode_bits_raw(u64::from(low), k);
    }
}

#[inline]
fn decode_slot(dec: &mut RangeDecoder<'_>, tree: &mut AdaptiveTreeModel) -> u64 {
    let k = tree.decode(dec);
    let low = if k > 0 { dec.decode_bits_raw(k) } else { 0 };
    ((1u64 << k) | low) - 1
}

#[inline]
fn encode_slot_static(enc: &mut RangeEncoder, tree: &StaticTreeModel, v: u32) {
    let (k, low) = slot_of(v);
    tree.encode(enc, k);
    if k > 0 {
        enc.encode_bits_raw(u64::from(low), k);
    }
}

#[inline]
fn decode_slot_static(dec: &mut RangeDecoder<'_>, tree: &StaticTreeModel) -> u64 {
    let k = tree.decode(dec);
    let low = if k > 0 { dec.decode_bits_raw(k) } else { 0 };
    ((1u64 << k) | low) - 1
}

/// Appends a LEB128-encoded `u64`.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 `u64`, returning it and the bytes consumed.  A prefix
/// longer than ten bytes (the widest legal `u64`) is rejected as oversized;
/// bits shifted past the top of the accumulator on a garbage tenth byte are
/// harmless because the declared length is range-checked by the caller.
fn read_varint(bytes: &[u8]) -> Result<(u64, usize), LzError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in bytes.iter().enumerate().take(10) {
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    if bytes.len() >= 10 {
        return Err(LzError::TooLarge {
            declared: u64::MAX,
            max: MAX_RAW_LEN,
        });
    }
    Err(LzError::Truncated)
}

/// The best match the finder produced for one position.
#[derive(Clone, Copy)]
struct Match {
    len: usize,
    dist: usize,
}

/// Longest match for `input[at..]` among the (bounded) hash chain, most
/// recent candidates first — ties therefore resolve to the closest
/// occurrence, which codes cheapest.  Hashes come precomputed from the
/// scratch's batch table; the extension scan runs on the active backend.
#[inline]
fn find_match(
    input: &[u8],
    hashes: &[u32],
    at: usize,
    head: &[u32],
    chain: &[u32],
    kern: &dyn KernelBackend,
) -> Option<Match> {
    let remaining = input.len() - at;
    if remaining < MIN_MATCH {
        return None;
    }
    let first4 = &input[at..at + 4];
    let mut pos = head[hashes[at] as usize];
    let mut best: Option<Match> = None;
    let mut depth = 0usize;
    while pos != NIL && depth < MAX_CHAIN {
        let p = pos as usize;
        // Quick reject on the first four bytes before the full extension.
        if input[p..p + 4] == *first4 {
            let len =
                4 + kern.match_len(&input[p + 4..p + remaining], &input[at + 4..at + remaining]);
            if best.is_none_or(|b| len > b.len) {
                best = Some(Match { len, dist: at - p });
                if len == remaining {
                    break;
                }
            }
        }
        pos = chain[p];
        depth += 1;
    }
    best
}

#[inline]
fn insert(hashes: &[u32], at: usize, head: &mut [u32], chain: &mut [u32]) {
    if let Some(&h) = hashes.get(at) {
        chain[at] = head[h as usize];
        head[h as usize] = at as u32;
    }
}

/// Compresses `input`, appending one self-describing stage stream to `out`.
/// Incompressible input falls back to a stored block (one tag byte of
/// framing).  The output depends only on `input`, never on the scratch's
/// previous contents.
///
/// # Panics
/// Panics if `input` exceeds [`MAX_RAW_LEN`]: the format cannot declare a
/// larger stream (the decoder clamps every caller cap to [`MAX_RAW_LEN`]),
/// so silently encoding one would produce a stream no decoder accepts —
/// and match offsets/lengths past `u32` would wrap.  Frame payloads in this
/// stack are bounded well below the cap by the wire protocol's body limit.
pub fn compress_into(input: &[u8], scratch: &mut LzScratch, out: &mut Vec<u8>) {
    assert!(
        input.len() <= MAX_RAW_LEN,
        "input of {} bytes exceeds the stage format's {MAX_RAW_LEN}-byte cap",
        input.len()
    );
    let t0_ns = gld_obs::now_ns();
    let start = out.len();
    out.push(TAG_LZ);
    write_varint(out, input.len() as u64);
    let prefix = out.len() - start;

    scratch.prepare(input);
    let mut enc = RangeEncoder::with_buffer(std::mem::take(&mut scratch.stream_buf));
    code_sequences(input, 0, scratch, &mut enc);

    let stream = enc.finish();
    if prefix + stream.len() > input.len() {
        // Stored fallback: the coded stream cannot beat tag + verbatim.
        out.truncate(start);
        out.push(TAG_STORED);
        out.extend_from_slice(input);
    } else {
        out.extend_from_slice(&stream);
    }
    scratch.stream_buf = stream;
    compress_ns().record(gld_obs::now_ns().saturating_sub(t0_ns));
}

/// Codes `window[base..]` as one sequence stream against the prepared
/// scratch tables, where `window[..base]` is a pre-inserted dictionary
/// prefix matches may reach into (offsets simply extend past the content's
/// start; the decoder pre-seeds its output with the same prefix).  `base = 0`
/// is the ordinary dictionary-free stream.
fn code_sequences(window: &[u8], base: usize, scratch: &mut LzScratch, enc: &mut RangeEncoder) {
    let models = &mut scratch.models;
    let kern = kernels();
    let head = &mut scratch.head;
    let chain = &mut scratch.chain;
    let hashes = &scratch.hashes[..];
    let mut i = base;
    // The lazy step's lookahead match is carried into the next iteration
    // instead of being recomputed there — the match finder walks each
    // position's chain once, not twice.
    let mut pending: Option<Match> = None;
    while i < window.len() {
        let found = pending
            .take()
            .or_else(|| find_match(window, hashes, i, head, chain, kern));
        match found {
            Some(m) => {
                // Position `i` joins the chains either way (a match covers
                // it; a deferring literal emits it) — inserting before the
                // lookahead lets `i + 1` see it as a candidate source.
                insert(hashes, i, head, chain);
                // Lazy step: if starting one byte later yields a strictly
                // longer match, emit a literal now and take that match at
                // the next iteration.
                let next = if i + 1 < window.len() {
                    find_match(window, hashes, i + 1, head, chain, kern)
                } else {
                    None
                };
                match next {
                    Some(n) if n.len > m.len => {
                        models.flag.encode(enc, false);
                        models.literal.encode(enc, u32::from(window[i]));
                        i += 1;
                        pending = next;
                    }
                    _ => {
                        models.flag.encode(enc, true);
                        encode_slot(enc, &mut models.len_slot, (m.len - MIN_MATCH) as u32);
                        encode_slot(enc, &mut models.off_slot, (m.dist - 1) as u32);
                        for p in i + 1..i + m.len {
                            insert(hashes, p, head, chain);
                        }
                        i += m.len;
                    }
                }
            }
            None => {
                models.flag.encode(enc, false);
                models.literal.encode(enc, u32::from(window[i]));
                insert(hashes, i, head, chain);
                i += 1;
            }
        }
    }
}

/// The warm twin of [`code_sequences`]: identical match finding and stream
/// layout, but every symbol is coded against the profile's frozen tables —
/// no model state is cloned, touched or updated.  This keeps the profiled
/// hot loop to one range-coder interval per literal (versus nine adaptive
/// bit codings cold), which is where the warm path's stage-compress
/// speedup comes from.
fn code_sequences_static(
    window: &[u8],
    base: usize,
    frozen: &StaticSequenceModels,
    scratch: &mut LzScratch,
    enc: &mut RangeEncoder,
) {
    let kern = kernels();
    let head = &mut scratch.head;
    let chain = &mut scratch.chain;
    let hashes = &scratch.hashes[..];
    let mut i = base;
    let mut pending: Option<Match> = None;
    while i < window.len() {
        let found = pending
            .take()
            .or_else(|| find_match(window, hashes, i, head, chain, kern));
        match found {
            Some(m) => {
                insert(hashes, i, head, chain);
                let next = if i + 1 < window.len() {
                    find_match(window, hashes, i + 1, head, chain, kern)
                } else {
                    None
                };
                match next {
                    Some(n) if n.len > m.len => {
                        frozen.flag.encode(enc, false);
                        frozen.literal.encode(enc, u32::from(window[i]));
                        i += 1;
                        pending = next;
                    }
                    _ => {
                        frozen.flag.encode(enc, true);
                        encode_slot_static(enc, &frozen.len_slot, (m.len - MIN_MATCH) as u32);
                        encode_slot_static(enc, &frozen.off_slot, (m.dist - 1) as u32);
                        for p in i + 1..i + m.len {
                            insert(hashes, p, head, chain);
                        }
                        i += m.len;
                    }
                }
            }
            None => {
                frozen.flag.encode(enc, false);
                frozen.literal.encode(enc, u32::from(window[i]));
                insert(hashes, i, head, chain);
                i += 1;
            }
        }
    }
}

/// [`compress_into`] returning a fresh `Vec`.
pub fn compress(input: &[u8], scratch: &mut LzScratch) -> Vec<u8> {
    let mut out = Vec::new();
    compress_into(input, scratch, &mut out);
    out
}

/// Compresses `input` and returns the stream only when it is **strictly
/// smaller** than the input — the adaptive per-frame stage decision the v3
/// container makes (`None` means "store the frame unstaged").
pub fn compress_if_smaller(input: &[u8], scratch: &mut LzScratch) -> Option<Vec<u8>> {
    let out = compress(input, scratch);
    (out.len() < input.len()).then_some(out)
}

/// Compresses `input` warm: symbols are coded **semi-statically** against
/// `profile`'s frozen tables (the converged estimates of the fitting pass,
/// never updated mid-stream), and matches may reach back into `dict` (a
/// caller-supplied seed dictionary logically prefixed to the input — the v4
/// container uses the variable's first frame).  The stream layout is
/// identical to [`compress_into`]; it simply decodes only with
/// [`decompress_profiled`] under the same profile and dictionary.
///
/// # Panics
/// Panics if `dict.len() + input.len()` exceeds [`MAX_RAW_LEN`] (offsets
/// must stay representable), same contract as [`compress_into`].
pub fn compress_profiled_into(
    input: &[u8],
    dict: &[u8],
    profile: &LzProfile,
    scratch: &mut LzScratch,
    out: &mut Vec<u8>,
) {
    assert!(
        dict.len() + input.len() <= MAX_RAW_LEN,
        "window of {} bytes exceeds the stage format's {MAX_RAW_LEN}-byte cap",
        dict.len() + input.len()
    );
    let t0_ns = gld_obs::now_ns();
    let start = out.len();
    out.push(TAG_LZ);
    write_varint(out, input.len() as u64);
    let prefix = out.len() - start;

    let mut window = std::mem::take(&mut scratch.window);
    window.clear();
    window.extend_from_slice(dict);
    window.extend_from_slice(input);
    scratch.prepare_tables(&window, dict.len());
    let mut enc = RangeEncoder::with_buffer(std::mem::take(&mut scratch.stream_buf));
    code_sequences_static(&window, dict.len(), &profile.frozen, scratch, &mut enc);
    scratch.window = window;

    let stream = enc.finish();
    if prefix + stream.len() > input.len() {
        // Stored fallback still applies: a warm stream that cannot beat
        // tag + verbatim stores, and stored blocks decode without the
        // profile or dictionary at all.
        out.truncate(start);
        out.push(TAG_STORED);
        out.extend_from_slice(input);
    } else {
        out.extend_from_slice(&stream);
    }
    scratch.stream_buf = stream;
    compress_ns().record(gld_obs::now_ns().saturating_sub(t0_ns));
}

/// [`compress_profiled_into`] returning a fresh `Vec`.
pub fn compress_profiled(
    input: &[u8],
    dict: &[u8],
    profile: &LzProfile,
    scratch: &mut LzScratch,
) -> Vec<u8> {
    let mut out = Vec::new();
    compress_profiled_into(input, dict, profile, scratch, &mut out);
    out
}

/// [`compress_profiled`] with the v3/v4 container's stage decision: the
/// stream is returned only when strictly smaller than the input.
pub fn compress_if_smaller_profiled(
    input: &[u8],
    dict: &[u8],
    profile: &LzProfile,
    scratch: &mut LzScratch,
) -> Option<Vec<u8>> {
    let out = compress_profiled(input, dict, profile, scratch);
    (out.len() < input.len()).then_some(out)
}

/// Decompresses one stage stream, refusing to produce (or allocate) more
/// than `max_len` bytes.  Never panics on arbitrary input; see [`LzError`].
pub fn decompress(stream: &[u8], max_len: usize) -> Result<Vec<u8>, LzError> {
    let t0_ns = gld_obs::now_ns();
    let result = (|| {
        let (&tag, rest) = stream.split_first().ok_or(LzError::Empty)?;
        match tag {
            TAG_STORED => {
                if rest.len() > max_len {
                    return Err(LzError::TooLarge {
                        declared: rest.len() as u64,
                        max: max_len,
                    });
                }
                Ok(rest.to_vec())
            }
            TAG_LZ => {
                let (declared, used) = read_varint(rest)?;
                let max = max_len.min(MAX_RAW_LEN);
                if declared > max as u64 {
                    return Err(LzError::TooLarge { declared, max });
                }
                decode_sequences(&rest[used..], &[], SequenceModels::new(), declared as usize)
            }
            other => Err(LzError::BadTag(other)),
        }
    })();
    decompress_ns().record(gld_obs::now_ns().saturating_sub(t0_ns));
    result
}

/// Decompresses one stage stream produced by [`compress_profiled_into`]
/// under the same profile and seed dictionary.  Stored blocks ignore both
/// (they carry the content verbatim); coded streams decode against the
/// profile's frozen tables and pre-seed the match window with `dict`.
/// Hardened exactly like
/// [`decompress`]: arbitrary bytes yield content or a typed [`LzError`],
/// never a panic, and the output allocation is bounded by
/// `dict.len() + max_len`.
pub fn decompress_profiled(
    stream: &[u8],
    dict: &[u8],
    profile: &LzProfile,
    max_len: usize,
) -> Result<Vec<u8>, LzError> {
    let t0_ns = gld_obs::now_ns();
    let result = (|| {
        let (&tag, rest) = stream.split_first().ok_or(LzError::Empty)?;
        match tag {
            TAG_STORED => {
                if rest.len() > max_len {
                    return Err(LzError::TooLarge {
                        declared: rest.len() as u64,
                        max: max_len,
                    });
                }
                Ok(rest.to_vec())
            }
            TAG_LZ => {
                let (declared, used) = read_varint(rest)?;
                let max = max_len.min(MAX_RAW_LEN);
                if declared > max as u64 {
                    return Err(LzError::TooLarge { declared, max });
                }
                decode_sequences_static(&rest[used..], dict, &profile.frozen, declared as usize)
            }
            other => Err(LzError::BadTag(other)),
        }
    })();
    decompress_ns().record(gld_obs::now_ns().saturating_sub(t0_ns));
    result
}

/// Decodes the range-coded sequence stream into exactly `declared` bytes of
/// content.  `dict` pre-seeds the match window (matches may reach into it);
/// only the content after the dictionary is returned.
fn decode_sequences(
    coded: &[u8],
    dict: &[u8],
    mut models: SequenceModels,
    declared: usize,
) -> Result<Vec<u8>, LzError> {
    let mut dec = RangeDecoder::new(coded);
    // Allocation tracks production (Vec's amortised growth), never the
    // declared length: a tiny stream declaring gigabytes cannot reserve
    // them up front.  The dictionary is caller-supplied, already-produced
    // content, so seeding it up front stays within the caller's own budget.
    let mut out = Vec::with_capacity((dict.len() + declared.min(1 << 16)).min(MAX_RAW_LEN));
    out.extend_from_slice(dict);
    let goal = dict.len() as u64 + declared as u64;
    while (out.len() as u64) < goal {
        // The range decoder pads past the end of its input with zero bytes,
        // so a truncated stream would otherwise keep yielding symbols
        // forever; once decoding has consumed meaningfully past the real
        // input, the stream is known-truncated.  (A finished encoder flushes
        // at most 5 tail bytes, and renormalisation reads at most 4 bytes
        // per decoded symbol.)
        if dec.consumed() > coded.len() + 16 {
            return Err(LzError::Truncated);
        }
        if !models.flag.decode(&mut dec) {
            out.push(models.literal.decode(&mut dec) as u8);
            continue;
        }
        let len = decode_slot(&mut dec, &mut models.len_slot) + MIN_MATCH as u64;
        let offset = decode_slot(&mut dec, &mut models.off_slot) + 1;
        if offset > out.len() as u64 {
            return Err(LzError::BadOffset {
                offset,
                produced: out.len(),
            });
        }
        if out.len() as u64 + len > goal {
            return Err(LzError::Overrun);
        }
        let from = out.len() - offset as usize;
        // Byte-wise copy: overlapping matches (offset < len) replicate the
        // produced prefix, exactly as the encoder's extension allows.
        for k in 0..len as usize {
            let byte = out[from + k];
            out.push(byte);
        }
    }
    if dict.is_empty() {
        Ok(out)
    } else {
        Ok(out.split_off(dict.len()))
    }
}

/// The warm twin of [`decode_sequences`]: the same hardened loop (bounded
/// allocation, truncation/offset/overrun checks), decoding every symbol
/// against the profile's frozen tables instead of adaptive models.
fn decode_sequences_static(
    coded: &[u8],
    dict: &[u8],
    frozen: &StaticSequenceModels,
    declared: usize,
) -> Result<Vec<u8>, LzError> {
    let mut dec = RangeDecoder::new(coded);
    let mut out = Vec::with_capacity((dict.len() + declared.min(1 << 16)).min(MAX_RAW_LEN));
    out.extend_from_slice(dict);
    let goal = dict.len() as u64 + declared as u64;
    while (out.len() as u64) < goal {
        if dec.consumed() > coded.len() + 16 {
            return Err(LzError::Truncated);
        }
        if !frozen.flag.decode(&mut dec) {
            out.push(frozen.literal.decode(&mut dec) as u8);
            continue;
        }
        let len = decode_slot_static(&mut dec, &frozen.len_slot) + MIN_MATCH as u64;
        let offset = decode_slot_static(&mut dec, &frozen.off_slot) + 1;
        if offset > out.len() as u64 {
            return Err(LzError::BadOffset {
                offset,
                produced: out.len(),
            });
        }
        if out.len() as u64 + len > goal {
            return Err(LzError::Overrun);
        }
        let from = out.len() - offset as usize;
        for k in 0..len as usize {
            let byte = out[from + k];
            out.push(byte);
        }
    }
    if dict.is_empty() {
        Ok(out)
    } else {
        Ok(out.split_off(dict.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut scratch = LzScratch::new();
        let stream = compress(data, &mut scratch);
        decompress(&stream, data.len()).expect("self-produced stream decodes")
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        for data in [&b""[..], b"a", b"ab", b"abc", b"abcd"] {
            assert_eq!(roundtrip(data), data);
        }
    }

    #[test]
    fn repetitive_input_compresses_hard() {
        let data: Vec<u8> = b"scientific-data-block-"
            .iter()
            .copied()
            .cycle()
            .take(64 * 1024)
            .collect();
        let mut scratch = LzScratch::new();
        let stream = compress(&data, &mut scratch);
        assert!(
            stream.len() * 20 < data.len(),
            "repetitive 64 KiB took {} bytes",
            stream.len()
        );
        assert_eq!(decompress(&stream, data.len()).unwrap(), data);
    }

    #[test]
    fn random_input_falls_back_to_stored() {
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<u8> = (0..4096).map(|_| rng.gen_range(0..256) as u8).collect();
        let mut scratch = LzScratch::new();
        let stream = compress(&data, &mut scratch);
        assert_eq!(stream[0], TAG_STORED, "incompressible input must store");
        assert_eq!(stream.len(), data.len() + 1, "stored costs one tag byte");
        assert_eq!(decompress(&stream, data.len()).unwrap(), data);
    }

    #[test]
    fn overlapping_matches_roundtrip() {
        // Runs shorter than MIN_MATCH away force offset < length copies.
        let mut data = vec![7u8; 1000];
        data.extend([1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2]);
        data.extend(vec![0u8; 500]);
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn structured_float_bytes_compress() {
        // The shape of a serialised model table: little-endian u32s with
        // mostly-zero high bytes.
        let data: Vec<u8> = (0u32..4000)
            .flat_map(|i| ((i % 190) + 1).to_le_bytes())
            .collect();
        let mut scratch = LzScratch::new();
        let stream = compress(&data, &mut scratch);
        assert!(
            stream.len() * 2 < data.len(),
            "structured u32 table took {} of {} bytes",
            stream.len(),
            data.len()
        );
        assert_eq!(decompress(&stream, data.len()).unwrap(), data);
    }

    #[test]
    fn dirty_scratch_output_is_bit_identical_to_fresh() {
        let mut rng = StdRng::seed_from_u64(23);
        let warmup: Vec<u8> = (0..9000).map(|_| rng.gen_range(0..17) as u8).collect();
        let data: Vec<u8> = (0..6000)
            .map(|i| ((i as f32).sin() * 30.0) as i8 as u8)
            .collect();

        let mut fresh = LzScratch::new();
        let expected = compress(&data, &mut fresh);

        let mut dirty = LzScratch::new();
        let _ = compress(&warmup, &mut dirty);
        let _ = compress(&data[..100], &mut dirty);
        assert_eq!(
            compress(&data, &mut dirty),
            expected,
            "scratch history leaked into the stream"
        );
    }

    #[test]
    fn declared_length_over_limit_is_refused_before_decoding() {
        let mut scratch = LzScratch::new();
        let data = vec![5u8; 10_000];
        let stream = compress(&data, &mut scratch);
        assert_eq!(stream[0], TAG_LZ);
        match decompress(&stream, 512) {
            Err(LzError::TooLarge { declared, max }) => {
                assert_eq!(declared, 10_000);
                assert_eq!(max, 512);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Stored blocks respect the limit too.
        let mut stored = vec![TAG_STORED];
        stored.extend_from_slice(&[1, 2, 3, 4]);
        assert!(matches!(
            decompress(&stored, 3),
            Err(LzError::TooLarge { .. })
        ));
    }

    #[test]
    fn truncated_streams_error_instead_of_spinning() {
        // A stream declaring far more than its coded body can legitimately
        // produce must terminate with a typed error, not decode pad-zeros
        // forever (the declared length here is huge but under the cap).
        let mut stream = vec![TAG_LZ];
        write_varint(&mut stream, (200 << 20) as u64);
        stream.extend_from_slice(&[0x55; 7]);
        let err = decompress(&stream, 256 << 20).unwrap_err();
        assert!(
            matches!(
                err,
                LzError::Truncated | LzError::BadOffset { .. } | LzError::Overrun
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn unknown_tag_and_empty_stream_are_typed() {
        assert_eq!(decompress(&[], 10), Err(LzError::Empty));
        assert_eq!(decompress(&[9, 1, 2], 10), Err(LzError::BadTag(9)));
    }

    /// Two "frames" of the same synthetic variable: similar but not equal.
    fn similar_frames() -> (Vec<u8>, Vec<u8>) {
        let frame = |phase: f32| -> Vec<u8> {
            (0..3000)
                .flat_map(|i| {
                    let v = ((i as f32 * 0.01 + phase).sin() * 120.0) as i16;
                    v.to_le_bytes()
                })
                .collect()
        };
        (frame(0.0), frame(0.02))
    }

    #[test]
    fn profiled_roundtrip_with_dict_and_warm_models() {
        let (first, second) = similar_frames();
        let mut scratch = LzScratch::new();
        let profile = LzProfile::fit(&first, &mut scratch);
        let stream = compress_profiled(&second, &first, &profile, &mut scratch);
        let back = decompress_profiled(&stream, &first, &profile, second.len())
            .expect("self-produced profiled stream decodes");
        assert_eq!(back, second);
        // Empty dictionary (the variable's first frame) round-trips too.
        let stream0 = compress_profiled(&first, &[], &profile, &mut scratch);
        assert_eq!(
            decompress_profiled(&stream0, &[], &profile, first.len()).unwrap(),
            first
        );
    }

    #[test]
    fn profiled_stream_beats_cold_on_similar_frames() {
        let (first, second) = similar_frames();
        let mut scratch = LzScratch::new();
        let cold = compress(&second, &mut scratch);
        let profile = LzProfile::fit(&first, &mut scratch);
        let warm = compress_profiled(&second, &first, &profile, &mut scratch);
        assert!(
            warm.len() < cold.len(),
            "warm {} B not smaller than cold {} B",
            warm.len(),
            cold.len()
        );
    }

    #[test]
    fn profiled_output_is_deterministic_across_dirty_scratch() {
        let (first, second) = similar_frames();
        let mut fresh = LzScratch::new();
        let profile = LzProfile::fit(&first, &mut fresh);
        let expected = compress_profiled(&second, &first, &profile, &mut fresh);
        let mut dirty = LzScratch::new();
        let _ = compress(&second, &mut dirty);
        let _ = compress_profiled(&first, &second, &profile, &mut dirty);
        assert_eq!(
            compress_profiled(&second, &first, &profile, &mut dirty),
            expected,
            "scratch history leaked into the profiled stream"
        );
    }

    #[test]
    fn profile_serialization_roundtrips_and_rejects_bad_sizes() {
        let (first, _) = similar_frames();
        let mut scratch = LzScratch::new();
        let profile = LzProfile::fit(&first, &mut scratch);
        let bytes = profile.to_bytes();
        assert_eq!(bytes.len(), PROFILE_BYTES);
        let restored = LzProfile::try_from_bytes(&bytes).expect("valid profile");
        assert_eq!(restored, profile);
        for bad_len in [0usize, 1, PROFILE_BYTES - 1, PROFILE_BYTES + 1] {
            assert!(matches!(
                LzProfile::try_from_bytes(&vec![0u8; bad_len]),
                Err(LzError::BadProfile { .. })
            ));
        }
    }

    #[test]
    fn adversarial_profile_bytes_still_yield_a_working_coder() {
        // All-zero and all-ones snapshots would put every probability on a
        // pole; the clamped restore must still round-trip data.
        let (_, data) = similar_frames();
        for fill in [0x00u8, 0xFF] {
            let profile = LzProfile::try_from_bytes(&vec![fill; PROFILE_BYTES]).unwrap();
            let mut scratch = LzScratch::new();
            let stream = compress_profiled(&data, &[], &profile, &mut scratch);
            assert_eq!(
                decompress_profiled(&stream, &[], &profile, data.len()).unwrap(),
                data
            );
        }
    }

    #[test]
    fn profiled_stored_fallback_decodes_without_dict_help() {
        let mut rng = StdRng::seed_from_u64(31);
        let dict: Vec<u8> = (0..512).map(|_| rng.gen_range(0..256) as u8).collect();
        let noise: Vec<u8> = (0..2048).map(|_| rng.gen_range(0..256) as u8).collect();
        let mut scratch = LzScratch::new();
        let profile = LzProfile::fit(&dict, &mut scratch);
        let stream = compress_profiled(&noise, &dict, &profile, &mut scratch);
        assert_eq!(stream[0], TAG_STORED, "incompressible input must store");
        assert_eq!(
            decompress_profiled(&stream, &dict, &profile, noise.len()).unwrap(),
            noise
        );
    }
}
