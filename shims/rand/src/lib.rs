//! Minimal `rand` 0.8-style API over a xoshiro256++ generator, for offline
//! builds.  Only the surface the workspace uses is provided: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}`.

#![forbid(unsafe_code)]

/// Core 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic, seedable generator (xoshiro256++).  Statistical
    /// quality is more than sufficient for noise sampling and initialisation;
    /// it is *not* cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their full domain (the `Standard`
/// distribution in real rand).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over half-open and closed intervals.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_between_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    // Rejection sampling to avoid modulo bias.
    assert!(n > 0, "empty sample range");
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }

            fn sample_between_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_uniform_impls!(usize, u64, u32, i64, i32, i16, u16, i8, u8);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty gen_range");
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }

            fn sample_between_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty gen_range");
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}

float_uniform_impls!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between_inclusive(rng, lo, hi)
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_in_unit_interval_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v as f64;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
