//! Regenerates the paper's headline claims (§1 / §4.7): the compression-ratio
//! improvement of the proposed method over the best rule-based compressor
//! (SZ3) and over the strongest learned baseline (VAE-SR) at matched NRMSE,
//! per dataset.  The paper reports 4–10× over SZ3 and 20–63% over VAE-SR.
//!
//! All three methods run through the unified [`Codec`] interface with shared
//! container-based accounting.

use gld_baselines::SzCompressor;
use gld_bench::{codec_sweep as sweep, train_on, write_result};
use gld_core::{LearnedBaseline, LearnedBaselineKind};
use gld_datasets::DatasetKind;

const NRMSE_TARGETS: [f32; 4] = [2e-2, 1e-2, 5e-3, 2e-3];
const SZ_REL_BOUNDS: [f32; 5] = [5e-2, 2e-2, 1e-2, 5e-3, 2e-3];
const MATCH_NRMSE: f32 = 1e-2;

fn main() {
    let mut csv = String::from("dataset,ours_vs_sz3,ours_vs_vaesr\n");
    println!("Headline claims — CR improvement at matched NRMSE = {MATCH_NRMSE:.0e}\n");
    println!(
        "{:<10} {:>16} {:>16}   (paper: 4-10x over SZ3, +20-63% over VAE-SR)",
        "dataset", "vs SZ3-like", "vs VAE-SR"
    );
    for kind in DatasetKind::all() {
        let (compressor, dataset) = train_on(kind, 808 + kind as u64);
        let n = compressor.config().block_frames;

        let vaesr = LearnedBaseline::new(LearnedBaselineKind::VaeSr, compressor.vae(), None);
        let sz = SzCompressor::new();

        let ours = sweep(&compressor, &dataset, n, &NRMSE_TARGETS);
        let vaesr_sweep = sweep(&vaesr, &dataset, n, &NRMSE_TARGETS);
        let sz_sweep = sweep(&sz, &dataset, n, &SZ_REL_BOUNDS);

        let vs_sz = ours.improvement_over(&sz_sweep, MATCH_NRMSE);
        let vs_vaesr = ours.improvement_over(&vaesr_sweep, MATCH_NRMSE);
        let fmt = |v: Option<f64>| {
            v.map(|x| format!("{x:.2}x"))
                .unwrap_or_else(|| "n/a".into())
        };
        println!(
            "{:<10} {:>16} {:>16}",
            kind.name(),
            fmt(vs_sz),
            fmt(vs_vaesr)
        );
        csv.push_str(&format!(
            "{},{},{}\n",
            kind.name(),
            vs_sz.map(|v| v.to_string()).unwrap_or_default(),
            vs_vaesr.map(|v| v.to_string()).unwrap_or_default()
        ));
    }
    write_result("headline_summary.csv", &csv);
}
