//! Adaptive binary models for the range coder.
//!
//! The models in [`crate::models`] are *static*: they are fitted on the data
//! and shipped in the stream header.  A general-purpose lossless stage (the
//! `gld-lz` crate) cannot afford a header per stream, so it codes its
//! sequence symbols with **adaptive** models instead: every coded bit
//! updates the probability estimate by an exponential decay toward the
//! observed value, and the decoder replays exactly the same updates, so the
//! two sides stay in lock-step with no serialised tables at all.
//!
//! Two shapes are provided:
//!
//! * [`AdaptiveBitModel`] — one binary probability, LZMA-style shift
//!   update;
//! * [`AdaptiveTreeModel`] — an n-bit symbol coded MSB-first through a
//!   complete binary tree of bit models, one per reachable context, which
//!   is the classic bit-tree construction of an adaptive order-0 symbol
//!   model (an 8-bit tree *is* an adaptive byte model).
//!
//! Both are generic over [`EntropyEncoder`]/[`EntropyDecoder`], like every
//! other model in this crate, so the equivalence suite can drive them
//! through the reference arithmetic coder as well as the production range
//! coder.

use crate::backend::{EntropyDecoder, EntropyEncoder};

/// Total frequency of an adaptive binary model (12-bit probabilities, well
/// under [`crate::arith::MAX_TOTAL`]).
pub const PROB_TOTAL: u32 = 1 << 12;

/// Initial (uniform) probability of a zero bit.
const PROB_INIT: u16 = (PROB_TOTAL / 2) as u16;

/// Adaptation rate: each update moves the estimate 1/32 of the way toward
/// the observed bit.
const ADAPT_SHIFT: u32 = 5;

/// One adaptive binary probability.
///
/// The estimate can never reach 0 or [`PROB_TOTAL`] (the shift update
/// stalls a few counts short of either pole), so both coding intervals stay
/// non-empty for every possible history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBitModel {
    /// Probability of a **zero** bit, out of [`PROB_TOTAL`].
    p0: u16,
}

impl Default for AdaptiveBitModel {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveBitModel {
    /// A fresh model at the uniform estimate.
    pub fn new() -> Self {
        AdaptiveBitModel { p0: PROB_INIT }
    }

    /// Resets the model to the uniform estimate (cheap re-use between
    /// independent streams).
    pub fn reset(&mut self) {
        self.p0 = PROB_INIT;
    }

    /// The current zero-bit probability estimate (out of [`PROB_TOTAL`]).
    ///
    /// Together with [`AdaptiveBitModel::from_probability`] this lets a
    /// trained model be snapshotted into a profile table and restored on the
    /// decode side, warm-starting a fresh stream at the converged estimate
    /// instead of the uniform one.
    pub fn probability(&self) -> u16 {
        self.p0
    }

    /// Reconstructs a model at a snapshotted estimate.
    ///
    /// The estimate is clamped into the open interval `(0, PROB_TOTAL)` so a
    /// corrupted or adversarial snapshot can never create an empty coding
    /// interval: every restored model remains able to code both bit values.
    pub fn from_probability(p0: u16) -> Self {
        AdaptiveBitModel {
            p0: p0.clamp(1, (PROB_TOTAL - 1) as u16),
        }
    }

    #[inline]
    fn update(&mut self, bit: bool) {
        if bit {
            self.p0 -= self.p0 >> ADAPT_SHIFT;
        } else {
            self.p0 += (PROB_TOTAL as u16 - self.p0) >> ADAPT_SHIFT;
        }
    }

    /// Encodes one bit and adapts.
    #[inline]
    pub fn encode<E: EntropyEncoder>(&mut self, enc: &mut E, bit: bool) {
        let p0 = u32::from(self.p0);
        if bit {
            enc.encode(p0, PROB_TOTAL, PROB_TOTAL);
        } else {
            enc.encode(0, p0, PROB_TOTAL);
        }
        self.update(bit);
    }

    /// Decodes one bit and adapts (mirror of [`AdaptiveBitModel::encode`]).
    #[inline]
    pub fn decode<D: EntropyDecoder>(&mut self, dec: &mut D) -> bool {
        let p0 = u32::from(self.p0);
        let bit = dec.decode_target(PROB_TOTAL) >= p0;
        if bit {
            dec.decode_update(p0, PROB_TOTAL, PROB_TOTAL);
        } else {
            dec.decode_update(0, p0, PROB_TOTAL);
        }
        self.update(bit);
        bit
    }
}

/// An adaptive order-0 model over `bits`-wide symbols, realised as a binary
/// tree of [`AdaptiveBitModel`]s coded MSB-first.  `AdaptiveTreeModel::new(8)`
/// is an adaptive byte model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveTreeModel {
    bits: u32,
    /// One node per internal tree context; index 1 is the root, node `c`
    /// branches to `2c` / `2c + 1`.
    nodes: Vec<AdaptiveBitModel>,
}

impl AdaptiveTreeModel {
    /// A fresh tree over `bits`-wide symbols (1 ≤ `bits` ≤ 16).
    pub fn new(bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "tree width {bits} out of range");
        AdaptiveTreeModel {
            bits,
            nodes: vec![AdaptiveBitModel::new(); 1 << bits],
        }
    }

    /// Resets every node to the uniform estimate.
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            node.reset();
        }
    }

    /// Symbol width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of internal bit-model nodes (`1 << bits`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Appends every node's probability estimate to `out` (root at index 1;
    /// index 0 is an unused placeholder, emitted too so offsets stay
    /// trivially `1 << bits` wide).
    pub fn snapshot_into(&self, out: &mut Vec<u16>) {
        out.extend(self.nodes.iter().map(AdaptiveBitModel::probability));
    }

    /// Restores every node from a snapshot produced by
    /// [`AdaptiveTreeModel::snapshot_into`].  Each probability is clamped
    /// like [`AdaptiveBitModel::from_probability`], so restoring an
    /// untrusted snapshot is safe (the tree still codes every symbol).
    ///
    /// # Panics
    ///
    /// Panics if `probs` is not exactly `1 << bits` long — callers validate
    /// snapshot lengths before restoring.
    pub fn restore_from(&mut self, probs: &[u16]) {
        assert_eq!(probs.len(), self.nodes.len(), "snapshot length mismatch");
        for (node, &p) in self.nodes.iter_mut().zip(probs) {
            *node = AdaptiveBitModel::from_probability(p);
        }
    }

    /// Encodes `value` (must fit in the tree's width), MSB first.
    #[inline]
    pub fn encode<E: EntropyEncoder>(&mut self, enc: &mut E, value: u32) {
        debug_assert!(value < (1 << self.bits), "value {value} exceeds tree");
        let mut ctx = 1usize;
        for i in (0..self.bits).rev() {
            let bit = (value >> i) & 1 == 1;
            self.nodes[ctx].encode(enc, bit);
            ctx = (ctx << 1) | usize::from(bit);
        }
    }

    /// Decodes one symbol, MSB first.
    #[inline]
    pub fn decode<D: EntropyDecoder>(&mut self, dec: &mut D) -> u32 {
        let mut ctx = 1usize;
        for _ in 0..self.bits {
            let bit = self.nodes[ctx].decode(dec);
            ctx = (ctx << 1) | usize::from(bit);
        }
        ctx as u32 - (1 << self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ArithmeticBackend, EntropyBackend, RangeBackend};

    fn bit_roundtrip_via<B: EntropyBackend>() {
        let bits: Vec<bool> = (0..4000).map(|i| i % 7 == 0 || i % 3 == 1).collect();
        let mut model = AdaptiveBitModel::new();
        let mut enc = B::encoder();
        for &b in &bits {
            model.encode(&mut enc, b);
        }
        let stream = enc.finish();
        let mut model = AdaptiveBitModel::new();
        let mut dec = B::decoder(&stream);
        for &b in &bits {
            assert_eq!(model.decode(&mut dec), b);
        }
    }

    #[test]
    fn adaptive_bit_roundtrips_on_both_backends() {
        bit_roundtrip_via::<RangeBackend>();
        bit_roundtrip_via::<ArithmeticBackend>();
    }

    #[test]
    fn skewed_bits_compress_below_uniform() {
        let bits: Vec<bool> = (0..8000).map(|i| i % 97 == 0).collect();
        let mut model = AdaptiveBitModel::new();
        let mut enc = crate::range::RangeEncoder::new();
        for &b in &bits {
            model.encode(&mut enc, b);
        }
        let stream = enc.finish();
        assert!(
            stream.len() * 8 < bits.len() / 2,
            "adaptive model took {} bits for {} skewed bits",
            stream.len() * 8,
            bits.len()
        );
    }

    #[test]
    fn extreme_histories_keep_probabilities_in_range() {
        // A long run of one value must not push the estimate to a pole
        // (which would create an empty coding interval); flipping afterwards
        // must still round-trip.
        for &run_bit in &[false, true] {
            let mut stream_bits = vec![run_bit; 10_000];
            stream_bits.extend([!run_bit, run_bit, !run_bit]);
            let mut model = AdaptiveBitModel::new();
            let mut enc = crate::range::RangeEncoder::new();
            for &b in &stream_bits {
                model.encode(&mut enc, b);
            }
            let stream = enc.finish();
            let mut model = AdaptiveBitModel::new();
            let mut dec = crate::range::RangeDecoder::new(&stream);
            for &b in &stream_bits {
                assert_eq!(model.decode(&mut dec), b);
            }
        }
    }

    #[test]
    fn tree_model_roundtrips_bytes() {
        let data: Vec<u32> = (0..3000).map(|i| (i * i % 251) as u32).collect();
        let mut model = AdaptiveTreeModel::new(8);
        let mut enc = crate::range::RangeEncoder::new();
        for &v in &data {
            model.encode(&mut enc, v);
        }
        let stream = enc.finish();
        let mut model = AdaptiveTreeModel::new(8);
        let mut dec = crate::range::RangeDecoder::new(&stream);
        for &v in &data {
            assert_eq!(model.decode(&mut dec), v);
        }
    }

    #[test]
    fn snapshot_restore_replays_trained_state() {
        // Train a bit model, snapshot it, and check the restored copy codes
        // a fresh stream byte-identically to the original trained model.
        let mut trained = AdaptiveBitModel::new();
        let mut warmup = crate::range::RangeEncoder::new();
        for i in 0..500 {
            trained.encode(&mut warmup, i % 11 == 0);
        }
        let restored = AdaptiveBitModel::from_probability(trained.probability());
        let payload: Vec<bool> = (0..300).map(|i| i % 13 == 0).collect();
        let encode_with = |mut m: AdaptiveBitModel| {
            let mut enc = crate::range::RangeEncoder::new();
            for &b in &payload {
                m.encode(&mut enc, b);
            }
            enc.finish()
        };
        assert_eq!(encode_with(trained), encode_with(restored));
    }

    #[test]
    fn restored_probability_is_clamped_off_the_poles() {
        for p in [0u16, 1, (PROB_TOTAL - 1) as u16, u16::MAX] {
            let model = AdaptiveBitModel::from_probability(p);
            assert!(model.probability() >= 1);
            assert!(u32::from(model.probability()) < PROB_TOTAL);
            // The restored model must still round-trip both bit values.
            let bits = [true, false, true, true, false];
            let mut enc_model = model;
            let mut enc = crate::range::RangeEncoder::new();
            for &b in &bits {
                enc_model.encode(&mut enc, b);
            }
            let stream = enc.finish();
            let mut dec_model = model;
            let mut dec = crate::range::RangeDecoder::new(&stream);
            for &b in &bits {
                assert_eq!(dec_model.decode(&mut dec), b);
            }
        }
    }

    #[test]
    fn tree_snapshot_roundtrips_through_restore() {
        let mut trained = AdaptiveTreeModel::new(8);
        let mut warmup = crate::range::RangeEncoder::new();
        for i in 0..2000u32 {
            trained.encode(&mut warmup, i * 7 % 256);
        }
        let mut probs = Vec::new();
        trained.snapshot_into(&mut probs);
        assert_eq!(probs.len(), trained.node_count());
        let mut restored = AdaptiveTreeModel::new(8);
        restored.restore_from(&probs);
        assert_eq!(restored, trained);
    }

    #[test]
    fn tree_reset_equals_fresh() {
        let data = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let mut fresh = AdaptiveTreeModel::new(4);
        let mut enc = crate::range::RangeEncoder::new();
        for &v in &data {
            fresh.encode(&mut enc, v);
        }
        let fresh_stream = enc.finish();

        let mut reused = AdaptiveTreeModel::new(4);
        let mut warmup = crate::range::RangeEncoder::new();
        for v in 0..16 {
            reused.encode(&mut warmup, v);
        }
        reused.reset();
        let mut enc = crate::range::RangeEncoder::new();
        for &v in &data {
            reused.encode(&mut enc, v);
        }
        assert_eq!(enc.finish(), fresh_stream, "reset must erase all history");
    }
}
