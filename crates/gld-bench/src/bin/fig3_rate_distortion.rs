//! Regenerates Figure 3 (a/b/c): compression-ratio vs NRMSE curves for the
//! proposed method, the learned baselines (VAE-SR, CDC-X, CDC-ε, GCD) and
//! the rule-based baselines (SZ3-like, ZFP-like) on the three synthetic
//! datasets.
//!
//! Every compressor is driven through the unified [`Codec`] interface:
//! [`Codec::compress_dataset`] tiles each variable into temporal blocks,
//! compresses them in parallel into binary containers, and returns shared
//! ratio/NRMSE accounting — the measured container size *is* the reported
//! size.  The learned methods share the PCA error-bound post-processing
//! inside their `Codec` impls, exactly as in the paper's protocol (§4.1).

use gld_baselines::{SzCompressor, ZfpLikeCompressor};
use gld_bench::{codec_sweep as sweep, train_on, write_result};
use gld_core::{LearnedBaseline, LearnedBaselineKind, RateSweep};
use gld_datasets::DatasetKind;

/// NRMSE targets swept for the learned methods.
const NRMSE_TARGETS: [f32; 4] = [2e-2, 1e-2, 5e-3, 2e-3];
/// Relative (range-scaled) bounds swept for the rule-based codecs.
const REL_BOUNDS: [f32; 4] = [5e-2, 2e-2, 1e-2, 5e-3];

fn main() {
    let mut csv = String::from("dataset,method,compression_ratio,nrmse\n");
    for kind in DatasetKind::all() {
        println!("=== Figure 3 — {} ===", kind.name());
        let (compressor, dataset) = train_on(kind, 31 + kind as u64);
        let n = compressor.config().block_frames;

        let sz = SzCompressor::new();
        let zfp = ZfpLikeCompressor::new();
        let learned: Vec<LearnedBaseline<'_>> = LearnedBaselineKind::all()
            .into_iter()
            .map(|bkind| LearnedBaseline::new(bkind, compressor.vae(), None))
            .collect();

        let mut sweeps: Vec<RateSweep> = Vec::new();
        sweeps.push(sweep(&compressor, &dataset, n, &NRMSE_TARGETS));
        for baseline in &learned {
            sweeps.push(sweep(baseline, &dataset, n, &NRMSE_TARGETS));
        }
        sweeps.push(sweep(&sz, &dataset, n, &REL_BOUNDS));
        sweeps.push(sweep(&zfp, &dataset, n, &REL_BOUNDS));

        // Report.
        println!("{:<10} points (ratio @ NRMSE)", "method");
        for sweep in &sweeps {
            let pts: Vec<String> = sweep
                .points
                .iter()
                .map(|p| format!("{:.0}x@{:.1e}", p.compression_ratio, p.nrmse))
                .collect();
            println!("{:<10} {}", sweep.method, pts.join("  "));
            for p in &sweep.points {
                csv.push_str(&format!(
                    "{},{},{:.3},{:.6}\n",
                    kind.name(),
                    sweep.method,
                    p.compression_ratio,
                    p.nrmse
                ));
            }
        }
        println!();
    }
    write_result("fig3_rate_distortion.csv", &csv);
    println!("Paper shape to compare against: learned methods dominate rule-based; Ours dominates per-frame learned baselines at matched NRMSE.");
}
