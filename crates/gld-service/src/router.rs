//! Shard assignment: which per-shard executor a variable's requests land on.
//!
//! The default policy is deterministic — FNV-1a of the variable key modulo
//! the shard count — so every request for one variable (compress and later
//! decompress alike) serialises onto the same shard's bounded window, and a
//! client can predict placement without asking the server.  The round-robin
//! override spreads key-less or synthetic workloads evenly instead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How the router maps a variable key to a shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPolicy {
    /// FNV-1a hash of the key, modulo the shard count (deterministic; the
    /// default).
    #[default]
    HashKey,
    /// Ignore the key and cycle through shards (spreads load when keys are
    /// few or skewed).
    RoundRobin,
}

/// 64-bit FNV-1a — the deterministic key hash behind [`ShardPolicy::HashKey`]
/// (stable across processes and architectures; little-endian byte order does
/// not matter because it consumes bytes).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Maps variable keys to shard indices under the configured policy.
#[derive(Debug)]
pub struct ShardRouter {
    shards: usize,
    policy: ShardPolicy,
    next: AtomicUsize,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to at least 1).
    pub fn new(shards: usize, policy: ShardPolicy) -> Self {
        ShardRouter {
            shards: shards.max(1),
            policy,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of shards routed across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configured policy.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Routes one request for `key` to a shard index in `0..shards`.
    pub fn route(&self, key: &str) -> usize {
        match self.policy {
            ShardPolicy::HashKey => Self::hash_shard(key, self.shards),
            ShardPolicy::RoundRobin => self.next.fetch_add(1, Ordering::Relaxed) % self.shards,
        }
    }

    /// The deterministic [`ShardPolicy::HashKey`] assignment, exposed so
    /// clients and tests can predict placement without a router instance.
    pub fn hash_shard(key: &str, shards: usize) -> usize {
        (fnv1a(key.as_bytes()) % shards.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routing_is_deterministic_and_in_range() {
        let router = ShardRouter::new(4, ShardPolicy::HashKey);
        for key in ["temperature", "velocity_u", "species_07", ""] {
            let shard = router.route(key);
            assert!(shard < 4);
            assert_eq!(shard, router.route(key), "same key, same shard");
            assert_eq!(shard, ShardRouter::hash_shard(key, 4));
        }
    }

    #[test]
    fn hash_routing_spreads_distinct_keys() {
        // Not a uniformity proof — just that 64 distinct keys do not all
        // collapse onto one shard.
        let router = ShardRouter::new(4, ShardPolicy::HashKey);
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[router.route(&format!("variable_{i}"))] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards reachable: {seen:?}");
    }

    #[test]
    fn round_robin_cycles_regardless_of_key() {
        let router = ShardRouter::new(3, ShardPolicy::RoundRobin);
        let shards: Vec<usize> = (0..6).map(|_| router.route("same-key")).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let router = ShardRouter::new(0, ShardPolicy::HashKey);
        assert_eq!(router.shards(), 1);
        assert_eq!(router.route("anything"), 0);
    }
}
