//! Forward-process noise schedules (paper Eq. 3–4) and respacing for
//! few-step sampling.

use gld_tensor::{Tensor, TensorRng};
use serde::{Deserialize, Serialize};

/// A discrete diffusion noise schedule: β_t, α_t = 1 − β_t and the cumulative
/// products ᾱ_t.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseSchedule {
    betas: Vec<f32>,
    alpha_bars: Vec<f32>,
}

impl NoiseSchedule {
    /// Linear β schedule from `1e-4` to `0.02` (the DDPM default), scaled to
    /// `steps` so that the endpoint noise level is comparable across step
    /// counts.
    pub fn linear(steps: usize) -> Self {
        assert!(steps >= 1, "schedule needs at least one step");
        let scale = 1000.0 / steps as f32;
        let beta_start = (1e-4 * scale).min(0.5);
        let beta_end = (0.02 * scale).min(0.999);
        let betas: Vec<f32> = (0..steps)
            .map(|i| {
                if steps == 1 {
                    beta_end
                } else {
                    beta_start + (beta_end - beta_start) * i as f32 / (steps as f32 - 1.0)
                }
            })
            .collect();
        Self::from_betas(betas)
    }

    /// Cosine schedule (Nichol & Dhariwal), numerically clamped.
    pub fn cosine(steps: usize) -> Self {
        assert!(steps >= 1, "schedule needs at least one step");
        let s = 0.008f32;
        let f = |t: f32| {
            ((t + s) / (1.0 + s) * std::f32::consts::FRAC_PI_2)
                .cos()
                .powi(2)
        };
        let mut betas = Vec::with_capacity(steps);
        for i in 0..steps {
            let t0 = i as f32 / steps as f32;
            let t1 = (i + 1) as f32 / steps as f32;
            let beta = (1.0 - f(t1) / f(t0)).clamp(1e-5, 0.999);
            betas.push(beta);
        }
        Self::from_betas(betas)
    }

    /// Builds a schedule from explicit βs.
    pub fn from_betas(betas: Vec<f32>) -> Self {
        assert!(!betas.is_empty(), "empty schedule");
        let mut alpha_bars = Vec::with_capacity(betas.len());
        let mut prod = 1.0f32;
        for &b in &betas {
            assert!(b > 0.0 && b < 1.0, "beta {b} outside (0, 1)");
            prod *= 1.0 - b;
            alpha_bars.push(prod);
        }
        NoiseSchedule { betas, alpha_bars }
    }

    /// Number of steps T.
    pub fn steps(&self) -> usize {
        self.betas.len()
    }

    /// β_t for `t ∈ [0, T)`.
    pub fn beta(&self, t: usize) -> f32 {
        self.betas[t]
    }

    /// ᾱ_t (cumulative product of 1 − β).
    pub fn alpha_bar(&self, t: usize) -> f32 {
        self.alpha_bars[t]
    }

    /// ᾱ_{t−1}, defined as 1 for t = 0.
    pub fn alpha_bar_prev(&self, t: usize) -> f32 {
        if t == 0 {
            1.0
        } else {
            self.alpha_bars[t - 1]
        }
    }

    /// Draws `y_t ~ q(y_t | y_0)` (Eq. 4) and returns `(y_t, ε)`.
    pub fn add_noise(&self, y0: &Tensor, t: usize, rng: &mut TensorRng) -> (Tensor, Tensor) {
        let eps = rng.randn(y0.dims());
        let ab = self.alpha_bar(t);
        let y_t = y0.scale(ab.sqrt()).add(&eps.scale((1.0 - ab).sqrt()));
        (y_t, eps)
    }

    /// Recovers the `y_0` estimate from `y_t` and a noise prediction.
    pub fn predict_y0(&self, y_t: &Tensor, eps_hat: &Tensor, t: usize) -> Tensor {
        let ab = self.alpha_bar(t);
        y_t.sub(&eps_hat.scale((1.0 - ab).sqrt()))
            .scale(1.0 / ab.sqrt())
    }

    /// Deterministic DDIM step from timestep `t` to `t_prev`
    /// (`t_prev < t`; pass `None` for the final step to 0 noise).
    pub fn ddim_step(
        &self,
        y_t: &Tensor,
        eps_hat: &Tensor,
        t: usize,
        t_prev: Option<usize>,
    ) -> Tensor {
        let mut y0 = self.predict_y0(y_t, eps_hat, t);
        y0.clamp_inplace(-3.0, 3.0);
        match t_prev {
            Some(tp) => {
                let ab_prev = self.alpha_bar(tp);
                y0.scale(ab_prev.sqrt())
                    .add(&eps_hat.scale((1.0 - ab_prev).sqrt()))
            }
            None => y0,
        }
    }

    /// Subsamples `count` timesteps from T−1 down to 0 (inclusive), evenly
    /// spaced — the respacing used for few-step sampling and fine-tuning.
    pub fn respaced_timesteps(&self, count: usize) -> Vec<usize> {
        let t = self.steps();
        let count = count.clamp(1, t);
        if count == 1 {
            return vec![t - 1];
        }
        let mut steps: Vec<usize> = (0..count)
            .map(|i| {
                let frac = i as f32 / (count as f32 - 1.0);
                ((1.0 - frac) * (t as f32 - 1.0)).round() as usize
            })
            .collect();
        steps.dedup();
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_schedule_monotone_alpha_bar() {
        let s = NoiseSchedule::linear(100);
        assert_eq!(s.steps(), 100);
        for t in 1..100 {
            assert!(s.alpha_bar(t) < s.alpha_bar(t - 1));
        }
        assert!(s.alpha_bar(0) > 0.99);
        assert!(s.alpha_bar(99) < 0.2);
    }

    #[test]
    fn cosine_schedule_valid() {
        let s = NoiseSchedule::cosine(50);
        for t in 0..50 {
            assert!(s.beta(t) > 0.0 && s.beta(t) < 1.0);
        }
        assert!(s.alpha_bar(49) < s.alpha_bar(0));
    }

    #[test]
    fn endpoint_noise_similar_across_step_counts() {
        // Scaling βs with T keeps the final ᾱ in the same ballpark, which is
        // what lets a model fine-tuned with fewer steps reuse its weights.
        let long = NoiseSchedule::linear(1000);
        let short = NoiseSchedule::linear(32);
        let a = long.alpha_bar(999);
        let b = short.alpha_bar(31);
        assert!((a - b).abs() < 0.05, "final alpha_bar {a} vs {b}");
    }

    #[test]
    fn add_noise_statistics() {
        let mut rng = TensorRng::new(0);
        let s = NoiseSchedule::linear(100);
        let y0 = Tensor::zeros(&[1000]);
        let (y_t, _) = s.add_noise(&y0, 99, &mut rng);
        // With y0 = 0 the variance of y_t is 1 − ᾱ_t.
        let expected = 1.0 - s.alpha_bar(99);
        assert!((y_t.variance() - expected).abs() < 0.1);
    }

    #[test]
    fn predict_y0_inverts_add_noise_given_true_eps() {
        let mut rng = TensorRng::new(1);
        let s = NoiseSchedule::linear(200);
        let y0 = rng.randn(&[4, 3, 2, 2]);
        for &t in &[0usize, 50, 150, 199] {
            let (y_t, eps) = s.add_noise(&y0, t, &mut rng);
            let rec = s.predict_y0(&y_t, &eps, t);
            let err = rec.sub(&y0).abs().max();
            assert!(err < 1e-3, "t={t} err={err}");
        }
    }

    #[test]
    fn ddim_step_with_true_noise_moves_towards_y0() {
        let mut rng = TensorRng::new(2);
        let s = NoiseSchedule::linear(100);
        let y0 = rng.randn(&[2, 3, 2, 2]).clamp(-2.0, 2.0);
        let (y_t, eps) = s.add_noise(&y0, 99, &mut rng);
        let y_prev = s.ddim_step(&y_t, &eps, 99, Some(50));
        let before = y_t.sub(&y0).l2_norm();
        let after = y_prev.sub(&y0).l2_norm();
        assert!(
            after < before,
            "DDIM step did not denoise: {after} vs {before}"
        );
        let y_final = s.ddim_step(&y_t, &eps, 99, None);
        assert!(y_final.sub(&y0).abs().max() < 1e-2);
    }

    #[test]
    fn respacing_covers_endpoints_and_is_decreasing() {
        let s = NoiseSchedule::linear(1000);
        for &k in &[1usize, 2, 8, 32, 128, 1000] {
            let ts = s.respaced_timesteps(k);
            assert!(ts.len() <= k);
            assert_eq!(*ts.first().unwrap(), 999);
            if k > 1 {
                assert_eq!(*ts.last().unwrap(), 0);
            }
            for w in ts.windows(2) {
                assert!(w[0] > w[1], "timesteps not strictly decreasing: {ts:?}");
            }
        }
    }
}
