//! `gld-service-check` — client-side smoke check against a live
//! `gld-serviced`, used by CI's boot-the-binary job.
//!
//! Connects (retrying while the server boots), negotiates, round-trips
//! variables through both rule-based codecs, verifies every byte against a
//! direct in-process `Codec` run, exercises an error path, then asks the
//! server to shut down.  Any mismatch or refusal exits non-zero.
//!
//! ```text
//! gld-service-check [HOST:PORT]   (default 127.0.0.1:7171)
//! ```

use gld_baselines::{SzCompressor, ZfpLikeCompressor};
use gld_core::{Codec, CodecId, Container, ErrorTarget};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_service::{ClientError, ServiceClient, Status};
use std::time::{Duration, Instant};

fn connect_with_retry(addr: &str) -> ServiceClient {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match ServiceClient::connect(addr) {
            Ok(client) => return client,
            Err(e) if Instant::now() < deadline => {
                eprintln!("waiting for {addr}: {e}");
                std::thread::sleep(Duration::from_millis(250));
            }
            Err(e) => panic!("could not reach {addr} within 20s: {e}"),
        }
    }
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7171".into());
    let mut client = connect_with_retry(&addr);

    let info = client
        .hello(&[CodecId::SzLike, CodecId::ZfpLike])
        .expect("hello negotiation");
    println!(
        "negotiated {:?}; server has {} shard(s), window {}, queue depth {}",
        info.codec, info.shards, info.shard_window, info.queue_depth
    );
    assert_eq!(info.codec, CodecId::SzLike, "first preference wins");
    client.ping().expect("ping");

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(2, 24, 16, 16), 71);
    let codecs: [(&str, &dyn Codec); 2] = [
        ("SZ3-like", &SzCompressor::new()),
        ("ZFP-like", &ZfpLikeCompressor::new()),
    ];
    for (name, codec) in codecs {
        for (variable, target) in ds
            .variables
            .iter()
            .zip([None, Some(ErrorTarget::Nrmse(1e-2))])
        {
            let remote = client
                .compress_as(codec.id(), &variable.name, variable, 8, target)
                .expect("remote compress");
            let (local, stats) = codec.compress_variable(variable, 8, target);
            assert_eq!(
                remote,
                local.encode(),
                "{name}: remote container differs from direct Codec output"
            );
            println!(
                "{name} '{}': {} blocks, {} bytes — bit-identical to local",
                variable.name, stats.blocks, stats.compressed_bytes
            );

            let blocks = client
                .decompress(&variable.name, &remote)
                .expect("remote decompress");
            let reference = codec
                .decompress_container(&Container::decode(&remote).expect("container decodes"))
                .expect("local decompress");
            assert_eq!(blocks.len(), reference.len());
            for (a, b) in blocks.iter().zip(&reference) {
                assert_eq!(a.dims(), b.dims(), "{name}: block dims differ");
                assert_eq!(a.data(), b.data(), "{name}: block data differs");
            }
        }
    }

    // Error path: a variable too short for one block must come back as a
    // typed refusal, not a hung or dead connection.
    let refusal = client.compress_as(CodecId::SzLike, "too-short", &ds.variables[0], 1_000, None);
    match refusal {
        Err(ClientError::Server { status, .. }) => assert_eq!(status, Status::Malformed),
        other => panic!("expected a Malformed refusal, got {other:?}"),
    }
    client
        .ping()
        .expect("connection still serves after a refusal");

    client.shutdown_server().expect("shutdown request");
    println!("service check OK");
}
