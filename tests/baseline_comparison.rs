//! Integration test reproducing the *qualitative* ordering behind the
//! paper's Figure 3 on a small training budget, with every compressor family
//! — the proposed pipeline, the four learned baselines and the two
//! rule-based coders — driven through the single [`Codec`] interface.

use gld_baselines::{SzCompressor, ZfpLikeCompressor};
use gld_core::{
    Codec, ErrorTarget, GldCompressor, GldConfig, GldTrainingBudget, LearnedBaseline,
    LearnedBaselineKind,
};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_tensor::stats::{max_abs_error, nrmse};

#[test]
fn every_codec_family_meets_the_bound_through_the_unified_interface() {
    // The structural property behind the paper's Figure 3: the proposed
    // method stores latents for *keyframes only*, so its latent bitstream is
    // a strict subset of what the per-frame baselines store through the same
    // VAE, while every learned method still satisfies the requested bound
    // after the shared PCA post-processing (applied inside the Codec impl).
    let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 61);
    let config = GldConfig::tiny();
    let budget = GldTrainingBudget {
        vae_steps: 200,
        diffusion_steps: 200,
        fine_tune_steps: 0,
        fine_tune_schedule: 16,
    };
    let compressor = GldCompressor::train(config, &ds.variables, budget);
    let block = ds.variables[0].frames.slice_axis(0, 0, config.block_frames);
    let target = 1e-2;

    // All four families behind one trait object list.
    let vae_sr = LearnedBaseline::new(LearnedBaselineKind::VaeSr, compressor.vae(), None);
    let cdc_x = LearnedBaseline::new(LearnedBaselineKind::CdcX, compressor.vae(), None);
    let sz = SzCompressor::new();
    let zfp = ZfpLikeCompressor::new();
    let codecs: [&dyn Codec; 5] = [&compressor, &vae_sr, &cdc_x, &sz, &zfp];

    for codec in codecs {
        let frame = codec.compress_block(&block, Some(ErrorTarget::Nrmse(target)));
        let recon = codec.decompress_block(&frame);
        assert_eq!(recon.dims(), block.dims(), "{}", codec.name());
        let err = nrmse(&block, &recon);
        assert!(
            err <= target * 1.01,
            "{} failed its bound: NRMSE {err} > {target}",
            codec.name()
        );
    }

    // Keyframe-only storage: the proposed method's latent stream is smaller
    // than what the per-frame baselines store through the same VAE.
    let ours = compressor.compress_block(&block, Some(target));
    let ours_latent_bytes = ours.keyframe_bytes.len();
    for (name, baseline) in [("VAE-SR", &vae_sr), ("CDC-X", &cdc_x)] {
        let latent_bytes = baseline.compress(&block).len();
        assert!(
            ours_latent_bytes < latent_bytes,
            "{name}: keyframe latent stream ({ours_latent_bytes} B) should be smaller than \
             the per-frame latent stream ({latent_bytes} B)"
        );
    }
}

#[test]
fn rule_based_codecs_respect_their_bound_on_every_dataset() {
    let spec = FieldSpec::tiny();
    let sz = SzCompressor::new();
    let zfp = ZfpLikeCompressor::new();
    for kind in DatasetKind::all() {
        let ds = generate(kind, &spec, 67);
        let frames = ds.variables[0].frames.slice_axis(0, 0, 8);
        let range = frames.max() - frames.min();
        for codec in [&sz as &dyn Codec, &zfp as &dyn Codec] {
            let eb = 1e-3 * range;
            let frame = codec.compress_block(&frames, Some(ErrorTarget::PointwiseAbs(eb)));
            let recon = codec.decompress_block(&frame);
            assert!(
                max_abs_error(&frames, &recon) <= eb * 1.0001,
                "{} violated its bound on {kind:?}",
                codec.name()
            );
            assert!(!frame.is_empty());
        }
    }
}

#[test]
fn learned_baselines_share_storage_structure_but_not_bitstreams() {
    // CDC-X and VAE-SR code the same latents with different entropy models;
    // their frames must differ while both reconstructing sensibly.
    let ds = generate(DatasetKind::S3d, &FieldSpec::tiny(), 71);
    let vae = gld_vae::Vae::new(gld_vae::VaeConfig::tiny());
    let block = ds.variables[0].frames.slice_axis(0, 0, 8);
    let cdc = LearnedBaseline::new(LearnedBaselineKind::CdcX, &vae, None);
    let vaesr = LearnedBaseline::new(LearnedBaselineKind::VaeSr, &vae, None);
    let cdc_frame = Codec::compress_block(&cdc, &block, None);
    let vaesr_frame = Codec::compress_block(&vaesr, &block, None);
    assert_ne!(cdc_frame, vaesr_frame);
    let a = Codec::decompress_block(&cdc, &cdc_frame);
    let b = Codec::decompress_block(&vaesr, &vaesr_frame);
    assert_eq!(a.dims(), block.dims());
    assert_eq!(b.dims(), block.dims());
}

#[test]
fn all_four_learned_kinds_roundtrip_through_the_codec_trait() {
    let ds = generate(DatasetKind::Jhtdb, &FieldSpec::tiny(), 73);
    let vae = gld_vae::Vae::new(gld_vae::VaeConfig::tiny());
    let block = ds.variables[0].frames.slice_axis(0, 0, 8);
    for kind in LearnedBaselineKind::all() {
        let baseline = LearnedBaseline::new(kind, &vae, None);
        let codec: &dyn Codec = &baseline;
        let frame = codec.compress_block(&block, None);
        let recon = codec.decompress_block(&frame);
        assert_eq!(recon.dims(), block.dims(), "{kind:?}");
        assert!(recon.data().iter().all(|v| v.is_finite()), "{kind:?}");
        assert!(frame.len() < block.numel() * 4, "{kind:?} did not compress");
    }
}
