//! The readiness-driven connection front end.
//!
//! One loop thread owns an [`epoll::Poller`], the listening socket, and every
//! connection's state machine; shard workers stay exactly as they were —
//! codec work never runs here.  The division of labour:
//!
//! * **Loop thread** (this module): accept, non-blocking reads into a
//!   [`StreamParser`](crate::protocol::StreamParser) per connection, request
//!   admission (per-connection outstanding bound, optional token-bucket rate
//!   limit, per-shard windows), inline ops (`Ping`, `Hello`, `Status`,
//!   `Shutdown`), response serialisation into per-connection write buffers,
//!   non-blocking flushes, connection reaping, graceful drain.
//! * **Shard workers** (`server.rs`): run admitted compress/decompress jobs
//!   and push a completion + waker notification back to the loop.
//!
//! Pipelining falls out of the design: every parsed request carries its own
//! id, responses are enqueued the moment their work completes, and nothing
//! forces completion order across shards — so responses go out **out of
//! order** and clients match on the echoed id.
//!
//! Backpressure is per connection.  A connection stops being *read* — its
//! epoll read interest is dropped, so a level-triggered poller stays quiet —
//! while it has `max_outstanding` codec requests unanswered or its write
//! buffer is over the backlog threshold; every other connection keeps
//! flowing.  A peer that stops draining its responses is reaped after
//! `write_timeout` without progress; a half-closed peer (read side EOF) is
//! served its remaining responses, then reaped.

use crate::protocol::{
    self, FrameHeader, Op, RawFrameHeader, Status, StatusResponse, StreamEvent, StreamParser,
};
use crate::server::{
    prepare_compress, prepare_decompress, Completion, Prepared, ServerShared, Session, ShardJob,
};
use epoll::{Event, Interest, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::Instant;

/// Poller token of the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Poller token of the cross-thread waker.
pub(crate) const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection (tokens are never reused).
const FIRST_CONN_TOKEN: u64 = 2;

/// Write-buffer backlog (bytes unflushed) above which a connection's reads
/// pause until the peer drains responses.
const READ_PAUSE_BACKLOG: usize = 1 << 20;

/// Per-connection token bucket limiting admissions of codec work.
struct TokenBucket {
    tokens: f64,
    capacity: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(capacity: u32, refill_per_sec: f64, now: Instant) -> Self {
        TokenBucket {
            tokens: capacity as f64,
            capacity: capacity as f64,
            refill_per_sec: refill_per_sec.max(0.0),
            last: now,
        }
    }

    fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One request parsed off a connection, waiting for its shard's window.
struct PendingRequest {
    conn: u64,
    request_id: u64,
    op: Op,
    request_bytes: usize,
    /// When `--op-deadline` is set: the instant after which this request is
    /// answered [`Status::DeadlineExceeded`] instead of being started.
    deadline: Option<Instant>,
    job: ShardJob,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    parser: StreamParser,
    /// Serialised responses not yet accepted by the kernel; `out_pos` marks
    /// the flushed prefix.
    out: Vec<u8>,
    out_pos: usize,
    /// Codec requests parsed off this connection and not yet answered
    /// (pending or admitted) — the per-connection outstanding bound.
    outstanding: usize,
    session: Session,
    bucket: Option<TokenBucket>,
    /// Peer sent EOF (half close): serve what is owed, then reap.
    read_closed: bool,
    /// A framing violation poisoned the stream: flush the error response,
    /// then close.
    fatal: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Last instant the kernel accepted response bytes (or the buffer was
    /// empty) — the stalled-writer clock.
    last_write_progress: Instant,
    /// Last instant the peer sent bytes — the `--idle-timeout` clock.
    last_activity: Instant,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Reads are paused while the connection is over either admission bound
    /// (or done reading for good).
    fn reads_paused(&self, max_outstanding: usize) -> bool {
        self.read_closed
            || self.fatal
            || self.outstanding >= max_outstanding
            || self.backlog() > READ_PAUSE_BACKLOG
    }

    fn desired_interest(&self, max_outstanding: usize, draining: bool) -> Interest {
        Interest {
            readable: !draining && !self.reads_paused(max_outstanding),
            writable: self.backlog() > 0,
        }
    }
}

/// The loop state: owned by exactly one thread for the server's lifetime.
pub(crate) struct EventLoop {
    shared: Arc<ServerShared>,
    poller: Poller,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    /// Requests waiting for their shard's window, per shard.
    pending: Vec<VecDeque<PendingRequest>>,
    /// Loop-authoritative admitted-but-uncompleted count, per shard.
    in_flight: Vec<usize>,
    next_token: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    pub(crate) fn new(shared: Arc<ServerShared>, poller: Poller, listener: TcpListener) -> Self {
        let shards = shared.shards.len();
        EventLoop {
            shared,
            poller,
            listener: Some(listener),
            conns: HashMap::new(),
            pending: (0..shards).map(|_| VecDeque::new()).collect(),
            in_flight: vec![0; shards],
            next_token: FIRST_CONN_TOKEN,
            draining: false,
            drain_deadline: None,
        }
    }

    /// Runs until the graceful drain completes: listener closed, every
    /// admitted request completed, every response flushed (or its consumer
    /// timed out).
    pub(crate) fn run(mut self) {
        if let Some(listener) = &self.listener {
            listener
                .set_nonblocking(true)
                .expect("nonblocking listener");
            self.poller
                .add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)
                .expect("register listener");
        }
        let mut events: Vec<Event> = Vec::with_capacity(256);
        loop {
            let timeout = Some(self.shared.config.poll_interval);
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken poller cannot serve; force the drain path.
                self.shared.trigger_shutdown();
            }
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.shared.waker.drain(),
                    token => self.conn_ready(token, event),
                }
            }
            let touched = self.drain_completions();
            for conn in touched {
                self.pump_conn(conn);
            }
            for shard in 0..self.pending.len() {
                self.try_admit(shard);
            }
            self.expire_pending();
            if self.shared.is_shutdown() && !self.draining {
                self.begin_drain();
            }
            self.reap();
            if self.draining && self.conns.is_empty() && self.in_flight.iter().all(|&n| n == 0) {
                return;
            }
        }
    }

    // ── accept ──────────────────────────────────────────────────────────

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        drop(stream);
                        continue;
                    }
                    self.register_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient failures (ECONNABORTED, EMFILE...): level-
                // triggered readiness re-fires next tick, which is the
                // back-off.
                Err(_) => return,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let now = Instant::now();
        let conn = Conn {
            parser: StreamParser::new(self.shared.config.max_body),
            out: Vec::new(),
            out_pos: 0,
            outstanding: 0,
            session: Session::default(),
            bucket: self
                .shared
                .config
                .rate_limit
                .as_ref()
                .map(|rl| TokenBucket::new(rl.capacity, rl.refill_per_sec, now)),
            read_closed: false,
            fatal: false,
            interest: Interest::READABLE,
            last_write_progress: now,
            last_activity: now,
            stream,
        };
        if self
            .poller
            .add(conn.stream.as_raw_fd(), token, Interest::READABLE)
            .is_err()
        {
            return;
        }
        self.shared.metrics.connection_opened();
        self.conns.insert(token, conn);
    }

    // ── per-connection I/O ──────────────────────────────────────────────

    fn conn_ready(&mut self, token: u64, event: Event) {
        if !self.conns.contains_key(&token) {
            return; // closed earlier in this batch
        }
        if event.error {
            self.close_conn(token);
            return;
        }
        if event.readable || event.hangup {
            self.read_conn(token);
        }
        if event.writable {
            self.flush_conn(token);
        }
        self.pump_conn(token);
    }

    /// Reads until `WouldBlock`, EOF, or this connection's backpressure
    /// bound, parsing frames as the bytes arrive.
    fn read_conn(&mut self, token: u64) {
        let max_outstanding = self.shared.config.max_outstanding;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.reads_paused(max_outstanding) {
                return;
            }
            let result = if fail::active() {
                // The `service.read` failpoint sits between the socket and
                // the parser: injected errors flow through the match arms
                // below exactly like real kernel failures.
                match fail::check("service.read") {
                    Some(fail::Action::ErrIo) => {
                        Err(std::io::Error::other("injected fault at service.read"))
                    }
                    Some(fail::Action::ErrInterrupted) => {
                        Err(std::io::ErrorKind::Interrupted.into())
                    }
                    Some(fail::Action::Delay(d)) => {
                        std::thread::sleep(d);
                        conn.stream.read(&mut chunk)
                    }
                    Some(fail::Action::Corrupt) => conn.stream.read(&mut chunk).inspect(|&n| {
                        if n > 0 {
                            chunk[0] ^= 0xFF;
                        }
                    }),
                    None => conn.stream.read(&mut chunk),
                }
            } else {
                conn.stream.read(&mut chunk)
            };
            match result {
                Ok(0) => {
                    conn.read_closed = true;
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.parser.push(&chunk[..n]);
                    self.parse_frames(token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Drains every complete frame the parser holds, respecting the
    /// connection's admission bounds between frames.
    fn parse_frames(&mut self, token: u64) {
        let max_outstanding = self.shared.config.max_outstanding;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.fatal || conn.outstanding >= max_outstanding {
                return;
            }
            match conn.parser.next_event() {
                StreamEvent::Incomplete => return,
                StreamEvent::Frame(raw, body) => self.process_frame(token, raw, body),
                StreamEvent::Fatal { error, request_id } => {
                    // The stream position is untrustworthy: answer best-
                    // effort (`Ping` is the neutral op for undecodable
                    // requests), flush, close.
                    self.shared.metrics.request_rejected();
                    let status = protocol::status_for(&error);
                    let message = error.to_string();
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.fatal = true;
                    }
                    self.enqueue_response(
                        token,
                        Op::Ping,
                        0,
                        status,
                        request_id,
                        message.as_bytes(),
                    );
                    return;
                }
            }
        }
    }

    fn process_frame(&mut self, token: u64, raw: RawFrameHeader, body: Vec<u8>) {
        let header = match raw.validate() {
            Ok(header) => header,
            Err(e) => {
                // Framing is intact (the parser consumed the declared body),
                // so an unknown op or status is answered and the connection
                // keeps serving — exactly the two-stage decode contract.
                self.shared.metrics.request_rejected();
                let status = protocol::status_for(&e);
                let message = e.to_string();
                self.enqueue_response(
                    token,
                    Op::Ping,
                    0,
                    status,
                    raw.request_id,
                    message.as_bytes(),
                );
                return;
            }
        };
        if header.status != Status::Ok {
            self.shared.metrics.request_rejected();
            self.enqueue_response(
                token,
                header.op,
                0,
                Status::Malformed,
                header.request_id,
                b"request frames must carry status 0",
            );
            return;
        }
        match header.op {
            Op::Ping => {
                self.enqueue_response(token, Op::Ping, 0, Status::Ok, header.request_id, &[]);
            }
            Op::Hello => self.handle_hello(token, &header, &body),
            Op::Status => self.handle_status(token, &header, &body),
            Op::Shutdown => {
                self.enqueue_response(token, Op::Shutdown, 0, Status::Ok, header.request_id, &[]);
                self.shared.trigger_shutdown();
            }
            Op::Compress | Op::Decompress => self.handle_codec_op(token, &header, body),
        }
    }

    fn handle_hello(&mut self, token: u64, header: &FrameHeader, body: &[u8]) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match crate::server::negotiate_hello(&self.shared, header, body, &mut conn.session) {
            Ok((response, body)) => {
                let frame = protocol::encode_frame(&response, &body);
                self.enqueue_raw(token, frame);
            }
            Err((status, message)) => {
                self.shared.metrics.request_rejected();
                self.enqueue_response(
                    token,
                    Op::Hello,
                    0,
                    status,
                    header.request_id,
                    message.as_bytes(),
                );
            }
        }
    }

    fn handle_status(&mut self, token: u64, header: &FrameHeader, body: &[u8]) {
        if !body.is_empty() {
            self.shared.metrics.request_rejected();
            self.enqueue_response(
                token,
                Op::Status,
                0,
                Status::Malformed,
                header.request_id,
                b"status requests carry an empty body",
            );
            return;
        }
        let snapshot = self.shared.metrics.snapshot();
        let response = StatusResponse {
            connections_active: snapshot.connections_active as u64,
            connections_opened: snapshot.connections_opened as u64,
            requests_rejected: snapshot.requests_rejected as u64,
            rate_limited: snapshot.requests_rate_limited as u64,
            deadlines_exceeded: snapshot.deadlines_exceeded as u64,
            reaped_idle: snapshot.connections_reaped_idle as u64,
            faults_injected: fail::total_hits(),
            shards: snapshot
                .shards
                .iter()
                .map(|s| protocol::ShardStatus {
                    in_flight: s.in_flight as u64,
                    peak_in_flight: s.peak_in_flight as u64,
                    admitted: s.admitted as u64,
                    completed: s.completed as u64,
                    blocks: s.blocks as u64,
                    peak_resident_blocks: s.peak_resident_blocks as u64,
                    bytes_in: s.bytes_in as u64,
                    bytes_out: s.bytes_out as u64,
                })
                .collect(),
        };
        let body = response.encode_body();
        self.enqueue_response(token, Op::Status, 0, Status::Ok, header.request_id, &body);
    }

    /// Compress/decompress: rate limit, decode + precheck inline, then queue
    /// for the shard window.
    fn handle_codec_op(&mut self, token: u64, header: &FrameHeader, body: Vec<u8>) {
        if self.draining {
            self.shared.metrics.request_rejected();
            self.enqueue_response(
                token,
                header.op,
                0,
                Status::ShuttingDown,
                header.request_id,
                b"server is draining",
            );
            return;
        }
        if fail::active() {
            // The `shard.submit` failpoint sits before shard hand-off: an
            // injected error refuses the request with a typed status (the
            // op was never admitted, so it is safe to retry); a delay
            // models a slow submission path.
            match fail::check("shard.submit") {
                Some(fail::Action::ErrIo) | Some(fail::Action::Corrupt) => {
                    self.shared.metrics.request_rejected();
                    self.enqueue_response(
                        token,
                        header.op,
                        0,
                        Status::Internal,
                        header.request_id,
                        b"injected fault at shard.submit",
                    );
                    return;
                }
                Some(fail::Action::Delay(d)) => std::thread::sleep(d),
                Some(fail::Action::ErrInterrupted) | None => {}
            }
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if let Some(bucket) = &mut conn.bucket {
            if !bucket.try_take(Instant::now()) {
                self.shared.metrics.request_rate_limited();
                self.enqueue_response(
                    token,
                    header.op,
                    0,
                    Status::RateLimited,
                    header.request_id,
                    b"per-connection admission budget exhausted, retry later",
                );
                return;
            }
        }
        let session = conn.session;
        let prepared = match header.op {
            Op::Compress => prepare_compress(&self.shared, header, &body, &session),
            _ => prepare_decompress(&self.shared, &body),
        };
        match prepared {
            Prepared::Refuse { status, message } => {
                self.shared.metrics.request_rejected();
                self.enqueue_response(
                    token,
                    header.op,
                    0,
                    status,
                    header.request_id,
                    message.as_bytes(),
                );
            }
            Prepared::Job { shard, job } => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                conn.outstanding += 1;
                let deadline = self.shared.config.op_deadline.map(|d| Instant::now() + d);
                self.pending[shard].push_back(PendingRequest {
                    conn: token,
                    request_id: header.request_id,
                    op: header.op,
                    request_bytes: body.len(),
                    deadline,
                    job,
                });
                self.try_admit(shard);
            }
        }
    }

    // ── admission & completion ──────────────────────────────────────────

    /// Moves pending requests into the shard while its window has room.
    /// The loop thread is the only admitter, so the in-flight gauge can
    /// never exceed the window.
    fn try_admit(&mut self, shard: usize) {
        let window = self.shared.config.shard_window.max(1);
        while self.in_flight[shard] < window {
            let Some(request) = self.pending[shard].pop_front() else {
                return;
            };
            if !self.conns.contains_key(&request.conn) {
                // Connection died before its request was admitted; the
                // request dies with it, never charging the window.
                continue;
            }
            if request
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
            {
                // The request sat out its execution deadline waiting for a
                // window slot: answer instead of starting stale work.
                self.expire_request(request.conn, request.op, request.request_id);
                continue;
            }
            self.in_flight[shard] += 1;
            self.shared
                .metrics
                .shard(shard)
                .admit(request.request_bytes);
            let shared = Arc::clone(&self.shared);
            let PendingRequest {
                conn,
                request_id,
                op,
                job,
                ..
            } = request;
            let wrapped: Box<dyn FnOnce() + Send> = Box::new(move || {
                let result = job();
                shared.push_completion(Completion {
                    conn,
                    shard,
                    request_id,
                    op,
                    result,
                });
            });
            self.shared.shards[shard].push(wrapped);
        }
    }

    /// Answers one queued request with [`Status::DeadlineExceeded`] and
    /// releases its outstanding slot (it was never admitted, so no shard
    /// window is charged).
    fn expire_request(&mut self, token: u64, op: Op, request_id: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.outstanding = conn.outstanding.saturating_sub(1);
        }
        self.shared.metrics.deadline_exceeded();
        self.enqueue_response(
            token,
            op,
            0,
            Status::DeadlineExceeded,
            request_id,
            b"request exceeded its execution deadline before a shard could start it",
        );
    }

    /// Sweeps every shard's pending queue for requests past their deadline,
    /// answering them promptly instead of waiting for a window slot to
    /// surface them.  Runs each idle tick; a no-op without `--op-deadline`.
    fn expire_pending(&mut self) {
        if self.shared.config.op_deadline.is_none() {
            return;
        }
        let now = Instant::now();
        let mut expired = Vec::new();
        for queue in &mut self.pending {
            queue.retain(|request| {
                let overdue = request.deadline.is_some_and(|deadline| now >= deadline);
                if overdue {
                    expired.push((request.conn, request.op, request.request_id));
                }
                !overdue
            });
        }
        for (token, op, request_id) in expired {
            self.expire_request(token, op, request_id);
            self.pump_conn(token);
        }
    }

    /// Applies every completion the workers have queued: release the window
    /// slot, account metrics, hand the response to its connection (which may
    /// be gone — the slot is released either way).  Returns the connections
    /// that received responses.
    fn drain_completions(&mut self) -> Vec<u64> {
        let completions = self.shared.take_completions();
        let mut touched = Vec::new();
        for completion in completions {
            let shard_metrics = self.shared.metrics.shard(completion.shard);
            if let Some(stream_metrics) = &completion.result.stream {
                shard_metrics.record_stream(stream_metrics);
            } else if completion.result.blocks > 0 {
                shard_metrics.record_blocks(completion.result.blocks);
            }
            shard_metrics.complete(completion.result.body.len());
            debug_assert!(self.in_flight[completion.shard] > 0);
            self.in_flight[completion.shard] -= 1;
            if let Some(conn) = self.conns.get_mut(&completion.conn) {
                debug_assert!(conn.outstanding > 0);
                conn.outstanding -= 1;
                self.enqueue_response(
                    completion.conn,
                    completion.op,
                    completion.result.codec,
                    completion.result.status,
                    completion.request_id,
                    &completion.result.body,
                );
                touched.push(completion.conn);
            }
        }
        touched
    }

    // ── write path ──────────────────────────────────────────────────────

    fn enqueue_response(
        &mut self,
        token: u64,
        op: Op,
        codec: u8,
        status: Status,
        request_id: u64,
        body: &[u8],
    ) {
        let header = FrameHeader::response(op, codec, status, request_id, body.len() as u64);
        let frame = protocol::encode_frame(&header, body);
        self.enqueue_raw(token, frame);
    }

    fn enqueue_raw(&mut self, token: u64, frame: Vec<u8>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.out.extend_from_slice(&frame);
        self.flush_conn(token);
    }

    /// Writes buffered response bytes until the kernel pushes back.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut broken = false;
        while conn.out_pos < conn.out.len() {
            let result = if fail::active() {
                // The `service.write` failpoint mirrors `service.read`:
                // injected outcomes take the same arms as kernel ones.
                match fail::check("service.write") {
                    Some(fail::Action::ErrIo) => {
                        Err(std::io::Error::other("injected fault at service.write"))
                    }
                    Some(fail::Action::ErrInterrupted) => {
                        Err(std::io::ErrorKind::Interrupted.into())
                    }
                    Some(fail::Action::Delay(d)) => {
                        std::thread::sleep(d);
                        conn.stream.write(&conn.out[conn.out_pos..])
                    }
                    Some(fail::Action::Corrupt) => {
                        let at = conn.out_pos;
                        conn.out[at] ^= 0xFF;
                        conn.stream.write(&conn.out[conn.out_pos..])
                    }
                    None => conn.stream.write(&conn.out[conn.out_pos..]),
                }
            } else {
                conn.stream.write(&conn.out[conn.out_pos..])
            };
            match result {
                Ok(0) => {
                    broken = true;
                    break;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_write_progress = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
        if broken {
            self.close_conn(token);
            return;
        }
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            conn.last_write_progress = Instant::now();
        } else if conn.out_pos > READ_PAUSE_BACKLOG && conn.out_pos >= conn.out.len() / 2 {
            // Reclaim the flushed prefix so a long-lived pipelined
            // connection's buffer does not grow monotonically.
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
    }

    /// Re-evaluates a connection after any state change: parse newly
    /// unblocked frames, flush, and sync poller interest.
    fn pump_conn(&mut self, token: u64) {
        self.parse_frames(token);
        let max_outstanding = self.shared.config.max_outstanding;
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let desired = conn.desired_interest(max_outstanding, draining);
        if desired != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_err()
            {
                self.close_conn(token);
                return;
            }
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.interest = desired;
            }
        }
    }

    // ── lifecycle ───────────────────────────────────────────────────────

    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        self.shared.metrics.connection_closed();
        // Unadmitted requests die with the connection (admitted ones finish
        // on their shard; their completions release the slots).
        for queue in &mut self.pending {
            queue.retain(|p| p.conn != token);
        }
    }

    /// Closes finished connections, reaps stalled writers, and — with
    /// `--idle-timeout` — reaps silent keepalives that would otherwise hold
    /// their fd forever.
    fn reap(&mut self) {
        let now = Instant::now();
        let write_timeout = self.shared.config.write_timeout;
        let idle_timeout = self.shared.config.idle_timeout;
        let force = self
            .drain_deadline
            .map(|deadline| now >= deadline)
            .unwrap_or(false);
        let done: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter_map(|(&token, conn)| {
                let idle = conn.outstanding == 0 && conn.backlog() == 0;
                let finished = idle && (conn.read_closed || conn.fatal || self.draining);
                let stalled = conn.backlog() > 0
                    && now.saturating_duration_since(conn.last_write_progress) > write_timeout;
                if finished || stalled || force {
                    return Some((token, false));
                }
                // The idle-timeout arm: a connection owed nothing (no
                // outstanding work, no unflushed bytes) whose peer has been
                // silent past the configured timeout.
                let idle_expired = idle
                    && idle_timeout.is_some_and(|timeout| {
                        now.saturating_duration_since(conn.last_activity) > timeout
                    });
                idle_expired.then_some((token, true))
            })
            .collect();
        for (token, idle_reaped) in done {
            if idle_reaped {
                self.shared.metrics.connection_reaped_idle();
            }
            self.close_conn(token);
        }
    }

    /// Starts the graceful drain: close the listener, refuse unadmitted
    /// requests, stop reading, let admitted work finish and flush.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.shared.config.write_timeout);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
            // Dropping the listener closes the socket: late connects are
            // refused by the kernel, not left dangling.
        }
        let pending: Vec<PendingRequest> = self
            .pending
            .iter_mut()
            .flat_map(|queue| queue.drain(..))
            .collect();
        for request in pending {
            if let Some(conn) = self.conns.get_mut(&request.conn) {
                conn.outstanding -= 1;
            }
            self.shared.metrics.request_rejected();
            self.enqueue_response(
                request.conn,
                request.op,
                0,
                Status::ShuttingDown,
                request.request_id,
                b"server is draining",
            );
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.pump_conn(token);
        }
    }
}
