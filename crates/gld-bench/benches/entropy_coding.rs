//! Criterion micro-benchmarks for the entropy-coding substrate: the
//! production byte-wise range coder against the reference arithmetic coder,
//! under the Gaussian conditional and histogram models.

use criterion::{criterion_group, criterion_main, Criterion};
use gld_entropy::{
    ArithmeticDecoder, ArithmeticEncoder, GaussianConditionalModel, HistogramModel, RangeDecoder,
    RangeEncoder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_entropy(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 4096;
    let symbols: Vec<i32> = (0..n).map(|_| rng.gen_range(-20..21)).collect();
    let means: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
    let scales: Vec<f32> = (0..n).map(|_| rng.gen_range(0.5..4.0)).collect();
    let histogram = HistogramModel::fit(&symbols);
    let gaussian = GaussianConditionalModel::new();

    let histogram_stream = {
        let mut enc = RangeEncoder::new();
        histogram.encode(&mut enc, &symbols);
        enc.finish()
    };
    let gaussian_stream = {
        let mut enc = RangeEncoder::new();
        gaussian.encode(&mut enc, &symbols, &means, &scales);
        enc.finish()
    };
    let gaussian_stream_arith = {
        let mut enc = ArithmeticEncoder::new();
        gaussian.encode(&mut enc, &symbols, &means, &scales);
        enc.finish()
    };

    let mut group = c.benchmark_group("entropy_coding");
    group.sample_size(20);
    group.bench_function("histogram_encode_4k_range", |bench| {
        bench.iter(|| {
            let mut enc = RangeEncoder::new();
            histogram.encode(&mut enc, black_box(&symbols));
            black_box(enc.finish())
        })
    });
    group.bench_function("histogram_encode_4k_arith", |bench| {
        bench.iter(|| {
            let mut enc = ArithmeticEncoder::new();
            histogram.encode(&mut enc, black_box(&symbols));
            black_box(enc.finish())
        })
    });
    group.bench_function("histogram_decode_4k_range_lut", |bench| {
        bench.iter(|| {
            let mut dec = RangeDecoder::new(black_box(&histogram_stream));
            black_box(histogram.decode(&mut dec, n))
        })
    });
    group.bench_function("gaussian_encode_4k_range", |bench| {
        bench.iter(|| {
            let mut enc = RangeEncoder::new();
            gaussian.encode(&mut enc, black_box(&symbols), &means, &scales);
            black_box(enc.finish())
        })
    });
    group.bench_function("gaussian_decode_4k_range", |bench| {
        bench.iter(|| {
            let mut dec = RangeDecoder::new(black_box(&gaussian_stream));
            black_box(gaussian.decode(&mut dec, &means, &scales))
        })
    });
    group.bench_function("gaussian_decode_4k_arith", |bench| {
        bench.iter(|| {
            let mut dec = ArithmeticDecoder::new(black_box(&gaussian_stream_arith));
            black_box(gaussian.decode(&mut dec, &means, &scales))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_entropy);
criterion_main!(benches);
