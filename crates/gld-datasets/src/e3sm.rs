//! Synthetic E3SM-like climate fields.
//!
//! The real E3SM high-resolution atmosphere output consists of smooth,
//! planetary-scale fields (temperature, humidity, winds, surface pressure,
//! precipitation proxies) that evolve slowly between hourly snapshots, carry
//! strong periodic (diurnal) forcing, and span wildly different absolute
//! magnitudes per variable.  Those are exactly the properties that decide how
//! well a temporal-interpolation compressor works, and they are what this
//! generator reproduces:
//!
//! * a superposition of low-wavenumber harmonics advected slowly in time
//!   (large-scale weather patterns),
//! * a diurnal sinusoidal modulation,
//! * a small amount of spatially correlated noise (mesoscale variability),
//! * per-variable offsets/scales spanning several orders of magnitude.

use crate::field::{DatasetKind, FieldSpec, ScientificDataset, Variable};
use gld_tensor::{Tensor, TensorRng};

/// Per-variable physical scales loosely modelled on E3SM atmosphere output.
/// `(name, offset, scale)` — the generated unit-range signal is mapped to
/// `offset + scale * signal`.
const VARIABLE_SCALES: [(&str, f32, f32); 5] = [
    ("surface_temperature", 288.0, 40.0),
    ("specific_humidity", 8e-3, 6e-3),
    ("zonal_wind", 0.0, 25.0),
    ("surface_pressure", 1.0e5, 5.0e3),
    ("shortwave_flux", 3.4e2, 3.4e2),
];

/// Number of large-scale harmonics superimposed per variable.
const NUM_MODES: usize = 6;

struct Mode {
    kx: f32,
    ky: f32,
    phase: f32,
    omega: f32,
    amplitude: f32,
    drift_x: f32,
    drift_y: f32,
}

/// Generates an E3SM-like dataset.
pub fn generate(spec: &FieldSpec, rng: &mut TensorRng) -> ScientificDataset {
    let mut variables = Vec::with_capacity(spec.variables);
    for vi in 0..spec.variables {
        let (name, offset, scale) = VARIABLE_SCALES[vi % VARIABLE_SCALES.len()];
        let name = if vi < VARIABLE_SCALES.len() {
            name.to_string()
        } else {
            format!("{name}_{vi}")
        };
        let frames = generate_variable(spec, rng, offset, scale);
        variables.push(Variable::new(name, frames));
    }
    ScientificDataset {
        kind: DatasetKind::E3sm,
        spec: *spec,
        variables,
    }
}

fn generate_variable(spec: &FieldSpec, rng: &mut TensorRng, offset: f32, scale: f32) -> Tensor {
    let (t_len, h, w) = (spec.timesteps, spec.height, spec.width);
    // Large-scale modes: low wavenumbers, slow temporal rotation, slow drift.
    let modes: Vec<Mode> = (0..NUM_MODES)
        .map(|m| Mode {
            kx: rng.sample_uniform(0.5, 3.0) * 2.0 * std::f32::consts::PI / w as f32,
            ky: rng.sample_uniform(0.5, 3.0) * 2.0 * std::f32::consts::PI / h as f32,
            phase: rng.sample_uniform(0.0, 2.0 * std::f32::consts::PI),
            omega: rng.sample_uniform(0.01, 0.08),
            amplitude: 1.0 / (m as f32 + 1.0),
            drift_x: rng.sample_uniform(-0.4, 0.4),
            drift_y: rng.sample_uniform(-0.25, 0.25),
        })
        .collect();
    let diurnal_phase = rng.sample_uniform(0.0, 2.0 * std::f32::consts::PI);
    // Smooth spatial noise texture, fixed in time, modulated slowly: mimics
    // orography-locked variability without destroying temporal coherence.
    let texture = smooth_noise(h, w, rng);

    let mut data = vec![0.0f32; t_len * h * w];
    for t in 0..t_len {
        let tt = t as f32;
        let diurnal = 0.25 * (2.0 * std::f32::consts::PI * tt / 24.0 + diurnal_phase).sin();
        for y in 0..h {
            for x in 0..w {
                let mut v = 0.0f32;
                for mode in &modes {
                    let xx = x as f32 - mode.drift_x * tt;
                    let yy = y as f32 - mode.drift_y * tt;
                    v += mode.amplitude
                        * (mode.kx * xx + mode.ky * yy + mode.phase + mode.omega * tt).sin();
                }
                v = v / NUM_MODES as f32
                    + diurnal
                    + 0.1 * texture[y * w + x] * (1.0 + 0.2 * diurnal);
                data[(t * h + y) * w + x] = offset + scale * v;
            }
        }
    }
    Tensor::from_vec(data, &[t_len, h, w])
}

/// Smooth unit-variance spatial noise built from a handful of random
/// medium-wavenumber harmonics.
fn smooth_noise(h: usize, w: usize, rng: &mut TensorRng) -> Vec<f32> {
    let mut out = vec![0.0f32; h * w];
    let modes = 8;
    for _ in 0..modes {
        let kx = rng.sample_uniform(2.0, 6.0) * 2.0 * std::f32::consts::PI / w as f32;
        let ky = rng.sample_uniform(2.0, 6.0) * 2.0 * std::f32::consts::PI / h as f32;
        let phase = rng.sample_uniform(0.0, 2.0 * std::f32::consts::PI);
        let amp = rng.sample_uniform(0.5, 1.0);
        for y in 0..h {
            for x in 0..w {
                out[y * w + x] += amp * (kx * x as f32 + ky * y as f32 + phase).sin();
            }
        }
    }
    let norm = (modes as f32).sqrt();
    for v in &mut out {
        *v /= norm;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gld_tensor::stats::nrmse;

    fn small() -> ScientificDataset {
        let mut rng = TensorRng::new(7);
        generate(&FieldSpec::tiny(), &mut rng)
    }

    #[test]
    fn shape_and_determinism() {
        let a = small();
        let b = small();
        assert_eq!(a.variables.len(), 2);
        assert_eq!(a.variables[0].frames.dims(), &[16, 16, 16]);
        assert_eq!(a.variables[0].frames, b.variables[0].frames);
        assert_eq!(a.variables[0].name, "surface_temperature");
    }

    #[test]
    fn variables_span_different_magnitudes() {
        let mut rng = TensorRng::new(3);
        let ds = generate(&FieldSpec::new(4, 8, 16, 16), &mut rng);
        let t_range = ds.variables[0].range();
        let q_range = ds.variables[1].range();
        // Temperature ~ hundreds of K, humidity ~ 1e-2: ratio of scales must
        // be large (the property that forces per-frame normalisation).
        assert!(t_range.1.abs() / q_range.1.abs() > 1e3);
    }

    #[test]
    fn fields_are_temporally_smooth() {
        // Consecutive frames must be much closer than frames far apart —
        // the property that makes keyframe interpolation viable.
        let ds = small();
        let frames = &ds.variables[0].frames;
        let f0 = frames.slice_axis(0, 0, 1);
        let f1 = frames.slice_axis(0, 1, 2);
        let f8 = frames.slice_axis(0, 8, 9);
        let near = nrmse(&f0, &f1);
        let far = nrmse(&f0, &f8);
        assert!(near < far, "near {near} far {far}");
        assert!(near < 0.1, "consecutive frames too different: {near}");
    }

    #[test]
    fn fields_are_spatially_smooth() {
        // Neighbouring pixels are highly correlated (large-scale structure).
        let ds = small();
        let f = ds.variables[0].frame(0);
        let (h, w) = (f.dim(0), f.dim(1));
        let range = f.max() - f.min();
        let mut diff_sum = 0.0;
        let mut count = 0;
        for y in 0..h {
            for x in 1..w {
                diff_sum += (f.at(&[y, x]) - f.at(&[y, x - 1])).abs();
                count += 1;
            }
        }
        let mean_step = diff_sum / count as f32;
        assert!(
            mean_step < 0.2 * range,
            "mean step {mean_step} vs range {range}"
        );
    }

    #[test]
    fn different_seeds_give_different_weather() {
        let mut r1 = TensorRng::new(1);
        let mut r2 = TensorRng::new(2);
        let a = generate(&FieldSpec::tiny(), &mut r1);
        let b = generate(&FieldSpec::tiny(), &mut r2);
        assert_ne!(a.variables[0].frames, b.variables[0].frames);
    }
}
