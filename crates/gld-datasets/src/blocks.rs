//! Spatiotemporal block pipeline: temporal windows, spatial patches and the
//! training-sample iterator used by the VAE and diffusion trainers.

use crate::field::Variable;
use gld_tensor::{Tensor, TensorRng};

/// Geometry of the blocks fed to the compressors: `frames` consecutive
/// timesteps of `patch × patch` crops (the paper uses N = 16 frames and
/// 256 × 256 crops; this reproduction scales the spatial size down).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSpec {
    /// Temporal length N of a block.
    pub frames: usize,
    /// Spatial patch edge length.
    pub patch: usize,
}

impl BlockSpec {
    /// Creates a block spec.
    pub fn new(frames: usize, patch: usize) -> Self {
        assert!(frames > 0 && patch > 0, "block spec must be positive");
        BlockSpec { frames, patch }
    }
}

/// A contiguous temporal window of a variable: frames `[start, start + len)`.
#[derive(Clone, Debug)]
pub struct TemporalWindow {
    /// Index of the first frame.
    pub start: usize,
    /// The `[len, H, W]` data.
    pub data: Tensor,
}

impl TemporalWindow {
    /// Number of frames in the window.
    pub fn len(&self) -> usize {
        self.data.dim(0)
    }

    /// True when the window holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Number of complete non-overlapping `frames`-length temporal windows in a
/// variable (a final partial window is dropped, matching how block-based
/// compressors tile the time axis).
pub fn temporal_window_count(variable: &Variable, frames: usize) -> usize {
    assert!(frames > 0, "window length must be positive");
    variable.timesteps() / frames
}

/// Materialises the window at `index` (windows are indexed `0..count` in
/// temporal order).  Only this window's frames are copied, so parallel
/// workers can pull windows by index without the caller building the whole
/// window list.
pub fn temporal_window_at(variable: &Variable, frames: usize, index: usize) -> TemporalWindow {
    let count = temporal_window_count(variable, frames);
    assert!(
        index < count,
        "window index {index} out of range (count {count})"
    );
    let start = index * frames;
    TemporalWindow {
        start,
        data: variable.frames.slice_axis(0, start, start + frames),
    }
}

/// Streaming iterator over a variable's complete temporal windows: each
/// window is sliced out lazily on `next()`, so iterating never materialises
/// more than one window beyond what the consumer holds.
pub struct TemporalWindows<'a> {
    variable: &'a Variable,
    frames: usize,
    next: usize,
    count: usize,
}

impl TemporalWindows<'_> {
    /// Total number of complete windows this iterator will yield — the
    /// count `gld-core`'s compress paths validate and tile against (claim
    /// indices, container frame counts, derived sampling seeds all range
    /// over `0..count_total()`).
    pub fn count_total(&self) -> usize {
        self.count
    }
}

impl Iterator for TemporalWindows<'_> {
    type Item = TemporalWindow;

    fn next(&mut self) -> Option<TemporalWindow> {
        if self.next >= self.count {
            return None;
        }
        let window = temporal_window_at(self.variable, self.frames, self.next);
        self.next += 1;
        Some(window)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.count - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TemporalWindows<'_> {}

/// Streams a variable's non-overlapping temporal windows of `frames`
/// timesteps without building the whole window list.
pub fn temporal_windows_iter(variable: &Variable, frames: usize) -> TemporalWindows<'_> {
    TemporalWindows {
        variable,
        frames,
        next: 0,
        count: temporal_window_count(variable, frames),
    }
}

/// Collects every complete temporal window into a `Vec`.  Prefer
/// [`temporal_windows_iter`] (streaming) or [`temporal_window_at`] (random
/// access for parallel workers) when the list is not needed all at once.
pub fn temporal_windows(variable: &Variable, frames: usize) -> Vec<TemporalWindow> {
    temporal_windows_iter(variable, frames).collect()
}

/// Iterator over deterministic, non-overlapping spatial tiles of a temporal
/// window (used at compression time so every pixel belongs to exactly one
/// block).
pub struct BlockIterator<'a> {
    window: &'a TemporalWindow,
    patch: usize,
    next_y: usize,
    next_x: usize,
}

impl<'a> BlockIterator<'a> {
    /// Creates a tile iterator.  The window's spatial extent must be a
    /// multiple of the patch size.
    pub fn new(window: &'a TemporalWindow, patch: usize) -> Self {
        let h = window.data.dim(1);
        let w = window.data.dim(2);
        assert!(
            h.is_multiple_of(patch) && w.is_multiple_of(patch),
            "spatial extent {h}x{w} must be divisible by patch {patch}"
        );
        BlockIterator {
            window,
            patch,
            next_y: 0,
            next_x: 0,
        }
    }
}

/// A spatiotemporal block: `[N, patch, patch]` plus its source location.
#[derive(Clone, Debug)]
pub struct Block {
    /// Frame offset of the source window.
    pub t_start: usize,
    /// Row offset within the frame.
    pub y: usize,
    /// Column offset within the frame.
    pub x: usize,
    /// The `[N, patch, patch]` data.
    pub data: Tensor,
}

impl<'a> Iterator for BlockIterator<'a> {
    type Item = Block;

    fn next(&mut self) -> Option<Block> {
        let h = self.window.data.dim(1);
        let w = self.window.data.dim(2);
        if self.next_y + self.patch > h {
            return None;
        }
        let (y, x) = (self.next_y, self.next_x);
        let data = self
            .window
            .data
            .slice_axis(1, y, y + self.patch)
            .slice_axis(2, x, x + self.patch);
        self.next_x += self.patch;
        if self.next_x + self.patch > w {
            self.next_x = 0;
            self.next_y += self.patch;
        }
        Some(Block {
            t_start: self.window.start,
            y,
            x,
            data,
        })
    }
}

/// Reassembles non-overlapping blocks (as produced by [`BlockIterator`])
/// back into a `[N, H, W]` window.
pub fn assemble_blocks(blocks: &[Block], frames: usize, height: usize, width: usize) -> Tensor {
    let mut out = Tensor::zeros(&[frames, height, width]);
    for block in blocks {
        let patch_h = block.data.dim(1);
        let patch_w = block.data.dim(2);
        for t in 0..frames {
            for dy in 0..patch_h {
                for dx in 0..patch_w {
                    out.set(
                        &[t, block.y + dy, block.x + dx],
                        block.data.at(&[t, dy, dx]),
                    );
                }
            }
        }
    }
    out
}

/// Draws a random training sample: `frames` consecutive timesteps and a
/// random `patch × patch` crop, as in the paper's training procedure
/// ("randomly sample N consecutive frames … randomly crop patches").
pub fn sample_training_block(variable: &Variable, spec: BlockSpec, rng: &mut TensorRng) -> Tensor {
    let t_total = variable.timesteps();
    let h = variable.frames.dim(1);
    let w = variable.frames.dim(2);
    assert!(t_total >= spec.frames, "not enough timesteps for a block");
    assert!(
        h >= spec.patch && w >= spec.patch,
        "frame {h}x{w} smaller than patch {}",
        spec.patch
    );
    let t0 = rng.sample_index(t_total - spec.frames + 1);
    let y0 = rng.sample_index(h - spec.patch + 1);
    let x0 = rng.sample_index(w - spec.patch + 1);
    variable
        .frames
        .slice_axis(0, t0, t0 + spec.frames)
        .slice_axis(1, y0, y0 + spec.patch)
        .slice_axis(2, x0, x0 + spec.patch)
}

/// Converts a `[N, H, W]` block into the NCHW layout expected by the VAE
/// (each frame becomes a single-channel image): `[N, 1, H, W]`.
pub fn block_to_nchw(block: &Tensor) -> Tensor {
    assert_eq!(block.rank(), 3, "block must be [N, H, W]");
    let (n, h, w) = (block.dim(0), block.dim(1), block.dim(2));
    block.reshape(&[n, 1, h, w])
}

/// Inverse of [`block_to_nchw`].
pub fn nchw_to_block(frames: &Tensor) -> Tensor {
    assert_eq!(frames.rank(), 4, "frames must be [N, 1, H, W]");
    assert_eq!(frames.dim(1), 1, "expected a single channel");
    let (n, h, w) = (frames.dim(0), frames.dim(2), frames.dim(3));
    frames.reshape(&[n, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldSpec;
    use gld_tensor::TensorRng;

    fn variable() -> Variable {
        let mut rng = TensorRng::new(0);
        let spec = FieldSpec::tiny();
        crate::e3sm::generate(&spec, &mut rng).variables.remove(0)
    }

    #[test]
    fn temporal_windows_tile_the_time_axis() {
        let v = variable(); // 16 frames
        let windows = temporal_windows(&v, 8);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].start, 0);
        assert_eq!(windows[1].start, 8);
        assert_eq!(windows[0].data.dims(), &[8, 16, 16]);
        // Partial windows are dropped.
        let windows = temporal_windows(&v, 7);
        assert_eq!(windows.len(), 2);
    }

    #[test]
    fn block_iterator_covers_every_pixel_once() {
        let v = variable();
        let windows = temporal_windows(&v, 16);
        let blocks: Vec<Block> = BlockIterator::new(&windows[0], 8).collect();
        assert_eq!(blocks.len(), 4); // 16x16 into 8x8 tiles
        let rebuilt = assemble_blocks(&blocks, 16, 16, 16);
        assert_eq!(rebuilt, windows[0].data);
    }

    #[test]
    fn training_sampler_respects_spec_and_seed() {
        let v = variable();
        let spec = BlockSpec::new(4, 8);
        let mut r1 = TensorRng::new(9);
        let mut r2 = TensorRng::new(9);
        let a = sample_training_block(&v, spec, &mut r1);
        let b = sample_training_block(&v, spec, &mut r2);
        assert_eq!(a.dims(), &[4, 8, 8]);
        assert_eq!(a, b);
        // Subsequent draws differ (with overwhelming probability).
        let c = sample_training_block(&v, spec, &mut r1);
        assert_ne!(a, c);
    }

    #[test]
    fn nchw_roundtrip() {
        let v = variable();
        let block = v.frames.slice_axis(0, 0, 4);
        let nchw = block_to_nchw(&block);
        assert_eq!(nchw.dims(), &[4, 1, 16, 16]);
        assert_eq!(nchw_to_block(&nchw), block);
    }

    #[test]
    fn streaming_iterator_matches_collected_windows() {
        let v = variable(); // 16 frames
        assert_eq!(temporal_window_count(&v, 8), 2);
        assert_eq!(temporal_window_count(&v, 7), 2);
        assert_eq!(temporal_window_count(&v, 17), 0);
        let streamed: Vec<TemporalWindow> = temporal_windows_iter(&v, 8).collect();
        let collected = temporal_windows(&v, 8);
        assert_eq!(streamed.len(), collected.len());
        for (s, c) in streamed.iter().zip(&collected) {
            assert_eq!(s.start, c.start);
            assert_eq!(s.data, c.data);
        }
        let mut iter = temporal_windows_iter(&v, 8);
        assert_eq!(iter.len(), 2);
        iter.next();
        assert_eq!(iter.len(), 1);
        // Random access agrees with iteration order.
        assert_eq!(temporal_window_at(&v, 8, 1).start, 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_index_out_of_range_panics() {
        let v = variable();
        let _ = temporal_window_at(&v, 8, 2);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn block_iterator_rejects_indivisible_patch() {
        let v = variable();
        let windows = temporal_windows(&v, 16);
        let _ = BlockIterator::new(&windows[0], 5);
    }
}
