//! Contract tests for the binary container format and the parallel block
//! pipeline: encode→decode equality, reported sizes matching measured
//! serialized lengths, header validation (v2 writes per-frame CRC-32
//! trailers; see `tests/streaming_executor.rs` for v1-compat and corruption
//! detection), per-block seed derivation and parallel-vs-sequential
//! bit-identical output through the streaming block executor.

use gld_baselines::SzCompressor;
use gld_core::{
    derive_block_seed, Codec, CodecId, CompressedBlock, Container, ContainerError, ErrorTarget,
    GldCompressor, GldConfig, LearnedBaseline, LearnedBaselineKind, StreamConfig,
};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_diffusion::ConditionalDiffusion;
use gld_vae::{Vae, VaeConfig};

/// An untrained (but fully functional and deterministic) pipeline — the
/// container/framing contracts must hold regardless of model quality.
fn untrained_compressor() -> GldCompressor {
    let config = GldConfig::tiny();
    GldCompressor::from_parts(
        config,
        Vae::new(config.vae),
        ConditionalDiffusion::new(config.diffusion),
    )
}

#[test]
fn block_frame_roundtrips_and_total_bytes_is_the_serialized_length() {
    let compressor = untrained_compressor();
    let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 5);
    let block = ds.variables[0].frames.slice_axis(0, 0, 8);
    for target in [None, Some(1e-2)] {
        let compressed = compressor.compress_block(&block, target);
        let frame = compressed.encode();
        assert_eq!(
            frame.len(),
            compressed.total_bytes(),
            "reported size must equal measured serialized size (target {target:?})"
        );
        let decoded = CompressedBlock::decode(&frame).expect("frame decodes");
        assert_eq!(decoded.frames, compressed.frames);
        assert_eq!(decoded.frame_norms, compressed.frame_norms);
        assert_eq!(decoded.latent_range, compressed.latent_range);
        assert_eq!(decoded.keyframe_bytes, compressed.keyframe_bytes);
        assert_eq!(decoded.aux_bytes, compressed.aux_bytes);
        assert_eq!(decoded.sampling_seed, compressed.sampling_seed);
        assert_eq!(decoded.denoising_steps, compressed.denoising_steps);
        // The round-tripped block decompresses to the identical tensor.
        assert_eq!(
            compressor.decompress_block(&decoded),
            compressor.decompress_block(&compressed)
        );
    }
}

#[test]
fn container_stats_report_the_measured_encoded_length() {
    let compressor = untrained_compressor();
    let ds = generate(DatasetKind::S3d, &FieldSpec::tiny(), 9);
    let (container, stats) = Codec::compress_variable(
        &compressor,
        &ds.variables[0],
        compressor.config().block_frames,
        None,
    );
    let encoded = container.encode();
    assert_eq!(stats.compressed_bytes, encoded.len());
    assert_eq!(stats.blocks, 2); // 16 frames / N = 8
    assert_eq!(stats.original_bytes, 16 * 16 * 16 * 4);
    assert!(stats.compression_ratio > 1.0);
    // Decoding the container yields per-block reconstructions of the right
    // shape through the same codec.
    let decoded = Container::decode(&encoded).expect("container decodes");
    assert_eq!(decoded, container);
    let blocks = Codec::decompress_container(&compressor, &decoded).expect("codec id matches");
    assert_eq!(blocks.len(), 2);
    assert!(blocks.iter().all(|b| b.dims() == [8, 16, 16]));
}

#[test]
fn containers_reject_magic_version_and_codec_mismatches() {
    let compressor = untrained_compressor();
    let ds = generate(DatasetKind::Jhtdb, &FieldSpec::tiny(), 13);
    let (container, _) = Codec::compress_variable(&compressor, &ds.variables[0], 8, None);
    let good = container.encode();

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        Container::decode(&bad_magic),
        Err(ContainerError::BadMagic(_))
    ));

    let mut bad_version = good.clone();
    bad_version[4] = 0x7F;
    assert!(matches!(
        Container::decode(&bad_version),
        Err(ContainerError::UnsupportedVersion(_))
    ));

    let mut bad_codec = good.clone();
    bad_codec[6] = 0xEE;
    assert!(matches!(
        Container::decode(&bad_codec),
        Err(ContainerError::UnknownCodec(0xEE))
    ));

    assert!(matches!(
        Container::decode(&good[..good.len() - 3]),
        Err(ContainerError::Truncated { .. })
    ));

    // A container from a different codec is refused at decompression.
    let sz = SzCompressor::new();
    let (sz_container, _) = Codec::compress_variable(&sz, &ds.variables[0], 8, None);
    assert_eq!(sz_container.codec(), CodecId::SzLike);
    assert!(Codec::decompress_container(&compressor, &sz_container).is_err());

    // A block frame whose declared frame count exceeds the bytes present is
    // rejected as truncated without attempting a huge allocation.
    let block = ds.variables[0].frames.slice_axis(0, 0, 8);
    let mut frame = compressor.compress_block(&block, None).encode();
    frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        CompressedBlock::decode(&frame),
        Err(ContainerError::Truncated { .. })
    ));
}

#[test]
fn distinct_blocks_use_distinct_derived_seeds() {
    let compressor = untrained_compressor();
    let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 17);
    let (container, _) = Codec::compress_variable(&compressor, &ds.variables[0], 8, None);
    let blocks: Vec<CompressedBlock> = container
        .blocks()
        .iter()
        .map(|frame| CompressedBlock::decode(frame).unwrap())
        .collect();
    assert_eq!(blocks.len(), 2);
    let base = compressor.config().seed;
    assert_eq!(blocks[0].sampling_seed, derive_block_seed(base, 0));
    assert_eq!(blocks[1].sampling_seed, derive_block_seed(base, 1));
    assert_ne!(
        blocks[0].sampling_seed, blocks[1].sampling_seed,
        "distinct blocks must not share a noise realisation"
    );
    // Seed derivation is stable across processes (documented contract).
    assert_eq!(derive_block_seed(1, 0), derive_block_seed(1, 0));
    assert_ne!(derive_block_seed(1, 0), derive_block_seed(2, 0));
}

#[test]
fn parallel_and_sequential_compression_are_bit_identical() {
    // Smooth fields keep the untrained VAE's hyper-latents inside the
    // entropy models' symbol range; 32 timesteps -> 4 windows of 8.
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 32, 16, 16), 19);
    let variable = &ds.variables[0];

    let compressor = untrained_compressor();
    let sz = SzCompressor::new();
    let vae = Vae::new(VaeConfig::tiny());
    let vaesr = LearnedBaseline::new(LearnedBaselineKind::VaeSr, &vae, None);
    let codecs: [&dyn Codec; 3] = [&compressor, &sz, &vaesr];

    for codec in codecs {
        for target in [None, Some(ErrorTarget::Nrmse(1e-2))] {
            let (par, par_stats) = codec.compress_variable(variable, 8, target);
            let (seq, seq_stats) = codec.compress_variable_sequential(variable, 8, target);
            assert_eq!(
                par.encode(),
                seq.encode(),
                "{}: parallel container differs from sequential",
                codec.name()
            );
            assert_eq!(par_stats.compressed_bytes, seq_stats.compressed_bytes);
            assert_eq!(par_stats.nrmse, seq_stats.nrmse, "{}", codec.name());
            assert_eq!(
                par_stats.compression_ratio,
                seq_stats.compression_ratio,
                "{}",
                codec.name()
            );
        }
    }
}

#[test]
fn v3_stage_roundtrips_through_real_codecs_and_beats_v2() {
    // The per-frame gld-lz stage must engage on real rule-based frames
    // (model tables + headers are compressible), shrink the container, and
    // decode back to bit-identical frames.
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 32, 16, 16), 23);
    let variable = &ds.variables[0];
    let sz = SzCompressor::new();
    let (container, stats) = Codec::compress_variable(&sz, variable, 8, None);

    let v3 = container.encode();
    let v2 = container.encode_v2();
    assert!(
        v3.len() < v2.len(),
        "stage saved nothing on SZ frames: v3 {} vs v2 {}",
        v3.len(),
        v2.len()
    );
    assert_eq!(
        stats.compressed_bytes,
        v3.len(),
        "reported size must be the staged (v3) length"
    );

    // Both wire forms decode to the same frames and reconstruct the same
    // blocks.
    let from_v3 = Container::decode(&v3).expect("v3 decodes");
    let from_v2 = Container::decode(&v2).expect("v2 decodes");
    assert_eq!(from_v3, container);
    assert_eq!(from_v2, container);
    let a = sz.decompress_container(&from_v3).unwrap();
    let b = sz.decompress_container(&from_v2).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.data(), y.data(), "staged and unstaged decodes diverge");
    }
}

#[test]
fn pre_range_coder_streams_are_refused_by_name() {
    // A v1 learned-codec container can only have been written by the
    // pre-range-coder build (PR-3 era and before): decompressing it must be
    // a typed IncompatibleEntropyCoder error naming the stream, not garbage
    // latents or a panic deep inside the entropy decoder.
    let compressor = untrained_compressor();
    let ds = generate(DatasetKind::E3sm, &FieldSpec::tiny(), 27);
    let (container, _) = Codec::compress_variable(&compressor, &ds.variables[0], 8, None);

    let v1 = container.encode_v1();
    let decoded = Container::decode(&v1).expect("v1 framing still decodes");
    match Codec::decompress_container(&compressor, &decoded) {
        Err(ContainerError::IncompatibleEntropyCoder { version, codec }) => {
            assert_eq!(version, 1);
            assert_eq!(codec, CodecId::Gld);
        }
        other => panic!("expected IncompatibleEntropyCoder, got {other:?}"),
    }
    // The error text names the incompatibility for service diagnostics.
    let message = ContainerError::IncompatibleEntropyCoder {
        version: 1,
        codec: CodecId::Gld,
    }
    .to_string();
    assert!(message.contains("pre-range-coder"), "{message}");

    // The same stream at the current version decompresses fine, and
    // rule-based v1 streams (layout pinned by the compat suite) still do.
    assert!(Codec::decompress_container(&compressor, &container).is_ok());
    let sz = SzCompressor::new();
    let (sz_container, _) = Codec::compress_variable(&sz, &ds.variables[0], 8, None);
    let sz_v1 = Container::decode(&sz_container.encode_v1()).unwrap();
    assert!(sz.decompress_container(&sz_v1).is_ok());
}

#[test]
fn learned_codec_frames_stage_and_roundtrip() {
    // GLD frames carry entropy-coded latent streams plus norms/headers; the
    // stage must stay transparent for them too (bit-identical frames back).
    let compressor = untrained_compressor();
    let ds = generate(DatasetKind::S3d, &FieldSpec::tiny(), 31);
    let (container, _) = Codec::compress_variable(&compressor, &ds.variables[0], 8, None);
    let decoded = Container::decode(&container.encode()).expect("v3 decodes");
    assert_eq!(decoded, container);
    assert_eq!(
        decoded.blocks(),
        container.blocks(),
        "frames must come back unstaged and bit-identical"
    );
}

#[test]
fn v4_profiled_parallel_matches_sequential_and_decodes_like_v3() {
    // Container v4 (shared profiles + warm stage) must be deterministic
    // across the parallel executor and the sequential reference, survive an
    // encode→decode→encode cycle bit-identically, and reconstruct the same
    // blocks as the cold per-frame v3 encoding of the same variable.
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 32, 16, 16), 31);
    let variable = &ds.variables[0];
    let sz = SzCompressor::new();
    let target = Some(ErrorTarget::Nrmse(1e-3));

    let (seq, seq_stats) = sz.compress_variable_profiled_sequential(variable, 8, target);
    let v4 = seq.encode();
    for workers in [0, 1, 3] {
        let (par, par_stats, _) = sz.compress_variable_profiled(
            variable,
            8,
            target,
            StreamConfig {
                queue_depth: 2,
                workers,
            },
        );
        assert_eq!(
            par.encode(),
            v4,
            "parallel v4 container differs from sequential (workers {workers})"
        );
        assert_eq!(par_stats.compressed_bytes, seq_stats.compressed_bytes);
        assert_eq!(par_stats.nrmse, seq_stats.nrmse);
    }

    let decoded = Container::decode(&v4).expect("v4 decodes");
    assert_eq!(decoded, seq);
    assert_eq!(decoded.encode(), v4, "v4 re-encode must be bit-identical");

    // Warm (v4) and cold (v3 stage-on) containers of the same variable
    // reconstruct bit-identical blocks: the profile changes only the coding,
    // never the content.
    let (cold, _) = Codec::compress_variable(&sz, variable, 8, target);
    let warm_blocks = sz.decompress_container(&decoded).expect("v4 decompresses");
    let cold_blocks = sz.decompress_container(&cold).expect("v3 decompresses");
    assert_eq!(warm_blocks.len(), cold_blocks.len());
    for (w, c) in warm_blocks.iter().zip(&cold_blocks) {
        assert_eq!(w.data(), c.data(), "v4 and v3 reconstructions diverge");
    }
}

#[test]
fn v4_profile_table_corruption_fails_typed_not_panicking() {
    // Single-bit damage anywhere in the profile table must surface as a
    // typed decode error (the table is CRC-framed), never a panic or a
    // silently-wrong container.
    let ds = generate(DatasetKind::S3d, &FieldSpec::new(1, 16, 12, 12), 37);
    let sz = SzCompressor::new();
    let (container, _) = sz.compress_variable_profiled_sequential(&ds.variables[0], 8, None);
    let v4 = container.encode();

    // The profile table starts right after the fixed header; sweep a prefix
    // of it (every table starts with stage byte + section length + body).
    let table_start = gld_core::container::HEADER_LEN;
    for offset in table_start..(table_start + 48).min(v4.len()) {
        let mut corrupt = v4.clone();
        corrupt[offset] ^= 0x10;
        match Container::decode(&corrupt) {
            Err(_) => {}
            Ok(decoded) => panic!(
                "flipping byte {offset} in the profile table decoded silently \
                 ({} profiles)",
                decoded.profiles().len()
            ),
        }
    }
}
