//! Combustion scenario: compare keyframe selection strategies (paper §4.4,
//! Figure 2) and interpolation intervals (§4.5, Figure 4) on the S3D-like
//! reaction–diffusion dataset, reporting per-frame reconstruction error.
//!
//! Run with:
//! ```text
//! cargo run --release --example combustion_keyframe_study
//! ```

use gld_core::{GldCompressor, GldConfig, GldTrainingBudget, KeyframeStrategy};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_tensor::stats::nrmse;

fn main() {
    let spec = FieldSpec::new(2, 16, 16, 16);
    let dataset = generate(DatasetKind::S3d, &spec, 13);
    let budget = GldTrainingBudget {
        vae_steps: 200,
        diffusion_steps: 250,
        fine_tune_steps: 0,
        fine_tune_schedule: 16,
    };

    let strategies = [
        KeyframeStrategy::Interpolation { interval: 3 },
        KeyframeStrategy::Prediction { count: 3 },
        KeyframeStrategy::Mixed { count: 3 },
    ];

    for strategy in strategies {
        let config = GldConfig {
            strategy,
            ..GldConfig::tiny()
        };
        println!("\n=== {} ===", strategy.name());
        let compressor = GldCompressor::train(config, &dataset.variables, budget);
        let block = dataset.variables[0]
            .frames
            .slice_axis(0, 0, config.block_frames);
        let compressed = compressor.compress_block(&block, None);
        let recon = compressor.decompress_block(&compressed);

        let partition = config.partition();
        print!("per-frame NRMSE: ");
        let mut generated_err = 0.0f32;
        for t in 0..config.block_frames {
            let orig = block.slice_axis(0, t, t + 1);
            let rec = recon.slice_axis(0, t, t + 1);
            let err = nrmse(&orig, &rec);
            let marker = if partition.conditioning.contains(&t) {
                "*"
            } else {
                " "
            };
            print!("{err:.1e}{marker} ");
            if partition.generated.contains(&t) {
                generated_err += err / partition.generated.len() as f32;
            }
        }
        println!("\n(* = keyframe)   mean generated-frame NRMSE: {generated_err:.2e}");
        println!(
            "compression ratio without post-processing: {:.1}x",
            compressed.compression_ratio()
        );
    }
    println!("\nSee `cargo run -p gld-bench --bin fig2_keyframe_strategies` for the full Figure 2 reproduction.");
}
