//! Service round trip: boot an in-process sharded compression server, speak
//! the framed `GLDS` wire protocol through the blocking client, and verify
//! the remote round trip against a direct `Codec` call.
//!
//! Run with:
//! ```text
//! cargo run --release --example service_roundtrip
//! ```

use gld_baselines::SzCompressor;
use gld_core::{Codec, CodecId, Container, ErrorTarget, StreamConfig};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_service::{CodecRegistry, Server, ServiceClient, ServiceConfig};

fn main() {
    // 1. A server on an ephemeral port: four shards, each a worker behind a
    //    bounded in-flight window, all sharing the persistent pool.
    let server = Server::start(
        ServiceConfig {
            shards: 4,
            shard_window: 2,
            ..ServiceConfig::default()
        },
        CodecRegistry::rule_based(),
    )
    .expect("start server");
    let addr = server.local_addr();
    println!("server: {addr} (4 shards, window 2)");

    // 2. Connect, negotiate a codec (client preference order), inspect the
    //    server's shape.
    let mut client = ServiceClient::connect(addr).expect("connect");
    let info = client
        .hello(&[CodecId::SzLike, CodecId::ZfpLike])
        .expect("hello");
    println!(
        "negotiated {:?}; {} shards, window {}, queue depth {}",
        info.codec, info.shards, info.shard_window, info.queue_depth
    );

    // 3. Compress a synthetic turbulence variable remotely.  The response
    //    body is a GLDC container streamed straight off the shard's
    //    bounded-memory executor — bit-identical to a local Codec call.
    let dataset = generate(DatasetKind::Jhtdb, &FieldSpec::new(1, 32, 16, 16), 2025);
    let variable = &dataset.variables[0];
    let target = Some(ErrorTarget::Nrmse(1e-2));
    let remote = client
        .compress(&variable.name, variable, 8, target)
        .expect("remote compress");
    // The default hello negotiates container v4 shared profiles, so the
    // matching local call is the profiled one.
    let (local, stats, _) = SzCompressor::new().compress_variable_profiled(
        variable,
        8,
        target,
        StreamConfig::default(),
    );
    assert_eq!(remote, local.encode(), "remote must equal a direct call");
    println!(
        "compressed '{}': {} blocks, {} -> {} bytes (CR {:.1}x), bit-identical to local",
        variable.name,
        stats.blocks,
        stats.original_bytes,
        stats.compressed_bytes,
        stats.compression_ratio
    );

    // 4. Decompress it remotely too: containers in, frames back.
    let blocks = client
        .decompress(&variable.name, &remote)
        .expect("remote decompress");
    let container = Container::decode(&remote).expect("container decodes");
    println!(
        "decompressed {} block(s) of {:?} from a {:?} container",
        blocks.len(),
        blocks[0].dims(),
        container.codec()
    );

    // 5. Graceful shutdown drains in-flight work and joins every thread.
    let metrics = server.shutdown();
    println!(
        "drained: {} request(s), {} block(s), peak in-flight per shard {:?}",
        metrics.completed(),
        metrics.blocks(),
        metrics
            .shards
            .iter()
            .map(|s| s.peak_in_flight)
            .collect::<Vec<_>>()
    );
}
