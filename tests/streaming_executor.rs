//! Contract tests for the streaming block executor: bounded resident-block
//! count, ordered emission, bit-identical output across worker counts and
//! queue depths, and the incremental container writer.
//!
//! Cross-process determinism (the `RAYON_NUM_THREADS=1` vs default-pool leg)
//! follows transitively: every configuration below is asserted equal to the
//! single-threaded sequential reference, which is trivially independent of
//! the pool size — and CI runs this whole suite under both
//! `RAYON_NUM_THREADS=1` and `=8` to exercise the claim in real processes.

use gld_baselines::SzCompressor;
use gld_core::{
    Codec, Container, ContainerError, ErrorTarget, GldCompressor, GldConfig, StreamConfig,
};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_diffusion::ConditionalDiffusion;
use gld_vae::Vae;
use proptest::prelude::*;

/// An untrained (but fully functional and deterministic) GLD pipeline.
fn untrained_compressor() -> GldCompressor {
    let config = GldConfig::tiny();
    GldCompressor::from_parts(
        config,
        Vae::new(config.vae),
        ConditionalDiffusion::new(config.diffusion),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_path_roundtrips_and_matches_the_sequential_reference(
        windows in 1usize..7,
        block_frames in 1usize..9,
        slack in 0usize..8,
        depth in 1usize..6,
        workers in 0usize..5,
        seed in 0u64..1_000,
    ) {
        // `slack` adds a partial trailing window, which tiling must drop.
        let timesteps = windows * block_frames + slack % block_frames;
        let ds = generate(
            DatasetKind::E3sm,
            &FieldSpec::new(1, timesteps, 8, 8),
            seed,
        );
        let variable = &ds.variables[0];
        let sz = SzCompressor::new();
        let config = StreamConfig { queue_depth: depth, workers };
        let (container, stats, metrics) =
            sz.compress_variable_streaming(variable, block_frames, None, config);
        let (reference, ref_stats) =
            sz.compress_variable_sequential(variable, block_frames, None);

        prop_assert_eq!(container.encode(), reference.encode());
        prop_assert_eq!(stats.blocks, windows);
        prop_assert_eq!(stats.compressed_bytes, ref_stats.compressed_bytes);
        prop_assert_eq!(stats.nrmse, ref_stats.nrmse);
        prop_assert!(metrics.peak_resident <= depth,
            "peak resident {} exceeds queue depth {}", metrics.peak_resident, depth);

        // The emitted container round-trips through the v2 (CRC) format.
        let decoded = Container::decode(&container.encode()).expect("v2 container decodes");
        prop_assert_eq!(&decoded, &container);
        let blocks = sz.decompress_container(&decoded).expect("codec id matches");
        prop_assert_eq!(blocks.len(), windows);
    }
}

#[test]
fn output_is_bit_identical_across_worker_counts_and_depths() {
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 32, 16, 16), 19);
    let variable = &ds.variables[0];
    let compressor = untrained_compressor();

    for target in [None, Some(ErrorTarget::Nrmse(1e-2))] {
        let (reference, ref_stats) = compressor.compress_variable_sequential(variable, 8, target);
        let reference_bytes = reference.encode();
        for workers in [1usize, 2, 8] {
            for queue_depth in [1usize, 3, 16] {
                let (container, stats, metrics) = compressor.compress_variable_streaming(
                    variable,
                    8,
                    target,
                    StreamConfig {
                        queue_depth,
                        workers,
                    },
                );
                assert_eq!(
                    container.encode(),
                    reference_bytes,
                    "workers={workers} depth={queue_depth}: output differs from sequential"
                );
                assert_eq!(stats.nrmse, ref_stats.nrmse);
                assert_eq!(stats.compression_ratio, ref_stats.compression_ratio);
                assert!(metrics.peak_resident <= queue_depth);
            }
        }
    }
}

#[test]
fn peak_resident_blocks_stay_within_the_queue_depth() {
    // 64 timesteps tiled into 16 four-frame windows: plenty of blocks to
    // overrun an unbounded pipeline, compressed with depth 2.
    let ds = generate(DatasetKind::S3d, &FieldSpec::new(1, 64, 16, 16), 23);
    let variable = &ds.variables[0];
    let sz = SzCompressor::new();
    let (container, stats, metrics) = sz.compress_variable_streaming(
        variable,
        4,
        None,
        StreamConfig {
            queue_depth: 2,
            workers: 0,
        },
    );
    assert_eq!(metrics.blocks, 16);
    assert_eq!(stats.blocks, 16);
    assert_eq!(container.blocks().len(), 16);
    assert!(
        metrics.peak_resident <= 2,
        "peak resident {} blocks with queue depth 2",
        metrics.peak_resident
    );
    // Sanity: with a roomy queue the executor does use the headroom — the
    // gauge is live, not vacuously zero.
    assert!(metrics.peak_resident >= 1);
}

#[test]
fn writer_sink_streams_the_exact_container_encoding() {
    let ds = generate(DatasetKind::Jhtdb, &FieldSpec::new(1, 24, 16, 16), 29);
    let variable = &ds.variables[0];
    let sz = SzCompressor::new();
    let (buffered, buffered_stats) = Codec::compress_variable(&sz, variable, 8, None);
    let (streamed, streamed_stats, metrics) = sz
        .compress_variable_into(variable, 8, None, StreamConfig::default(), Vec::new())
        .expect("in-memory writer cannot fail");
    assert_eq!(streamed, buffered.encode());
    assert_eq!(streamed_stats, buffered_stats);
    assert_eq!(metrics.blocks, 3);
    // And the streamed bytes parse back as a valid v2 container.
    let decoded = Container::decode(&streamed).expect("streamed container decodes");
    assert_eq!(&decoded, &buffered);
}

#[test]
fn sink_errors_abort_the_stream_instead_of_compressing_on() {
    #[derive(Debug)]
    struct FailAfterHeader {
        written: usize,
    }
    impl std::io::Write for FailAfterHeader {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.written >= gld_core::container::HEADER_LEN {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "disk full",
                ));
            }
            self.written += buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 64, 16, 16), 37);
    let variable = &ds.variables[0];
    let sz = SzCompressor::new();
    let err = sz
        .compress_variable_into(
            variable,
            4,
            None,
            StreamConfig {
                queue_depth: 2,
                workers: 1,
            },
            FailAfterHeader { written: 0 },
        )
        .expect_err("the failing sink must surface its error");
    assert_eq!(err.error.kind(), std::io::ErrorKind::WriteZero);
    assert_eq!(
        err.frames_emitted, 0,
        "the sink failed before any complete frame was written"
    );
}

#[test]
fn sink_error_reports_how_many_frames_were_completely_written() {
    // `ContainerWriter` issues one write for the header and one buffered
    // write per frame (stage byte + length prefix + payload + CRC).
    // Failing on the 4th call therefore rejects the third frame whole:
    // exactly two frames are complete, which is what the abort must report
    // (the service's partial-write diagnostics depend on this).
    #[derive(Debug)]
    struct FailOnNthWrite {
        calls: usize,
        fail_at: usize,
    }
    impl std::io::Write for FailOnNthWrite {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            if self.calls >= self.fail_at {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "peer went away",
                ));
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 64, 16, 16), 41);
    let variable = &ds.variables[0];
    let sz = SzCompressor::new();
    let err = sz
        .compress_variable_into(
            variable,
            4,
            None,
            StreamConfig {
                queue_depth: 1,
                workers: 1,
            },
            FailOnNthWrite {
                calls: 0,
                fail_at: 1 + 2 + 1,
            },
        )
        .expect_err("the failing sink must surface its error");
    assert_eq!(err.error.kind(), std::io::ErrorKind::BrokenPipe);
    assert_eq!(err.frames_emitted, 2, "two frames were fully written");
    // The error's display ties both together for diagnostics.
    assert!(err.to_string().contains("2 complete frame(s)"), "{err}");
}

#[test]
fn collector_side_panics_propagate_instead_of_hanging() {
    // The emit callback always runs on the collector thread; a panic there
    // must cancel the flow (waking parked workers) and re-throw with the
    // original payload — a regression here deadlocks instead of failing.
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 64, 16, 16), 43);
    let variable = &ds.variables[0];
    let sz = SzCompressor::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        gld_core::executor::stream_compress_variable(
            &sz,
            variable,
            4,
            None,
            StreamConfig {
                queue_depth: 2,
                workers: 2,
            },
            gld_core::StageMode::PerFrame,
            |index, _outcome| {
                if index == 1 {
                    panic!("emit exploded");
                }
                true
            },
        )
    }));
    let payload = result.expect_err("emit panic must propagate");
    assert_eq!(
        payload.downcast_ref::<&str>().copied(),
        Some("emit exploded"),
        "the original panic payload must survive"
    );
}

#[test]
fn codec_panics_propagate_with_their_original_payload() {
    // A codec panic may fire on a pool worker or on the collector's helping
    // path; both must surface the codec's own message, not a generic one.
    struct ExplodingCodec(SzCompressor);
    impl Codec for ExplodingCodec {
        fn name(&self) -> &str {
            "exploding"
        }
        fn id(&self) -> gld_core::CodecId {
            gld_core::CodecId::SzLike
        }
        fn compress_block_at(
            &self,
            block: &gld_tensor::Tensor,
            target: Option<ErrorTarget>,
            block_index: u64,
        ) -> Vec<u8> {
            if block_index == 2 {
                panic!("codec exploded at block 2");
            }
            self.0.compress_block_at(block, target, block_index)
        }
        fn decompress_block(&self, frame: &[u8]) -> gld_tensor::Tensor {
            self.0.decompress_block(frame)
        }
    }

    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 64, 16, 16), 47);
    let variable = &ds.variables[0];
    let codec = ExplodingCodec(SzCompressor::new());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        codec.compress_variable_streaming(
            variable,
            4,
            None,
            StreamConfig {
                queue_depth: 2,
                workers: 2,
            },
        )
    }));
    let payload = result.expect_err("codec panic must propagate");
    assert_eq!(
        payload.downcast_ref::<&str>().copied(),
        Some("codec exploded at block 2"),
        "the codec's own panic message must survive"
    );
}

#[test]
fn v1_containers_decode_and_v2_corruption_is_detected() {
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 16, 16, 16), 31);
    let variable = &ds.variables[0];
    let sz = SzCompressor::new();
    let (container, _) = Codec::compress_variable(&sz, variable, 8, None);

    // Legacy v1 (checksum-less) streams still decode to the same frames.
    let v1 = container.encode_v1();
    let from_v1 = Container::decode(&v1).expect("v1 stream decodes");
    assert_eq!(from_v1, container);
    assert_eq!(
        sz.decompress_container(&from_v1).unwrap().len(),
        container.blocks().len()
    );

    // Flipping one payload bit in a v2 stream surfaces as a typed checksum
    // error naming the block, instead of a downstream codec panic.
    let mut corrupt = container.encode();
    let byte = gld_core::container::HEADER_LEN + 8 + container.blocks()[0].len() / 2;
    corrupt[byte] ^= 0x10;
    assert!(matches!(
        Container::decode(&corrupt),
        Err(ContainerError::ChecksumMismatch { block: 0, .. })
    ));
}
