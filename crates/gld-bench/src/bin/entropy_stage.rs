//! Container entropy-stage benchmark: compression-ratio and throughput
//! accounting for the `gld-lz` lossless stage — stage-on (v3) vs stage-off
//! (v2), and optionally the shared-profile warm path (v4) — over the
//! synthetic-field corpus.
//!
//! For every dataset kind × codec the binary compresses each variable,
//! encodes the container both ways, verifies the staged stream round-trips
//! **bit-identically** back to the unstaged frames, and measures the stage
//! codec's own compress/decompress throughput over the real frame payloads.
//! With `--profiles` it adds the container-v4 shared-profile leg: every
//! variable is also encoded against its fitted [`WarmProfile`] (shared
//! entropy model + stage warm-start + seed dictionary), the profile-table
//! bytes are accounted separately, and warm stage-compress throughput is
//! measured against the cold rate.
//!
//! Results land in `results/entropy_stage.csv` and
//! `BENCH_entropy_stage.json` (repo root).  Flags:
//!
//! * `--quick` — short measurement windows (CI mode);
//! * `--profiles` — add the shared-profile (container v4) leg;
//! * `--backend <scalar|sse2|avx2|simd|auto>` — pin the kernel backend the
//!   stage (and the codecs feeding it) runs on;
//! * `--check` — exit non-zero unless the stage-on container total is at
//!   least [`REQUIRED_REDUCTION`] smaller than stage-off on the corpus and
//!   every staged container round-trips bit-identically; with `--profiles`
//!   the gate additionally requires the shared-profile total to not exceed
//!   the per-frame total and warm stage compression to run at least
//!   [`REQUIRED_WARM_SPEEDUP`]× the cold rate (the CI gate).

use gld_baselines::{SzCompressor, ZfpLikeCompressor};
use gld_bench::{write_result, write_root_result};
use gld_core::{Codec, Container, ErrorTarget};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_lz::{LzProfile, LzScratch};
use std::time::Instant;

/// The gate: stage-on containers must shave at least this fraction off the
/// stage-off total on the synthetic-field corpus.
const REQUIRED_REDUCTION: f64 = 0.10;

/// The warm-path gate: shared-profile stage compression must run at least
/// this many times faster than cold per-frame staging (the fit it skips).
const REQUIRED_WARM_SPEEDUP: f64 = 1.5;

/// One corpus leg's accounting.
struct Leg {
    dataset: &'static str,
    codec: &'static str,
    off_bytes: usize,
    on_bytes: usize,
    staged_frames: usize,
    total_frames: usize,
    roundtrip_ok: bool,
    /// Shared-profile (v4) accounting, present with `--profiles`.
    shared: Option<SharedLeg>,
}

/// The shared-profile leg of one dataset × codec cell.
struct SharedLeg {
    bytes: usize,
    profile_table_bytes: usize,
    staged_frames: usize,
    roundtrip_ok: bool,
}

impl Leg {
    fn reduction(&self) -> f64 {
        1.0 - self.on_bytes as f64 / self.off_bytes.max(1) as f64
    }
}

/// One variable's warm-staging workload: the v4 frames plus the profile and
/// seed dictionary they stage under.
struct WarmWork {
    frames: Vec<Vec<u8>>,
    dict: Vec<u8>,
    lz: LzProfile,
}

/// Measures gld-lz compress and decompress MB/s over real frame payloads.
fn measure_stage_throughput(frames: &[Vec<u8>], window_s: f64) -> (f64, f64) {
    let mut scratch = LzScratch::new();
    let total_bytes: usize = frames.iter().map(Vec::len).sum();
    let staged: Vec<Vec<u8>> = frames
        .iter()
        .map(|f| gld_lz::compress(f, &mut scratch))
        .collect();

    let run = |mut op: Box<dyn FnMut() + '_>| -> f64 {
        op(); // warm-up
        let start = Instant::now();
        let mut passes = 0usize;
        while start.elapsed().as_secs_f64() < window_s {
            op();
            passes += 1;
        }
        passes as f64 * total_bytes as f64 / 1e6 / start.elapsed().as_secs_f64()
    };

    let compress_mb_s = {
        let mut scratch = LzScratch::new();
        run(Box::new(|| {
            for frame in frames {
                std::hint::black_box(gld_lz::compress(frame, &mut scratch));
            }
        }))
    };
    let decompress_mb_s = run(Box::new(|| {
        for (stream, frame) in staged.iter().zip(frames) {
            std::hint::black_box(gld_lz::decompress(stream, frame.len()).expect("valid stream"));
        }
    }));
    (compress_mb_s, decompress_mb_s)
}

/// Measures warm (shared-profile) stage compression MB/s: every frame is
/// staged under its variable's fitted profile and seed dictionary — the
/// per-frame model fit the cold path pays is skipped entirely.
fn measure_warm_stage_throughput(work: &[WarmWork], window_s: f64) -> f64 {
    let total_bytes: usize = work
        .iter()
        .map(|w| w.frames.iter().map(Vec::len).sum::<usize>())
        .sum();
    let mut scratch = LzScratch::new();
    let mut pass = || {
        for w in work {
            for (index, frame) in w.frames.iter().enumerate() {
                let dict = if index == 0 {
                    &[][..]
                } else {
                    w.dict.as_slice()
                };
                std::hint::black_box(gld_lz::compress_profiled(frame, dict, &w.lz, &mut scratch));
            }
        }
    };
    pass(); // warm-up
    let start = Instant::now();
    let mut passes = 0usize;
    while start.elapsed().as_secs_f64() < window_s {
        pass();
        passes += 1;
    }
    passes as f64 * total_bytes as f64 / 1e6 / start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let profiles = args.iter().any(|a| a == "--profiles");
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        let sel = args.get(i + 1).expect("--backend needs a value");
        let b = gld_kernels::Backend::parse_selection(sel)
            .unwrap_or_else(|| panic!("--backend: unknown selection {sel:?}"));
        gld_kernels::force(b).unwrap_or_else(|e| panic!("--backend: {e}"));
    }
    println!(
        "entropy_stage: kernel backend {} (cpu: {})",
        gld_kernels::active(),
        gld_kernels::cpu_features()
    );
    let window_s = if quick { 0.25 } else { 1.5 };

    // The synthetic-field corpus: every generator kind, the figure-binary
    // field shape (2 variables × 32 frames of 16×16, four 8-frame windows
    // each), the paper's mid-curve NRMSE target.
    let spec = FieldSpec::new(2, 32, 16, 16);
    let block_frames = 8;
    let target = Some(ErrorTarget::Nrmse(1e-3));
    let kinds = [
        (DatasetKind::E3sm, "e3sm"),
        (DatasetKind::S3d, "s3d"),
        (DatasetKind::Jhtdb, "jhtdb"),
    ];
    let sz = SzCompressor::new();
    let zfp = ZfpLikeCompressor::new();
    let codecs: [(&str, &dyn Codec); 2] = [("sz", &sz), ("zfp", &zfp)];

    let mut legs = Vec::new();
    let mut all_frames: Vec<Vec<u8>> = Vec::new();
    let mut warm_work: Vec<WarmWork> = Vec::new();
    for (kind, kind_name) in kinds {
        let ds = generate(kind, &spec, 29);
        for (codec_name, codec) in codecs {
            let mut off_bytes = 0usize;
            let mut on_bytes = 0usize;
            let mut staged_frames = 0usize;
            let mut total_frames = 0usize;
            let mut roundtrip_ok = true;
            let mut shared = profiles.then_some(SharedLeg {
                bytes: 0,
                profile_table_bytes: 0,
                staged_frames: 0,
                roundtrip_ok: true,
            });
            for variable in &ds.variables {
                let (container, _) = codec.compress_variable(variable, block_frames, target);
                let off = container.encode_v2();
                let on = container.encode();
                off_bytes += off.len();
                on_bytes += on.len();
                total_frames += container.blocks().len();
                staged_frames += container.staged_frames();
                // Bit-identical round trip: the staged stream must decode to
                // exactly the unstaged frames (and the v2 stream to the
                // same).
                let decoded = Container::decode(&on).expect("staged container decodes");
                roundtrip_ok &= decoded == container;
                roundtrip_ok &= Container::decode(&off).expect("v2 decodes") == container;
                all_frames.extend(container.blocks().iter().cloned());
                if let Some(sh) = shared.as_mut() {
                    let (warm, _) =
                        codec.compress_variable_profiled_sequential(variable, block_frames, target);
                    let v4 = warm.encode();
                    sh.bytes += v4.len();
                    sh.profile_table_bytes += warm.profile_table_bytes();
                    sh.staged_frames += warm.staged_frames();
                    // The v4 stream must round-trip to the same container
                    // state and re-encode bit-identically.
                    let decoded = Container::decode(&v4).expect("v4 container decodes");
                    sh.roundtrip_ok &= decoded == warm;
                    sh.roundtrip_ok &= decoded.encode() == v4;
                    let entry = &warm.profiles()[0];
                    if let Some(lz) = entry.lz.clone() {
                        warm_work.push(WarmWork {
                            frames: warm.blocks().to_vec(),
                            dict: warm.blocks()[0].clone(),
                            lz,
                        });
                    }
                }
            }
            legs.push(Leg {
                dataset: kind_name,
                codec: codec_name,
                off_bytes,
                on_bytes,
                staged_frames,
                total_frames,
                roundtrip_ok,
                shared,
            });
        }
    }

    let (compress_mb_s, decompress_mb_s) = measure_stage_throughput(&all_frames, window_s);
    let warm_compress_mb_s =
        (!warm_work.is_empty()).then(|| measure_warm_stage_throughput(&warm_work, window_s));

    let off_total: usize = legs.iter().map(|l| l.off_bytes).sum();
    let on_total: usize = legs.iter().map(|l| l.on_bytes).sum();
    let total_reduction = 1.0 - on_total as f64 / off_total.max(1) as f64;
    let all_roundtrip = legs.iter().all(|l| l.roundtrip_ok);
    let shared_total: usize = legs
        .iter()
        .filter_map(|l| l.shared.as_ref().map(|s| s.bytes))
        .sum();
    let shared_table_total: usize = legs
        .iter()
        .filter_map(|l| l.shared.as_ref().map(|s| s.profile_table_bytes))
        .sum();
    let shared_roundtrip = legs
        .iter()
        .filter_map(|l| l.shared.as_ref())
        .all(|s| s.roundtrip_ok);

    let mut csv = String::from(
        "dataset,codec,mode,stage_off_bytes,stage_on_bytes,profile_table_bytes,reduction,staged_frames,total_frames,roundtrip_ok\n",
    );
    for leg in &legs {
        println!(
            "{:>6} {:>4}: stage-off {:7} B, stage-on {:7} B  ({:5.1}% smaller, {}/{} frames staged, roundtrip {})",
            leg.dataset,
            leg.codec,
            leg.off_bytes,
            leg.on_bytes,
            leg.reduction() * 100.0,
            leg.staged_frames,
            leg.total_frames,
            if leg.roundtrip_ok { "ok" } else { "FAILED" },
        );
        csv.push_str(&format!(
            "{},{},per-frame,{},{},0,{:.4},{},{},{}\n",
            leg.dataset,
            leg.codec,
            leg.off_bytes,
            leg.on_bytes,
            leg.reduction(),
            leg.staged_frames,
            leg.total_frames,
            leg.roundtrip_ok
        ));
        if let Some(sh) = &leg.shared {
            let reduction = 1.0 - sh.bytes as f64 / leg.off_bytes.max(1) as f64;
            println!(
                "{:>6} {:>4}: shared-profile {:5} B (table {:4} B, {:5.1}% smaller than off, {}/{} frames staged, roundtrip {})",
                leg.dataset,
                leg.codec,
                sh.bytes,
                sh.profile_table_bytes,
                reduction * 100.0,
                sh.staged_frames,
                leg.total_frames,
                if sh.roundtrip_ok { "ok" } else { "FAILED" },
            );
            csv.push_str(&format!(
                "{},{},shared,{},{},{},{:.4},{},{},{}\n",
                leg.dataset,
                leg.codec,
                leg.off_bytes,
                sh.bytes,
                sh.profile_table_bytes,
                reduction,
                sh.staged_frames,
                leg.total_frames,
                sh.roundtrip_ok
            ));
        }
    }
    let staged_total: usize = legs.iter().map(|l| l.staged_frames).sum();
    let frames_total: usize = legs.iter().map(|l| l.total_frames).sum();
    csv.push_str(&format!(
        "total,all,per-frame,{off_total},{on_total},0,{total_reduction:.4},{staged_total},{frames_total},{all_roundtrip}\n"
    ));
    if profiles {
        let shared_reduction = 1.0 - shared_total as f64 / off_total.max(1) as f64;
        let shared_staged: usize = legs
            .iter()
            .filter_map(|l| l.shared.as_ref().map(|s| s.staged_frames))
            .sum();
        csv.push_str(&format!(
            "total,all,shared,{off_total},{shared_total},{shared_table_total},{shared_reduction:.4},{shared_staged},{frames_total},{shared_roundtrip}\n"
        ));
    }
    println!(
        "  total: {off_total} -> {on_total} B ({:.1}% smaller); stage throughput {compress_mb_s:.1} MB/s compress, {decompress_mb_s:.1} MB/s decompress",
        total_reduction * 100.0
    );
    if let Some(warm) = warm_compress_mb_s {
        println!(
            "  shared-profile total: {shared_total} B (tables {shared_table_total} B); warm stage compress {warm:.1} MB/s ({:.2}x cold)",
            warm / compress_mb_s.max(1e-9)
        );
    }
    write_result("entropy_stage.csv", &csv);

    let (mode, shared_json) = if profiles {
        let warm = warm_compress_mb_s.unwrap_or(0.0);
        (
            "shared",
            format!(
                concat!(
                    "  \"shared_bytes\": {shared},\n",
                    "  \"profile_table_bytes\": {table},\n",
                    "  \"shared_roundtrip_bit_identical\": {roundtrip},\n",
                    "  \"warm_stage_compress_mb_per_s\": {warm:.2},\n",
                    "  \"warm_speedup\": {speedup:.2},\n",
                    "  \"required_warm_speedup\": {required:.2},\n",
                ),
                shared = shared_total,
                table = shared_table_total,
                roundtrip = shared_roundtrip,
                warm = warm,
                speedup = warm / compress_mb_s.max(1e-9),
                required = REQUIRED_WARM_SPEEDUP,
            ),
        )
    } else {
        ("per-frame", String::new())
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"quick\": {quick},\n",
            "  \"backend\": \"{backend}\",\n",
            "  \"profile_mode\": \"{mode}\",\n",
            "  \"stage_off_bytes\": {off},\n",
            "  \"stage_on_bytes\": {on},\n",
            "{shared_json}",
            "  \"reduction\": {reduction:.4},\n",
            "  \"required_reduction\": {required:.2},\n",
            "  \"roundtrip_bit_identical\": {roundtrip},\n",
            "  \"stage_compress_mb_per_s\": {cmbs:.2},\n",
            "  \"stage_decompress_mb_per_s\": {dmbs:.2}\n",
            "}}\n"
        ),
        quick = quick,
        backend = gld_kernels::active(),
        mode = mode,
        off = off_total,
        on = on_total,
        shared_json = shared_json,
        reduction = total_reduction,
        required = REQUIRED_REDUCTION,
        roundtrip = all_roundtrip,
        cmbs = compress_mb_s,
        dmbs = decompress_mb_s,
    );
    write_root_result("BENCH_entropy_stage.json", &json);

    if check {
        let mut failures = Vec::new();
        if !all_roundtrip {
            failures.push("staged containers did not round-trip bit-identically".to_string());
        }
        if total_reduction < REQUIRED_REDUCTION {
            failures.push(format!(
                "stage-on total only {:.1}% smaller than stage-off (gate: {:.0}%)",
                total_reduction * 100.0,
                REQUIRED_REDUCTION * 100.0
            ));
        }
        if profiles {
            if !shared_roundtrip {
                failures
                    .push("shared-profile containers did not round-trip bit-identically".into());
            }
            if shared_total > on_total {
                failures.push(format!(
                    "shared-profile total {shared_total} B exceeds per-frame total {on_total} B"
                ));
            }
            let warm = warm_compress_mb_s.unwrap_or(0.0);
            if warm < REQUIRED_WARM_SPEEDUP * compress_mb_s {
                failures.push(format!(
                    "warm stage compress {warm:.1} MB/s is under {REQUIRED_WARM_SPEEDUP}x the cold {compress_mb_s:.1} MB/s"
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("entropy-stage gate failed:\n  {}", failures.join("\n  "));
            std::process::exit(1);
        }
        println!("entropy-stage gate passed");
    }
}
