//! Frozen pre-optimisation reference implementations of the rule-based
//! codecs, generic over the entropy back end.
//!
//! These are the exact scalar kernels the optimized hot paths replaced: the
//! single neighbour-checked Lorenzo walk with nested-`if` quantisation, the
//! per-call DCT basis recomputation, the one-`Vec`-per-symbol decode shape,
//! and fresh buffers on every call.  They exist for two jobs:
//!
//! * **equivalence oracle** — instantiated with
//!   [`gld_entropy::RangeBackend`] they must produce *byte-identical* frames
//!   to [`crate::SzCompressor`] / [`crate::ZfpLikeCompressor`], which the
//!   workspace equivalence suite proves over randomised inputs;
//! * **benchmark baseline** — instantiated with
//!   [`gld_entropy::ArithmeticBackend`] they reproduce the full
//!   pre-optimisation compress/decompress cost, so `hotpath_throughput`
//!   measures the real speedup on any machine it runs on.
//!
//! Do not "improve" this module; its value is that it does not change.

use crate::header::{BlockHeader, Codec};
use gld_entropy::{EntropyBackend, EntropyDecoder, EntropyEncoder, HistogramModel};
use gld_tensor::Tensor;

const SZ_MAX_CODE: i32 = 4096;
const SZ_UNPREDICTABLE: i32 = SZ_MAX_CODE + 1;

const ZFP_BLOCK: usize = 4;
const ZFP_MAX_CODE: i32 = 8191;
const ZFP_ESCAPE: i32 = ZFP_MAX_CODE + 1;
const ZFP_ERROR_AMPLIFICATION: f32 = 8.0;

fn as_volume_dims(dims: &[usize]) -> (usize, usize, usize) {
    match dims.len() {
        1 => (1, 1, dims[0]),
        2 => (1, dims[0], dims[1]),
        3 => (dims[0], dims[1], dims[2]),
        4 => (dims[0] * dims[1], dims[2], dims[3]),
        r => panic!("unsupported rank {r}"),
    }
}

/// The pre-optimisation per-symbol decode shape: a one-element vector per
/// symbol resolved by binary search over the CDF.
#[allow(clippy::vec_init_then_push)] // deliberately reproduces the old shape
fn decode_one<D: EntropyDecoder>(model: &HistogramModel, dec: &mut D) -> i32 {
    let mut v = Vec::with_capacity(1);
    v.push(model.decode_symbol_binary_search(dec));
    v[0]
}

#[inline]
fn lorenzo_predict(
    recon: &[f32],
    (d0, d1, d2): (usize, usize, usize),
    i: usize,
    j: usize,
    k: usize,
) -> f32 {
    let at = |ii: isize, jj: isize, kk: isize| -> f32 {
        if ii < 0 || jj < 0 || kk < 0 {
            0.0
        } else {
            recon[(ii as usize * d1 + jj as usize) * d2 + kk as usize]
        }
    };
    let (i, j, k) = (i as isize, j as isize, k as isize);
    let _ = d0;
    at(i - 1, j, k) + at(i, j - 1, k) + at(i, j, k - 1)
        - at(i - 1, j - 1, k)
        - at(i - 1, j, k - 1)
        - at(i, j - 1, k - 1)
        + at(i - 1, j - 1, k - 1)
}

/// Reference SZ3-like compression: single neighbour-checked walk, fresh
/// buffers, nested-`if` quantisation.
pub fn sz_compress<B: EntropyBackend>(data: &Tensor, abs_error: f32) -> Vec<u8> {
    assert!(abs_error > 0.0, "absolute error bound must be positive");
    let dims = as_volume_dims(data.dims());
    let (d0, d1, d2) = dims;
    let n = d0 * d1 * d2;
    assert_eq!(n, data.numel());
    let src = data.data();
    let mut recon = vec![0.0f32; n];
    let mut codes = Vec::with_capacity(n);
    let mut raw_values: Vec<f32> = Vec::new();
    let two_eb = 2.0 * abs_error;

    for i in 0..d0 {
        for j in 0..d1 {
            for k in 0..d2 {
                let idx = (i * d1 + j) * d2 + k;
                let val = src[idx];
                let pred = lorenzo_predict(&recon, dims, i, j, k);
                let diff = val - pred;
                let q = (diff / two_eb).round();
                if q.abs() <= SZ_MAX_CODE as f32 {
                    let q = q as i32;
                    let r = pred + q as f32 * two_eb;
                    if (r - val).abs() <= abs_error && r.is_finite() {
                        codes.push(q);
                        recon[idx] = r;
                        continue;
                    }
                }
                codes.push(SZ_UNPREDICTABLE);
                raw_values.push(val);
                recon[idx] = val;
            }
        }
    }

    let model = HistogramModel::fit(&codes);
    let mut out = Vec::new();
    BlockHeader::new(Codec::SzLike, data, abs_error).write(&mut out);
    let model_bytes = model.to_bytes();
    out.extend_from_slice(&(model_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&model_bytes);
    let mut enc = B::encoder();
    let mut raw_iter = raw_values.iter();
    for &c in &codes {
        model.encode(&mut enc, &[c]);
        if c == SZ_UNPREDICTABLE {
            let raw = raw_iter.next().expect("raw value missing");
            enc.encode_bits_raw(raw.to_bits() as u64, 32);
        }
    }
    let stream = enc.finish();
    out.extend_from_slice(&(stream.len() as u32).to_le_bytes());
    out.extend_from_slice(&stream);
    out
}

/// Reference SZ3-like decompression (matches [`sz_compress`]).
pub fn sz_decompress<B: EntropyBackend>(bytes: &[u8]) -> Tensor {
    let (header, mut off) = BlockHeader::read(bytes);
    assert_eq!(header.codec, Codec::SzLike, "not an SZ3-like stream");
    let model_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
    off += 4;
    let (model, used) = HistogramModel::from_bytes(&bytes[off..off + model_len]);
    assert_eq!(used, model_len);
    off += model_len;
    let stream_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
    off += 4;
    let stream = &bytes[off..off + stream_len];

    let dims = as_volume_dims(&header.dims);
    let (d0, d1, d2) = dims;
    let n = header.numel();
    let two_eb = 2.0 * header.abs_error;
    let mut dec = B::decoder(stream);
    let mut recon = vec![0.0f32; n];
    for i in 0..d0 {
        for j in 0..d1 {
            for k in 0..d2 {
                let idx = (i * d1 + j) * d2 + k;
                let code = decode_one(&model, &mut dec);
                if code == SZ_UNPREDICTABLE {
                    let bits = dec.decode_bits_raw(32) as u32;
                    recon[idx] = f32::from_bits(bits);
                } else {
                    let pred = lorenzo_predict(&recon, dims, i, j, k);
                    recon[idx] = pred + code as f32 * two_eb;
                }
            }
        }
    }
    Tensor::from_vec(recon, &header.dims)
}

/// The pre-optimisation basis derivation: recomputed on every call.
fn dct4_basis_fresh() -> [[f32; 4]; 4] {
    let mut m = [[0.0f32; 4]; 4];
    for (k, row) in m.iter_mut().enumerate() {
        let scale = if k == 0 {
            (1.0f32 / 4.0).sqrt()
        } else {
            (2.0f32 / 4.0).sqrt()
        };
        for (n, v) in row.iter_mut().enumerate() {
            *v = scale * ((std::f32::consts::PI / 4.0) * (n as f32 + 0.5) * k as f32).cos();
        }
    }
    m
}

fn transform_axis(block: &mut [f32; 64], axis: usize, inverse: bool) {
    let basis = dct4_basis_fresh();
    let stride = match axis {
        0 => 16,
        1 => 4,
        2 => 1,
        _ => unreachable!(),
    };
    for a in 0..ZFP_BLOCK {
        for b in 0..ZFP_BLOCK {
            let base = match axis {
                0 => a * 4 + b,
                1 => a * 16 + b,
                2 => a * 16 + b * 4,
                _ => unreachable!(),
            };
            let mut line = [0.0f32; 4];
            for i in 0..ZFP_BLOCK {
                line[i] = block[base + i * stride];
            }
            let mut out = [0.0f32; 4];
            for (k, o) in out.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (n, &v) in line.iter().enumerate() {
                    acc += if inverse { basis[n][k] } else { basis[k][n] } * v;
                }
                *o = acc;
            }
            for i in 0..ZFP_BLOCK {
                block[base + i * stride] = out[i];
            }
        }
    }
}

fn forward_transform(block: &mut [f32; 64]) {
    for axis in 0..3 {
        transform_axis(block, axis, false);
    }
}

fn inverse_transform(block: &mut [f32; 64]) {
    for axis in (0..3).rev() {
        transform_axis(block, axis, true);
    }
}

/// Reference ZFP-like compression: clamped gather for every tile, per-call
/// basis recomputation, fresh buffers.
pub fn zfp_compress<B: EntropyBackend>(data: &Tensor, abs_error: f32) -> Vec<u8> {
    assert!(abs_error > 0.0, "absolute error bound must be positive");
    let (d0, d1, d2) = as_volume_dims(data.dims());
    let (p0, p1, p2) = (
        d0.div_ceil(ZFP_BLOCK) * ZFP_BLOCK,
        d1.div_ceil(ZFP_BLOCK) * ZFP_BLOCK,
        d2.div_ceil(ZFP_BLOCK) * ZFP_BLOCK,
    );
    let src = data.data();
    let padded_at = |i: usize, j: usize, k: usize| -> f32 {
        let i = i.min(d0 - 1);
        let j = j.min(d1 - 1);
        let k = k.min(d2 - 1);
        src[(i * d1 + j) * d2 + k]
    };
    let step = abs_error / ZFP_ERROR_AMPLIFICATION;
    let mut codes: Vec<i32> = Vec::with_capacity(p0 * p1 * p2);
    let mut escapes: Vec<i32> = Vec::new();
    for bi in (0..p0).step_by(ZFP_BLOCK) {
        for bj in (0..p1).step_by(ZFP_BLOCK) {
            for bk in (0..p2).step_by(ZFP_BLOCK) {
                let mut block = [0.0f32; 64];
                for i in 0..ZFP_BLOCK {
                    for j in 0..ZFP_BLOCK {
                        for k in 0..ZFP_BLOCK {
                            block[i * 16 + j * 4 + k] = padded_at(bi + i, bj + j, bk + k);
                        }
                    }
                }
                forward_transform(&mut block);
                for &c in block.iter() {
                    let q = (c / step).round();
                    if q.abs() <= ZFP_MAX_CODE as f32 && q.is_finite() {
                        codes.push(q as i32);
                    } else {
                        codes.push(ZFP_ESCAPE);
                        escapes.push(q.clamp(i32::MIN as f32, i32::MAX as f32) as i32);
                    }
                }
            }
        }
    }

    let model = HistogramModel::fit(&codes);
    let mut out = Vec::new();
    BlockHeader::new(Codec::ZfpLike, data, abs_error).write(&mut out);
    let model_bytes = model.to_bytes();
    out.extend_from_slice(&(model_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&model_bytes);
    let mut enc = B::encoder();
    let mut esc_iter = escapes.iter();
    for &c in &codes {
        model.encode(&mut enc, &[c]);
        if c == ZFP_ESCAPE {
            let raw = *esc_iter.next().expect("escape value missing");
            enc.encode_bits_raw(raw as u32 as u64, 32);
        }
    }
    let stream = enc.finish();
    out.extend_from_slice(&(stream.len() as u32).to_le_bytes());
    out.extend_from_slice(&stream);
    out
}

/// Reference ZFP-like decompression (matches [`zfp_compress`]).
pub fn zfp_decompress<B: EntropyBackend>(bytes: &[u8]) -> Tensor {
    let (header, mut off) = BlockHeader::read(bytes);
    assert_eq!(header.codec, Codec::ZfpLike, "not a ZFP-like stream");
    let model_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
    off += 4;
    let (model, used) = HistogramModel::from_bytes(&bytes[off..off + model_len]);
    assert_eq!(used, model_len);
    off += model_len;
    let stream_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
    off += 4;
    let stream = &bytes[off..off + stream_len];

    let (d0, d1, d2) = as_volume_dims(&header.dims);
    let (p0, p1, p2) = (
        d0.div_ceil(ZFP_BLOCK) * ZFP_BLOCK,
        d1.div_ceil(ZFP_BLOCK) * ZFP_BLOCK,
        d2.div_ceil(ZFP_BLOCK) * ZFP_BLOCK,
    );
    let step = header.abs_error / ZFP_ERROR_AMPLIFICATION;
    let mut dec = B::decoder(stream);
    let mut recon = vec![0.0f32; d0 * d1 * d2];
    for bi in (0..p0).step_by(ZFP_BLOCK) {
        for bj in (0..p1).step_by(ZFP_BLOCK) {
            for bk in (0..p2).step_by(ZFP_BLOCK) {
                let mut block = [0.0f32; 64];
                for v in block.iter_mut() {
                    let code = decode_one(&model, &mut dec);
                    let q = if code == ZFP_ESCAPE {
                        dec.decode_bits_raw(32) as u32 as i32
                    } else {
                        code
                    };
                    *v = q as f32 * step;
                }
                inverse_transform(&mut block);
                for i in 0..ZFP_BLOCK {
                    for j in 0..ZFP_BLOCK {
                        for k in 0..ZFP_BLOCK {
                            let (gi, gj, gk) = (bi + i, bj + j, bk + k);
                            if gi < d0 && gj < d1 && gk < d2 {
                                recon[(gi * d1 + gj) * d2 + gk] = block[i * 16 + j * 4 + k];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(recon, &header.dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErrorBoundedCompressor, SzCompressor, ZfpLikeCompressor};
    use gld_entropy::{ArithmeticBackend, RangeBackend};
    use gld_tensor::TensorRng;

    #[test]
    fn range_backend_reference_matches_optimized_bytes() {
        let mut rng = TensorRng::new(3);
        let data = rng.randn(&[3, 10, 11]).scale(2.0);
        for eb in [1e-1f32, 1e-3] {
            assert_eq!(
                sz_compress::<RangeBackend>(&data, eb),
                SzCompressor::new().compress(&data, eb),
                "sz eb {eb}"
            );
            assert_eq!(
                zfp_compress::<RangeBackend>(&data, eb),
                ZfpLikeCompressor::new().compress(&data, eb),
                "zfp eb {eb}"
            );
        }
    }

    #[test]
    fn arithmetic_backend_reference_roundtrips() {
        let mut rng = TensorRng::new(5);
        let data = rng.randn(&[2, 9, 9]).scale(4.0);
        let sz = sz_compress::<ArithmeticBackend>(&data, 1e-2);
        let back = sz_decompress::<ArithmeticBackend>(&sz);
        assert_eq!(back.dims(), data.dims());
        let zfp = zfp_compress::<ArithmeticBackend>(&data, 1e-2);
        let back = zfp_decompress::<ArithmeticBackend>(&zfp);
        assert_eq!(back.dims(), data.dims());
    }
}
