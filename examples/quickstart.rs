//! Quickstart: train the generative latent diffusion compressor on a small
//! synthetic climate dataset, compress one spatiotemporal block with a
//! guaranteed error bound, and report what happened.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use gld_core::{GldCompressor, GldConfig, GldTrainingBudget};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_tensor::stats::nrmse;

fn main() {
    // 1. A small synthetic E3SM-like climate dataset (see gld-datasets for
    //    how the generator mirrors the statistics of the real data).
    let spec = FieldSpec::new(2, 16, 16, 16);
    let dataset = generate(DatasetKind::E3sm, &spec, 2024);
    println!(
        "dataset: {} | {} variables | {} frames of {}x{}",
        dataset.kind.name(),
        dataset.variables.len(),
        spec.timesteps,
        spec.height,
        spec.width
    );

    // 2. Train both stages (VAE + hyperprior, then conditional latent
    //    diffusion).  The budget here is tiny so the example finishes in
    //    seconds; see EXPERIMENTS.md for the budgets used by the benches.
    let config = GldConfig::tiny();
    let budget = GldTrainingBudget {
        vae_steps: 200,
        diffusion_steps: 200,
        fine_tune_steps: 0,
        fine_tune_schedule: 16,
    };
    println!(
        "training: {} VAE steps + {} diffusion steps (keyframes: {}) ...",
        budget.vae_steps,
        budget.diffusion_steps,
        config.strategy.name()
    );
    let compressor = GldCompressor::train(config, &dataset.variables, budget);

    // 3. Compress the first block of the first variable with a guaranteed
    //    NRMSE bound of 5e-3.
    let block = dataset.variables[0]
        .frames
        .slice_axis(0, 0, config.block_frames);
    let target = 5e-3;
    let compressed = compressor.compress_block(&block, Some(target));
    let recon = compressor.decompress_block(&compressed);

    println!("--- results ---");
    println!("original size     : {} bytes", compressed.original_bytes());
    println!("compressed size   : {} bytes", compressed.total_bytes());
    println!(
        "  keyframe stream : {} bytes",
        compressed.keyframe_bytes.len()
    );
    println!("  error-bound aux : {} bytes", compressed.aux_bytes.len());
    println!("compression ratio : {:.1}x", compressed.compression_ratio());
    println!("requested NRMSE   : {target:.1e}");
    println!("achieved  NRMSE   : {:.3e}", nrmse(&block, &recon));
    assert!(nrmse(&block, &recon) <= target * 1.01);
    println!("error bound satisfied ✔");
}
