//! Stage-decoder fuzz battery, mirroring the service's `protocol_fuzz.rs`:
//! the `gld-lz` decoder must never panic, never allocate beyond the
//! declared (and caller-capped) decompressed size, and always return a
//! typed [`LzError`] on bad input — over arbitrary bytes, truncations of
//! valid streams, and single-bit flips of valid streams.

use gld_lz::{
    compress, compress_profiled, decompress, decompress_profiled, LzError, LzProfile, LzScratch,
    PROFILE_BYTES, TAG_LZ, TAG_STORED,
};
use proptest::prelude::*;

/// A corpus of byte strings with LZ-relevant structure: runs, periodic
/// patterns and noise mixed by the seed.
fn corpus_bytes(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let phase = (seed % 7) as usize;
            match (i / 97 + phase) % 3 {
                0 => (seed as u8).wrapping_add((i % 11) as u8),
                1 => ((i * 31 + seed as usize) % 256) as u8,
                _ => (i as f32 * 0.37).sin().to_bits() as u8,
            }
        })
        .collect()
}

/// Drives the decoder with a cap and asserts the hardening contract: no
/// panic (a panic fails the test), output within the cap when `Ok`, typed
/// error otherwise.
fn drive_decoder(stream: &[u8], cap: usize) {
    assert_contract(decompress(stream, cap), cap);
}

/// Same contract through the profiled decoder: warm models and a seed
/// dictionary must not weaken the hardening in any way.
fn drive_profiled_decoder(stream: &[u8], dict: &[u8], profile: &LzProfile, cap: usize) {
    assert_contract(decompress_profiled(stream, dict, profile, cap), cap);
}

fn assert_contract(result: Result<Vec<u8>, LzError>, cap: usize) {
    match result {
        Ok(out) => assert!(
            out.len() <= cap,
            "decoder produced {} bytes past the {cap}-byte cap",
            out.len()
        ),
        Err(
            LzError::Empty
            | LzError::BadTag(_)
            | LzError::TooLarge { .. }
            | LzError::Truncated
            | LzError::BadOffset { .. }
            | LzError::Overrun
            | LzError::BadProfile { .. },
        ) => {}
    }
}

/// A deterministic trained profile + dictionary pair for the profiled fuzz
/// legs, derived from the corpus generator.
fn corpus_profile(seed: u64) -> (LzProfile, Vec<u8>) {
    let dict = corpus_bytes(seed, 1024);
    let mut scratch = LzScratch::new();
    (LzProfile::fit(&dict, &mut scratch), dict)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn roundtrip_arbitrary_inputs(bytes in prop::collection::vec(0u32..256, 0..2048)) {
        let data: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let mut scratch = LzScratch::new();
        let stream = compress(&data, &mut scratch);
        prop_assert_eq!(decompress(&stream, data.len()).unwrap(), data);
    }

    #[test]
    fn arbitrary_streams_never_panic(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let stream: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        drive_decoder(&stream, 1 << 16);
    }

    #[test]
    fn arbitrary_lz_tagged_streams_never_panic(
        bytes in prop::collection::vec(0u32..256, 0..256),
        declared in 0u64..(1 << 20),
    ) {
        // Spend fuzz cases past the tag/length gate: a well-formed prefix
        // followed by garbage coded bytes.
        let mut stream = vec![TAG_LZ];
        let mut v = declared;
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 { stream.push(byte); break; }
            stream.push(byte | 0x80);
        }
        stream.extend(bytes.into_iter().map(|b| b as u8));
        drive_decoder(&stream, 1 << 20);
    }

    #[test]
    fn truncations_of_valid_streams_never_panic(
        seed in 0u64..500,
        len in 0usize..4096,
        cut_frac in 0.0f64..1.0,
    ) {
        let data = corpus_bytes(seed, len);
        let mut scratch = LzScratch::new();
        let stream = compress(&data, &mut scratch);
        let cut = ((stream.len().saturating_sub(1)) as f64 * cut_frac) as usize;
        drive_decoder(&stream[..cut], data.len());
    }

    #[test]
    fn bit_flipped_streams_never_panic_or_overrun(
        seed in 0u64..500,
        len in 1usize..4096,
        flip_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let data = corpus_bytes(seed, len);
        let mut scratch = LzScratch::new();
        let mut stream = compress(&data, &mut scratch);
        let at = ((stream.len() - 1) as f64 * flip_frac) as usize;
        stream[at] ^= 1 << bit;
        // A flip may silently decode to different bytes (the container's
        // per-frame CRC catches that layer); the decoder itself must only
        // promise no panic and no output past the declared length.
        drive_decoder(&stream, data.len());
    }

    #[test]
    fn caps_are_enforced_before_any_work(
        declared in 1024u64..(1 << 40),
        cap in 0usize..1024,
    ) {
        // Ranges guarantee declared > cap, so TooLarge must always fire.
        let mut stream = vec![TAG_LZ];
        let mut v = declared;
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 { stream.push(byte); break; }
            stream.push(byte | 0x80);
        }
        stream.extend_from_slice(&[0xAA; 32]);
        prop_assert!(matches!(
            decompress(&stream, cap),
            Err(LzError::TooLarge { .. })
        ));
    }

    #[test]
    fn profiled_roundtrip_arbitrary_inputs(
        bytes in prop::collection::vec(0u32..256, 0..2048),
        seed in 0u64..100,
    ) {
        let data: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let (profile, dict) = corpus_profile(seed);
        let mut scratch = LzScratch::new();
        let stream = compress_profiled(&data, &dict, &profile, &mut scratch);
        prop_assert_eq!(
            decompress_profiled(&stream, &dict, &profile, data.len()).unwrap(),
            data
        );
    }

    #[test]
    fn profiled_decoder_survives_arbitrary_streams(
        bytes in prop::collection::vec(0u32..256, 0..256),
        seed in 0u64..100,
    ) {
        let stream: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let (profile, dict) = corpus_profile(seed);
        drive_profiled_decoder(&stream, &dict, &profile, 1 << 16);
    }

    #[test]
    fn profiled_decoder_survives_truncations_and_flips(
        seed in 0u64..500,
        len in 1usize..4096,
        frac in 0.0f64..1.0,
        bit in 0usize..9,
    ) {
        let data = corpus_bytes(seed, len);
        let (profile, dict) = corpus_profile(seed.wrapping_add(1));
        let mut scratch = LzScratch::new();
        let mut stream = compress_profiled(&data, &dict, &profile, &mut scratch);
        let at = ((stream.len() - 1) as f64 * frac) as usize;
        if bit == 8 {
            // Truncation leg.
            stream.truncate(at);
        } else {
            stream[at] ^= 1 << bit;
        }
        drive_profiled_decoder(&stream, &dict, &profile, data.len());
        // A profiled stream fed to the wrong decoder state (no dictionary,
        // cold models) must also stay panic-free — that is exactly what a
        // frame/profile mismatch inside a corrupted container looks like.
        drive_decoder(&stream, data.len());
        drive_profiled_decoder(&stream, &[], &profile, data.len());
    }

    #[test]
    fn profile_deserialiser_never_panics(
        bytes in prop::collection::vec(0u32..256, 0..(PROFILE_BYTES + 8)),
    ) {
        let raw: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        match LzProfile::try_from_bytes(&raw) {
            Ok(profile) => {
                // Whatever estimates the bytes implied, the restored profile
                // must be a usable coder.
                let data = corpus_bytes(7, 512);
                let mut scratch = LzScratch::new();
                let stream = compress_profiled(&data, &[], &profile, &mut scratch);
                prop_assert_eq!(
                    decompress_profiled(&stream, &[], &profile, data.len()).unwrap(),
                    data
                );
            }
            Err(LzError::BadProfile { len, expected }) => {
                prop_assert_eq!(len, raw.len());
                prop_assert_eq!(expected, PROFILE_BYTES);
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }
}

#[test]
fn exhaustive_single_byte_corruption_of_a_valid_stream() {
    // Deterministic nail-down: every byte of a valid stream set to every
    // value must decode to Ok-within-cap or a typed error, never a panic
    // or an allocation blow-up (the cap bounds both).
    let data = corpus_bytes(3, 1500);
    let mut scratch = LzScratch::new();
    let stream = compress(&data, &mut scratch);
    assert_eq!(stream[0], TAG_LZ, "corpus input should take the LZ path");
    for at in 0..stream.len().min(64) {
        for value in 0..=255u8 {
            let mut corrupt = stream.clone();
            corrupt[at] = value;
            drive_decoder(&corrupt, data.len());
        }
    }
}

#[test]
fn stored_blocks_survive_the_same_battery() {
    let mut stream = vec![TAG_STORED];
    stream.extend_from_slice(b"not compressible at this size");
    let body_len = stream.len() - 1;
    assert_eq!(decompress(&stream, body_len).unwrap(), &stream[1..]);
    for at in 0..stream.len() {
        for value in [0u8, 1, 2, 0x80, 0xFF] {
            let mut corrupt = stream.clone();
            corrupt[at] = value;
            drive_decoder(&corrupt, body_len);
        }
    }
}
