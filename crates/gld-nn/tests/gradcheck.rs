//! Finite-difference gradient checks for every differentiable op.
//!
//! A learned compressor trained with a subtly wrong gradient converges to a
//! silently worse rate–distortion point, so these checks are the most
//! important tests in the workspace: each op's analytic gradient is compared
//! against a central finite difference on random small inputs.

use gld_nn::prelude::*;
use gld_tensor::conv::Conv2dGeometry;
use gld_tensor::{Tensor, TensorRng};

/// Computes the finite-difference gradient of `f` (a scalar-valued function
/// of a single tensor) at `x`.
fn finite_difference(f: &dyn Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
    let mut grad = Tensor::zeros(x.dims());
    for i in 0..x.numel() {
        let mut plus = x.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x.clone();
        minus.data_mut()[i] -= eps;
        grad.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
    }
    grad
}

/// Asserts that the analytic gradient of `build` (which maps a leaf Var to a
/// scalar Var) matches finite differences at `x`.
fn check_gradient(build: &dyn Fn(&Tape, &Var) -> Var, x: &Tensor, tol: f32) {
    let tape = Tape::new();
    let leaf = tape.leaf(x.clone());
    let out = build(&tape, &leaf);
    assert_eq!(out.numel(), 1, "gradient check requires a scalar output");
    let grads = out.backward();
    let analytic = grads[leaf.id()].clone().expect("missing gradient");

    let scalar_fn = |xt: &Tensor| -> f32 {
        let tape = Tape::new();
        let leaf = tape.leaf(xt.clone());
        build(&tape, &leaf).value().item()
    };
    let numeric = finite_difference(&scalar_fn, x, 1e-2);

    for i in 0..x.numel() {
        let a = analytic.data()[i];
        let n = numeric.data()[i];
        let denom = 1.0f32.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() / denom < tol,
            "gradient mismatch at {i}: analytic {a} vs numeric {n}"
        );
    }
}

#[test]
fn gradcheck_elementwise_unary_ops() {
    let mut rng = TensorRng::new(1);
    let x = rng.rand_uniform(&[2, 3], 0.3, 2.0); // positive, away from kinks
    check_gradient(&|_t, v| v.exp().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.ln().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.sqrt().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.square().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.sigmoid().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.tanh().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.silu().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.gelu().sum(), &x, 3e-2);
    check_gradient(&|_t, v| v.relu().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.neg().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.scale(3.0).sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.add_scalar(1.5).square().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.abs().sum(), &x, 2e-2);
}

#[test]
fn gradcheck_binary_ops_with_broadcasting() {
    let mut rng = TensorRng::new(2);
    let x = rng.rand_uniform(&[2, 3], 0.5, 1.5);
    let other = rng.rand_uniform(&[3], 0.5, 1.5);
    let other2 = other.clone();
    check_gradient(
        &move |t, v| v.add(&t.constant(other.clone())).square().sum(),
        &x,
        2e-2,
    );
    check_gradient(
        &move |t, v| v.mul(&t.constant(other2.clone())).sum(),
        &x,
        2e-2,
    );
    let denom = rng.rand_uniform(&[2, 3], 1.0, 2.0);
    check_gradient(
        &move |t, v| v.div(&t.constant(denom.clone())).sum(),
        &x,
        2e-2,
    );
    let numer = rng.rand_uniform(&[2, 3], 1.0, 2.0);
    check_gradient(
        &move |t, v| t.constant(numer.clone()).div(v).sum(),
        &x,
        2e-2,
    );
    let sub_other = rng.rand_uniform(&[2, 1], 0.0, 1.0);
    check_gradient(
        &move |t, v| v.sub(&t.constant(sub_other.clone())).square().sum(),
        &x,
        2e-2,
    );
}

#[test]
fn gradcheck_matmul_2d_and_batched() {
    let mut rng = TensorRng::new(3);
    let x = rng.randn(&[3, 4]).scale(0.5);
    let w = rng.randn(&[4, 2]).scale(0.5);
    let w2 = w.clone();
    check_gradient(
        &move |t, v| v.matmul(&t.constant(w.clone())).square().sum(),
        &x,
        2e-2,
    );
    // Gradient with respect to the right operand.
    let a = rng.randn(&[3, 4]).scale(0.5);
    check_gradient(
        &move |t, v| t.constant(a.clone()).matmul(v).square().sum(),
        &w2,
        2e-2,
    );
    // Batched with broadcast batch on the right.
    let xb = rng.randn(&[2, 3, 4]).scale(0.5);
    let wb = rng.randn(&[1, 4, 2]).scale(0.5);
    check_gradient(
        &move |t, v| v.matmul(&t.constant(wb.clone())).square().sum(),
        &xb,
        2e-2,
    );
}

#[test]
fn gradcheck_softmax_and_reductions() {
    let mut rng = TensorRng::new(4);
    let x = rng.randn(&[2, 4]);
    check_gradient(&|_t, v| v.softmax_last().square().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.mean(), &x, 2e-2);
    check_gradient(&|_t, v| v.sum_axis(1, false).square().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.mean_axis(0, true).square().sum(), &x, 2e-2);
}

#[test]
fn gradcheck_shape_ops() {
    let mut rng = TensorRng::new(5);
    let x = rng.randn(&[2, 3, 4]);
    check_gradient(&|_t, v| v.reshape(&[6, 4]).square().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.permute(&[2, 0, 1]).square().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.slice_axis(1, 1, 3).square().sum(), &x, 2e-2);
    let other = rng.randn(&[2, 2, 4]);
    check_gradient(
        &move |t, v| {
            let o = t.constant(other.clone());
            t.concat(&[v, &o], 1).square().sum()
        },
        &x,
        2e-2,
    );
}

#[test]
fn gradcheck_conv2d_input_weight_bias() {
    let mut rng = TensorRng::new(6);
    let geom = Conv2dGeometry::new(3, 1, 1);
    let x = rng.randn(&[1, 2, 4, 4]).scale(0.5);
    let w = rng.randn(&[3, 2, 3, 3]).scale(0.3);
    let b = rng.randn(&[3]).scale(0.1);

    // wrt input
    let (wc, bc) = (w.clone(), b.clone());
    check_gradient(
        &move |t, v| {
            v.conv2d(&t.constant(wc.clone()), Some(&t.constant(bc.clone())), geom)
                .square()
                .sum()
        },
        &x,
        3e-2,
    );
    // wrt weight
    let (xc, bc2) = (x.clone(), b.clone());
    check_gradient(
        &move |t, v| {
            t.constant(xc.clone())
                .conv2d(v, Some(&t.constant(bc2.clone())), geom)
                .square()
                .sum()
        },
        &w,
        3e-2,
    );
    // wrt bias
    let (xc2, wc2) = (x.clone(), w.clone());
    check_gradient(
        &move |t, v| {
            t.constant(xc2.clone())
                .conv2d(&t.constant(wc2.clone()), Some(v), geom)
                .square()
                .sum()
        },
        &b,
        3e-2,
    );
    // Strided convolution wrt input.
    let geom2 = Conv2dGeometry::new(3, 2, 1);
    let wc3 = w.clone();
    check_gradient(
        &move |t, v| {
            v.conv2d(&t.constant(wc3.clone()), None, geom2)
                .square()
                .sum()
        },
        &x,
        3e-2,
    );
}

#[test]
fn gradcheck_group_norm() {
    let mut rng = TensorRng::new(7);
    let x = rng.randn(&[2, 4, 3, 3]);
    let gamma = rng.rand_uniform(&[4], 0.5, 1.5);
    let beta = rng.randn(&[4]).scale(0.1);
    // wrt input
    let (gc, bc) = (gamma.clone(), beta.clone());
    check_gradient(
        &move |t, v| {
            v.group_norm(2, &t.constant(gc.clone()), &t.constant(bc.clone()), 1e-5)
                .square()
                .sum()
        },
        &x,
        5e-2,
    );
    // wrt gamma
    let (xc, bc2) = (x.clone(), beta.clone());
    check_gradient(
        &move |t, v| {
            t.constant(xc.clone())
                .group_norm(2, v, &t.constant(bc2.clone()), 1e-5)
                .square()
                .sum()
        },
        &gamma,
        3e-2,
    );
    // wrt beta
    let (xc2, gc2) = (x.clone(), gamma.clone());
    check_gradient(
        &move |t, v| {
            t.constant(xc2.clone())
                .group_norm(2, &t.constant(gc2.clone()), v, 1e-5)
                .square()
                .sum()
        },
        &beta,
        3e-2,
    );
}

#[test]
fn gradcheck_pooling_and_upsampling() {
    let mut rng = TensorRng::new(8);
    let x = rng.randn(&[1, 2, 4, 4]);
    check_gradient(&|_t, v| v.avg_pool2d(2).square().sum(), &x, 2e-2);
    check_gradient(&|_t, v| v.upsample_nearest2d(2).square().sum(), &x, 2e-2);
}

#[test]
fn gradcheck_attention_layer() {
    let mut rng = TensorRng::new(9);
    let attn = SelfAttention::new("attn", 4, 2, &mut rng);
    let x = rng.randn(&[1, 3, 4]).scale(0.5);
    check_gradient(&move |t, v| attn.forward(t, v).square().sum(), &x, 5e-2);
}

#[test]
fn gradcheck_composed_expression() {
    // A miniature network: conv → groupnorm-free silu → mean, mixing several
    // op backwards in one graph.
    let mut rng = TensorRng::new(10);
    let geom = Conv2dGeometry::new(3, 1, 1);
    let w = rng.randn(&[2, 1, 3, 3]).scale(0.4);
    let x = rng.randn(&[1, 1, 5, 5]).scale(0.5);
    check_gradient(
        &move |t, v| {
            let h = v.conv2d(&t.constant(w.clone()), None, geom).silu();
            let pooled = h.avg_pool2d(1);
            pooled.square().mean()
        },
        &x,
        3e-2,
    );
}

#[test]
fn backward_accumulates_into_parameters() {
    let mut rng = TensorRng::new(11);
    let p = Parameter::new("w", rng.randn(&[3]));
    let tape = Tape::new();
    let w = tape.param(&p);
    // Use the parameter twice; gradients must accumulate from both uses.
    let loss = w.square().sum().add(&w.scale(2.0).sum());
    loss.backward();
    let expected = p.value().scale(2.0).add_scalar(2.0);
    let got = p.grad();
    for i in 0..3 {
        assert!((got.data()[i] - expected.data()[i]).abs() < 1e-5);
    }
}
