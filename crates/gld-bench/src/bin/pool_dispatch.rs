//! Pool-dispatch microbenchmark: persistent work-stealing pool vs the old
//! scoped-thread dispatch (a thread spawn/join per terminal op), in the
//! style of `table2_throughput`.
//!
//! Three sections:
//!
//! 1. **dispatch overhead** — thousands of small parallel ops, where the
//!    per-op cost is dominated by getting work onto threads.  The scoped
//!    reference spawns and joins OS threads every call (exactly what the
//!    pre-pool shim did); the pool path dispatches onto the long-lived
//!    workers through `par_iter`.
//! 2. **block workloads** — 8/16/32 SZ3-like block compressions per op with
//!    skewed per-block cost (every fourth block is 4× larger), the shape of
//!    `compress_variable` fan-outs.  Work-stealing over oversplit chunks
//!    absorbs the skew; the scoped reference's one-contiguous-piece-per-
//!    worker split cannot.
//! 3. **streaming executor** — variable-level compression through the
//!    bounded-queue streaming path vs the sequential reference, recording
//!    the measured peak resident block count next to the queue depth.
//!
//! Results land in `results/pool_dispatch.csv`.  Run with
//! `RAYON_NUM_THREADS=4` (or more) on single-core hosts: with a one-worker
//! pool both paths degenerate (the pool runs inline, the scoped baseline
//! spawns a thread the old shim would not have), so only a multi-worker
//! pool compares the two dispatch mechanisms like for like.

use gld_bench::write_result;
use gld_core::{Codec, StreamConfig};
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_tensor::{Tensor, TensorRng};
use rayon::prelude::*;
use std::time::Instant;

use gld_baselines::SzCompressor;

fn time_ms<F: FnMut()>(mut f: F, repeats: usize) -> f64 {
    // One warmup call keeps lazy pool initialisation out of the measurement.
    f();
    let start = Instant::now();
    for _ in 0..repeats {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / repeats as f64
}

/// The baseline: the dispatch the pre-pool shim performed whenever it went
/// parallel — split into one contiguous piece per worker, spawn a scoped OS
/// thread per piece, join them all, every call.  (On a single-worker pool
/// the old shim collapsed to one inline piece instead; the scoped column
/// therefore measures the spawn/join cost the old shim paid on any
/// multi-worker host.)
fn scoped_dispatch<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let chunk = items.len().div_ceil(workers).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|piece| scope.spawn(|| piece.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scoped worker panicked"))
            .collect()
    })
}

/// Builds `count` blocks with skewed cost: every fourth block is 32×32,
/// the rest 16×16 (a 4× element-count skew, as uneven window content
/// produces in practice).
fn skewed_blocks(count: usize) -> Vec<Tensor> {
    let mut rng = TensorRng::new(0xD15BA7C4);
    (0..count)
        .map(|i| {
            let edge = if i % 4 == 0 { 32 } else { 16 };
            rng.randn(&[8, edge, edge])
        })
        .collect()
}

fn main() {
    let workers = rayon::current_num_threads();
    println!("pool-dispatch microbench — {workers} pool workers\n");
    let mut csv = format!(
        "section,workload,baseline_ms,pool_ms,speedup,notes\n\
         meta,pool_workers,,,,{workers} workers\n"
    );

    // ── 1. dispatch overhead ────────────────────────────────────────────
    // 4096-element map+sum: real work is microseconds, so the timing is the
    // dispatch machinery itself.
    let data: Vec<f32> = (0..4096).map(|i| (i as f32).sin()).collect();
    let reps = 2_000;
    let scoped_ms = time_ms(
        || {
            let parts = scoped_dispatch(&data, workers, |&x| (x as f64) * (x as f64));
            assert_eq!(parts.len(), data.len());
        },
        reps,
    );
    let pool_ms = time_ms(
        || {
            let s: f64 = data
                .par_iter()
                .with_min_len(64)
                .map(|&x| (x as f64) * (x as f64))
                .sum();
            assert!(s.is_finite());
        },
        reps,
    );
    println!(
        "{:<28} scoped {scoped_ms:>9.4} ms   pool {pool_ms:>9.4} ms   {:>6.2}x",
        "dispatch overhead (4k map)",
        scoped_ms / pool_ms
    );
    csv.push_str(&format!(
        "dispatch,map_sum_4k,{scoped_ms:.5},{pool_ms:.5},{:.3},{reps} reps\n",
        scoped_ms / pool_ms
    ));

    // ── 2. block workloads (the ≥8-block fan-out shape) ─────────────────
    // First with tiny blocks, where per-op dispatch is a visible fraction
    // of the work — the direct measurement of "dispatch overhead reduced
    // on ≥8-block workloads"...
    let sz = SzCompressor::new();
    {
        let mut rng = TensorRng::new(0xB10C);
        let tiny: Vec<Tensor> = (0..8).map(|_| rng.randn(&[4, 8, 8])).collect();
        let scoped_ms = time_ms(
            || {
                let frames = scoped_dispatch(&tiny, workers, |block| {
                    Codec::compress_block(&sz, block, None)
                });
                assert_eq!(frames.len(), 8);
            },
            200,
        );
        let pool_ms = time_ms(
            || {
                let frames: Vec<Vec<u8>> = tiny
                    .par_iter()
                    .with_min_len(1)
                    .map(|block| Codec::compress_block(&sz, block, None))
                    .collect();
                assert_eq!(frames.len(), 8);
            },
            200,
        );
        println!(
            "{:<28} scoped {scoped_ms:>9.4} ms   pool {pool_ms:>9.4} ms   {:>6.2}x",
            "8 tiny blocks",
            scoped_ms / pool_ms
        );
        csv.push_str(&format!(
            "blocks,tiny_8,{scoped_ms:.5},{pool_ms:.5},{:.3},dispatch-dominated 8-block fan-out\n",
            scoped_ms / pool_ms
        ));
    }

    // ...then with realistic skewed block costs, where the win is bounded
    // by the dispatch fraction of total work.
    for count in [8usize, 16, 32] {
        let blocks = skewed_blocks(count);
        let scoped_ms = time_ms(
            || {
                let frames = scoped_dispatch(&blocks, workers, |block| {
                    Codec::compress_block(&sz, block, None)
                });
                assert_eq!(frames.len(), count);
            },
            10,
        );
        let pool_ms = time_ms(
            || {
                let frames: Vec<Vec<u8>> = blocks
                    .par_iter()
                    .with_min_len(1)
                    .map(|block| Codec::compress_block(&sz, block, None))
                    .collect();
                assert_eq!(frames.len(), count);
            },
            10,
        );
        println!(
            "{:<28} scoped {scoped_ms:>9.4} ms   pool {pool_ms:>9.4} ms   {:>6.2}x",
            format!("{count} skewed blocks"),
            scoped_ms / pool_ms
        );
        csv.push_str(&format!(
            "blocks,skewed_{count},{scoped_ms:.5},{pool_ms:.5},{:.3},every 4th block 4x cost\n",
            scoped_ms / pool_ms
        ));
    }

    // ── 3. streaming executor vs sequential reference ───────────────────
    let ds = generate(DatasetKind::S3d, &FieldSpec::new(1, 128, 32, 32), 41);
    let variable = &ds.variables[0];
    let depth = 2 * workers.max(1);
    let seq_ms = time_ms(
        || {
            let (_, stats) = sz.compress_variable_sequential(variable, 8, None);
            assert_eq!(stats.blocks, 16);
        },
        5,
    );
    let mut peak = 0usize;
    let stream_ms = time_ms(
        || {
            let (_, stats, metrics) = sz.compress_variable_streaming(
                variable,
                8,
                None,
                StreamConfig {
                    queue_depth: depth,
                    workers: 0,
                },
            );
            assert_eq!(stats.blocks, 16);
            peak = metrics.peak_resident;
        },
        5,
    );
    println!(
        "{:<28} seq    {seq_ms:>9.4} ms   pool {stream_ms:>9.4} ms   {:>6.2}x   (peak resident {peak}/{depth})",
        "streaming executor (16 win)",
        seq_ms / stream_ms
    );
    csv.push_str(&format!(
        "executor,streaming_16_windows,{seq_ms:.5},{stream_ms:.5},{:.3},peak_resident {peak} of depth {depth}\n",
        seq_ms / stream_ms
    ));

    write_result("pool_dispatch.csv", &csv);
}
