//! Fixed-bucket log2-scale histograms for latency-style `u64` samples
//! (nanoseconds by convention).
//!
//! The bucket layout is the classic HDR-lite scheme: values below 16 get
//! one exact bucket each; above that, each power-of-two range is split into
//! 16 linear sub-buckets, so any recorded value lands in a bucket whose
//! width is at most 1/16 of its lower bound.  [`Histogram::record`] is
//! lock-free and allocation-free (three relaxed atomic RMWs plus two
//! `fetch_min`/`fetch_max`); snapshots are mergeable and interpolate
//! percentiles inside the containing bucket, so an estimate is always in
//! the same bucket as the exact nearest-rank sample.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two range splits into `2^SUB_BITS`
/// linear buckets, bounding relative quantile error at `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two range (16).
pub const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// The bucket index holding `value`.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize;
    let exp = msb - SUB_BITS as usize;
    let sub = ((value >> exp) as usize) - SUB;
    (msb - SUB_BITS as usize + 1) * SUB + sub
}

/// The half-open `[lo, hi)` value range of bucket `index` (`hi` saturates
/// at `u64::MAX` for the topmost bucket).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB {
        return (index as u64, index as u64 + 1);
    }
    let major = index / SUB;
    let sub = (index % SUB) as u64;
    let exp = (major - 1) as u32;
    let lo = (SUB as u64 + sub) << exp;
    (lo, lo.saturating_add(1u64 << exp))
}

/// A concurrent log2-bucket histogram.  All methods are lock-free;
/// [`Histogram::record`] never allocates.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets.  Concurrent recording makes the
    /// copy "consistent enough": every sample fully recorded before the
    /// call is included.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum,
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Shorthand: the interpolated quantile of the live buckets.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        self.snapshot().value_at_quantile(q)
    }
}

/// A point-in-time, mergeable copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self`.  Merging is associative and commutative:
    /// any merge order of per-thread (or per-process) snapshots yields the
    /// same totals, buckets, and therefore the same percentiles.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The interpolated value at quantile `q` in `[0, 1]` (nearest-rank,
    /// linear interpolation inside the containing bucket).  The estimate is
    /// guaranteed to land in the same bucket as the exact nearest-rank
    /// sample, so its relative error is bounded by the bucket resolution
    /// (`2^-SUB_BITS`, plus nothing at all below 16 where buckets are
    /// exact).  Returns 0 on an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let (lo, hi) = bucket_bounds(index);
                let width = hi - lo;
                let into = rank - cum; // 1..=n
                let offset = (width as u128 * into as u128 / (n as u128 + 1)) as u64;
                return (lo + offset.min(width.saturating_sub(1)))
                    .clamp(self.min, self.max.max(self.min));
            }
            cum += n;
        }
        self.max
    }

    /// p50 shorthand.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// p90 shorthand.
    pub fn p90(&self) -> u64 {
        self.value_at_quantile(0.90)
    }

    /// p99 shorthand.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// p99.9 shorthand.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(upper_bound_inclusive, cumulative_count)`
    /// pairs — the shape Prometheus `_bucket{le=...}` lines want.
    pub fn cumulative_nonzero(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            out.push((bucket_bounds(index).1 - 1, cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v, "lo {lo} > v {v}");
            assert!(v < hi || hi == u64::MAX, "v {v} >= hi {hi}");
        }
        // Buckets tile the axis: consecutive indices share a boundary.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_bounds(i).1, bucket_bounds(i + 1).0, "gap at {i}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 15);
        assert_eq!(s.value_at_quantile(1.0), 15);
    }

    #[test]
    fn quantile_lands_in_the_exact_sample_bucket() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..1000).map(|i| (i * i * 37 + 11) % 1_000_000).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = s.value_at_quantile(q);
            assert_eq!(
                bucket_index(est),
                bucket_index(exact),
                "q={q}: est {est} not in exact sample {exact}'s bucket"
            );
        }
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            let v = v * 13 % 4096;
            if v % 2 == 0 { &a } else { &b }.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
