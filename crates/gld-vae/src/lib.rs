//! # gld-vae
//!
//! Variational autoencoder with a scale hyperprior for learned transform
//! coding of scientific frames (paper §3.1 and §3.4, stage-one training).
//!
//! The pipeline mirrors the Ballé/Minnen construction the paper builds on:
//!
//! * an **encoder** maps a frame `x` to a latent `y = E(x)`;
//! * a **hyper-encoder** summarises `y` into a tiny hyper-latent
//!   `z = Eh(y)`, which is quantised and coded with a factorized prior;
//! * a **hyper-decoder** predicts per-element Gaussian parameters
//!   `(μ, σ) = Dh(ẑ)` used both for the rate term during training and for
//!   conditional arithmetic coding of the quantised latent `ŷ`;
//! * a **decoder** reconstructs `x̂ = D(ŷ)`.
//!
//! Training follows Eq. 8: `L = MSE(x, x̂) + λ·(R_y + R_z)` with additive
//! uniform noise standing in for quantisation.  Inference-time compression
//! uses real rounding plus the arithmetic coder from `gld-entropy`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod config;
pub mod model;
pub mod train;

pub use codec::{FrameCodec, LatentCodec};
pub use config::VaeConfig;
pub use model::{RateDistortion, Vae};
pub use train::{TrainReport, VaeTrainer};
