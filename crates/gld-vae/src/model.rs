//! The VAE-with-hyperprior model: encoder, decoder, hyper autoencoder and
//! the differentiable rate–distortion objective (paper Eq. 8).

use crate::config::VaeConfig;
use gld_nn::prelude::*;
use gld_tensor::{Tensor, TensorRng};

/// Scalar diagnostics of one rate–distortion evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateDistortion {
    /// Mean squared reconstruction error.
    pub mse: f32,
    /// Estimated bits for the latent `y`.
    pub bits_y: f32,
    /// Estimated bits for the hyper-latent `z`.
    pub bits_z: f32,
    /// Bits per input value (total rate / pixels).
    pub bpp: f32,
}

/// The VAE with scale hyperprior.
pub struct Vae {
    config: VaeConfig,
    // Encoder: two stride-2 stages then a projection to the latent channels.
    enc1: Conv2d,
    enc_gn1: GroupNorm,
    enc2: Conv2d,
    enc_gn2: GroupNorm,
    enc3: Conv2d,
    // Decoder mirrors the encoder with nearest-neighbour upsampling.
    dec1: Conv2d,
    dec2: Conv2d,
    dec_gn1: GroupNorm,
    dec3: Conv2d,
    dec4: Conv2d,
    // Hyper autoencoder.
    henc1: Conv2d,
    henc2: Conv2d,
    hdec1: Conv2d,
    hdec2: Conv2d,
    /// Per-channel log-scale of the factorized prior over `z`.
    z_log_scale: Parameter,
}

impl Vae {
    /// Builds a model with freshly initialised weights.
    pub fn new(config: VaeConfig) -> Self {
        let mut rng = TensorRng::new(config.seed);
        let c = config.base_channels;
        let l = config.latent_channels;
        let hc = config.hyper_channels;
        Vae {
            config,
            enc1: Conv2d::new("vae.enc1", 1, c, 3, 2, 1, &mut rng),
            enc_gn1: GroupNorm::new("vae.enc_gn1", 1, c),
            enc2: Conv2d::new("vae.enc2", c, c, 3, 2, 1, &mut rng),
            enc_gn2: GroupNorm::new("vae.enc_gn2", 1, c),
            enc3: Conv2d::new("vae.enc3", c, l, 3, 1, 1, &mut rng),
            dec1: Conv2d::new("vae.dec1", l, c, 3, 1, 1, &mut rng),
            dec2: Conv2d::new("vae.dec2", c, c, 3, 1, 1, &mut rng),
            dec_gn1: GroupNorm::new("vae.dec_gn1", 1, c),
            dec3: Conv2d::new("vae.dec3", c, c, 3, 1, 1, &mut rng),
            dec4: Conv2d::new("vae.dec4", c, 1, 3, 1, 1, &mut rng),
            henc1: Conv2d::new("vae.henc1", l, hc, 3, 1, 1, &mut rng),
            henc2: Conv2d::new("vae.henc2", hc, hc, 3, 2, 1, &mut rng),
            hdec1: Conv2d::new("vae.hdec1", hc, hc, 3, 1, 1, &mut rng),
            hdec2: Conv2d::new("vae.hdec2", hc, 2 * l, 3, 1, 1, &mut rng),
            z_log_scale: Parameter::new("vae.z_log_scale", Tensor::zeros(&[hc])),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &VaeConfig {
        &self.config
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> ParameterSet {
        let mut set = ParameterSet::new();
        for layer in [
            &self.enc1,
            &self.enc2,
            &self.enc3,
            &self.dec1,
            &self.dec2,
            &self.dec3,
            &self.dec4,
            &self.henc1,
            &self.henc2,
            &self.hdec1,
            &self.hdec2,
        ] {
            set.extend(&layer.parameters());
        }
        set.extend(&self.enc_gn1.parameters());
        set.extend(&self.enc_gn2.parameters());
        set.extend(&self.dec_gn1.parameters());
        set.push(self.z_log_scale.clone());
        set
    }

    // ------------------------------------------------------------------
    // Forward pieces
    // ------------------------------------------------------------------

    /// Encodes frames `[B, 1, H, W]` into code-space latents
    /// `[B, L, H/4, W/4]` (already multiplied by the quantisation scale, so
    /// rounding to integers is the quantiser).
    pub fn encode(&self, tape: &Tape, x: &Var) -> Var {
        let h = self.enc1.forward(tape, x);
        let h = self.enc_gn1.forward(tape, &h).silu();
        let h = self.enc2.forward(tape, &h);
        let h = self.enc_gn2.forward(tape, &h).silu();
        let y = self.enc3.forward(tape, &h);
        y.scale(self.config.quant_scale)
    }

    /// Decodes code-space latents back to frames `[B, 1, H, W]`.
    pub fn decode(&self, tape: &Tape, y_code: &Var) -> Var {
        let y = y_code.scale(1.0 / self.config.quant_scale);
        let h = self.dec1.forward(tape, &y).silu();
        let h = h.upsample_nearest2d(2);
        let h = self.dec2.forward(tape, &h);
        let h = self.dec_gn1.forward(tape, &h).silu();
        let h = h.upsample_nearest2d(2);
        let h = self.dec3.forward(tape, &h).silu();
        self.dec4.forward(tape, &h)
    }

    /// Hyper-encodes code-space latents into the hyper-latent `z`
    /// (`[B, Ch, H/8, W/8]`).
    pub fn hyper_encode(&self, tape: &Tape, y_code: &Var) -> Var {
        let h = self.henc1.forward(tape, y_code).silu();
        self.henc2.forward(tape, &h)
    }

    /// Hyper-decodes `z` into per-element `(μ, σ)` for the latent.
    pub fn hyper_decode(&self, tape: &Tape, z: &Var) -> (Var, Var) {
        let h = self.hdec1.forward(tape, z).silu();
        let h = h.upsample_nearest2d(2);
        let out = self.hdec2.forward(tape, &h);
        let l = self.config.latent_channels;
        let mu = out.slice_axis(1, 0, l);
        let raw_sigma = out.slice_axis(1, l, 2 * l);
        // softplus + floor keeps σ positive and bounded away from zero.
        let sigma = softplus(&raw_sigma).add_scalar(0.05);
        (mu, sigma)
    }

    /// Per-channel scale of the factorized prior over `z`.
    pub fn z_scale(&self, tape: &Tape) -> Var {
        let log_scale = tape.param(&self.z_log_scale);
        softplus(&log_scale).add_scalar(0.05)
    }

    // ------------------------------------------------------------------
    // Training objective
    // ------------------------------------------------------------------

    /// Evaluates the rate–distortion loss (Eq. 8) on a batch of frames
    /// `[B, 1, H, W]`, using additive uniform noise as the differentiable
    /// quantisation surrogate.  Returns the scalar loss variable plus
    /// detached diagnostics.
    pub fn rd_loss(
        &self,
        tape: &Tape,
        frames: &Tensor,
        rng: &mut TensorRng,
    ) -> (Var, RateDistortion) {
        assert_eq!(frames.rank(), 4, "frames must be [B, 1, H, W]");
        let x = tape.constant(frames.clone());
        let y = self.encode(tape, &x);

        // Quantisation noise on y and z (straight-through surrogate).
        let y_dims = y.dims();
        let noise_y = tape.constant(rng.rand_uniform(&y_dims, -0.5, 0.5));
        let y_noisy = y.add(&noise_y);

        let z = self.hyper_encode(tape, &y);
        let z_dims = z.dims();
        let noise_z = tape.constant(rng.rand_uniform(&z_dims, -0.5, 0.5));
        let z_noisy = z.add(&noise_z);

        let (mu, sigma) = self.hyper_decode(tape, &z_noisy);
        let x_hat = self.decode(tape, &y_noisy);

        let mse = mse_loss(&x_hat, &x);
        let bits_y = gaussian_bits(&y_noisy, &mu, &sigma);
        // Factorized prior over z: zero-mean Gaussian with learnable
        // per-channel scale.
        let z_scale = self
            .z_scale(tape)
            .reshape(&[1, self.config.hyper_channels, 1, 1]);
        let zero = tape.constant(Tensor::zeros(&z_dims));
        let z_scale_full = z_scale.mul(&tape.constant(Tensor::ones(&z_dims)));
        let bits_z = gaussian_bits(&z_noisy, &zero, &z_scale_full);

        let pixels = frames.numel() as f32;
        let rate = bits_y.add(&bits_z).scale(1.0 / pixels);
        let loss = mse.add(&rate.scale(self.config.lambda));

        let report = RateDistortion {
            mse: mse.value().item(),
            bits_y: bits_y.value().item(),
            bits_z: bits_z.value().item(),
            bpp: (bits_y.value().item() + bits_z.value().item()) / pixels,
        };
        (loss, report)
    }

    // ------------------------------------------------------------------
    // Inference helpers (no gradient bookkeeping needed by callers)
    // ------------------------------------------------------------------

    /// Encodes frames and rounds the latents to integers (the real
    /// quantiser), returning `[B, L, H/4, W/4]`.
    pub fn quantize_latent(&self, frames: &Tensor) -> Tensor {
        let tape = Tape::new();
        let x = tape.constant(frames.clone());
        let mut y = self.encode(&tape, &x).value();
        y.round_inplace();
        y
    }

    /// Decodes (possibly generated) quantised latents back to frames.
    pub fn decode_latent(&self, y_quantized: &Tensor) -> Tensor {
        let tape = Tape::new();
        let y = tape.constant(y_quantized.clone());
        self.decode(&tape, &y).value()
    }

    /// Quantises the hyper-latent for a given quantised latent.
    pub fn quantize_hyper(&self, y_quantized: &Tensor) -> Tensor {
        let tape = Tape::new();
        let y = tape.constant(y_quantized.clone());
        let mut z = self.hyper_encode(&tape, &y).value();
        z.round_inplace();
        z
    }

    /// Predicts `(μ, σ)` for the latent from a quantised hyper-latent.
    pub fn predict_gaussian(&self, z_quantized: &Tensor) -> (Tensor, Tensor) {
        let tape = Tape::new();
        let z = tape.constant(z_quantized.clone());
        let (mu, sigma) = self.hyper_decode(&tape, &z);
        (mu.value(), sigma.value())
    }

    /// Full non-coded round trip: encode, round, decode.  Useful for
    /// measuring pure transform distortion without entropy coding.
    pub fn reconstruct(&self, frames: &Tensor) -> Tensor {
        self.decode_latent(&self.quantize_latent(frames))
    }
}

/// Differentiable softplus: `ln(1 + eˣ)`.
fn softplus(x: &Var) -> Var {
    x.exp().add_scalar(1.0).ln()
}

/// Differentiable estimate of the total bits needed to code `y` under
/// element-wise `N(μ, σ²)` convolved with `U(−½, ½)` (paper Eq. 1–2), using
/// a logistic approximation of the normal CDF.
fn gaussian_bits(y: &Var, mu: &Var, sigma: &Var) -> Var {
    let centred = y.sub(mu);
    let upper = logistic_cdf(&centred.add_scalar(0.5).div(sigma));
    let lower = logistic_cdf(&centred.add_scalar(-0.5).div(sigma));
    let p = upper.sub(&lower).add_scalar(1e-7);
    p.ln().sum().scale(-1.0 / std::f32::consts::LN_2)
}

/// Logistic approximation of the standard normal CDF: `σ(1.702·x)`.
fn logistic_cdf(x: &Var) -> Var {
    x.scale(1.702).sigmoid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gld_tensor::stats::mse as mse_t;

    fn frames(batch: usize) -> Tensor {
        let mut rng = TensorRng::new(3);
        // Smooth-ish frames in [-0.5, 0.5].
        rng.rand_uniform(&[batch, 1, 16, 16], -0.5, 0.5)
    }

    #[test]
    fn shapes_through_the_model() {
        let vae = Vae::new(VaeConfig::tiny());
        let x = frames(2);
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = vae.encode(&tape, &xv);
        assert_eq!(y.dims(), vec![2, 3, 4, 4]);
        let z = vae.hyper_encode(&tape, &y);
        assert_eq!(z.dims(), vec![2, 3, 2, 2]);
        let (mu, sigma) = vae.hyper_decode(&tape, &z);
        assert_eq!(mu.dims(), y.dims());
        assert_eq!(sigma.dims(), y.dims());
        assert!(sigma.value().min() > 0.0);
        let xhat = vae.decode(&tape, &y);
        assert_eq!(xhat.dims(), vec![2, 1, 16, 16]);
    }

    #[test]
    fn parameter_set_covers_all_layers() {
        let vae = Vae::new(VaeConfig::tiny());
        let params = vae.parameters();
        // 11 convolutions (weight + bias), 3 group norms (gamma + beta), and
        // the factorized-prior scale.
        assert_eq!(params.len(), 11 * 2 + 3 * 2 + 1);
        assert!(params.num_scalars() > 500);
    }

    #[test]
    fn rd_loss_is_finite_and_backpropagates() {
        let vae = Vae::new(VaeConfig::tiny());
        let mut rng = TensorRng::new(1);
        let tape = Tape::new();
        let (loss, report) = vae.rd_loss(&tape, &frames(2), &mut rng);
        assert!(loss.value().item().is_finite());
        assert!(report.mse >= 0.0);
        assert!(report.bits_y > 0.0);
        assert!(report.bits_z > 0.0);
        loss.backward();
        assert!(vae.parameters().grad_norm() > 0.0);
    }

    #[test]
    fn quantized_roundtrip_runs_and_latents_are_integers() {
        let vae = Vae::new(VaeConfig::tiny());
        let x = frames(2);
        let y = vae.quantize_latent(&x);
        assert!(y.data().iter().all(|v| (v - v.round()).abs() < 1e-6));
        let recon = vae.reconstruct(&x);
        assert_eq!(recon.dims(), x.dims());
        assert!(recon.data().iter().all(|v| v.is_finite()));
        // Untrained reconstruction error is finite and bounded (sanity only).
        assert!(mse_t(&x, &recon).is_finite());
    }

    #[test]
    fn gaussian_bits_increase_with_distance_from_mean() {
        let tape = Tape::new();
        let mu = tape.constant(Tensor::zeros(&[4]));
        let sigma = tape.constant(Tensor::full(&[4], 1.0));
        let near = tape.constant(Tensor::from_vec(vec![0.0, 0.1, -0.2, 0.05], &[4]));
        let far = tape.constant(Tensor::from_vec(vec![5.0, -6.0, 7.0, -4.0], &[4]));
        let bits_near = gaussian_bits(&near, &mu, &sigma).value().item();
        let bits_far = gaussian_bits(&far, &mu, &sigma).value().item();
        assert!(bits_far > bits_near);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Vae::new(VaeConfig::tiny());
        let b = Vae::new(VaeConfig::tiny());
        let x = frames(1);
        assert_eq!(a.quantize_latent(&x), b.quantize_latent(&x));
    }
}
