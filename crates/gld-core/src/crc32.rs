//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) for per-frame container
//! checksums — implemented in-repo because offline builds cannot pull a
//! checksum crate.
//!
//! The table is built at compile time; the byte-at-a-time loop is fast
//! enough for container framing (frames are kilobytes, checksumming is
//! orders of magnitude cheaper than the codecs producing them).

/// Reflected generator polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32/IEEE checksum of `bytes` (init `0xFFFF_FFFF`, final xor, reflected
/// — identical to zlib's `crc32(0, ...)`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut state = Crc32::new();
    state.update(bytes);
    state.finish()
}

/// Streaming CRC-32/IEEE over multiple slices — `update` calls over the
/// pieces yield exactly [`crc32`] of their concatenation (the v3 container
/// checksums a frame's stage byte and payload without gluing them).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    crc: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { crc: u32::MAX }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.crc = (self.crc >> 8) ^ TABLE[((self.crc ^ byte as u32) & 0xFF) as usize];
        }
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        !self.crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(3000).collect();
        for split in [0, 1, 17, 1500, 2999, 3000] {
            let mut s = Crc32::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0xA5u8; 1024];
        let clean = crc32(&data);
        data[512] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
