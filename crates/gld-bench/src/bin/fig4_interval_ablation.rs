//! Regenerates Figure 4: the interpolation-interval ablation on the
//! climate-like dataset.  Left panel = per-frame NRMSE for each interval,
//! right panel = NRMSE vs compression-ratio curve obtained by sweeping the
//! error-bound target for each interval.

use gld_bench::{bench_budget, bench_config, bench_spec, write_result};
use gld_core::{GldCompressor, GldConfig, KeyframeStrategy};
use gld_datasets::{generate, DatasetKind};
use gld_tensor::stats::nrmse;

const INTERVALS: [usize; 5] = [2, 3, 4, 5, 6];
const NRMSE_TARGETS: [f32; 3] = [2e-2, 1e-2, 5e-3];

fn main() {
    let dataset = generate(DatasetKind::E3sm, &bench_spec(), 404);
    let mut per_frame_csv = String::from("interval,frame,nrmse,is_keyframe\n");
    let mut curve_csv = String::from("interval,compression_ratio,nrmse\n");

    println!("Figure 4 — interpolation-interval ablation (E3SM-like)\n");
    let mut summary = Vec::new();
    for &interval in &INTERVALS {
        let config = GldConfig {
            strategy: KeyframeStrategy::Interpolation { interval },
            ..bench_config()
        };
        let compressor = GldCompressor::train(config, &dataset.variables, bench_budget());
        let block = dataset.variables[0]
            .frames
            .slice_axis(0, 0, config.block_frames);

        // Left panel: per-frame error without post-processing.
        let compressed = compressor.compress_block(&block, None);
        let recon = compressor.decompress_block(&compressed);
        let partition = config.partition();
        let mut generated_mean = 0.0f32;
        for t in 0..config.block_frames {
            let err = nrmse(
                &block.slice_axis(0, t, t + 1),
                &recon.slice_axis(0, t, t + 1),
            );
            let is_key = partition.conditioning.contains(&t);
            per_frame_csv.push_str(&format!("{interval},{t},{err},{}\n", u8::from(is_key)));
            if !is_key {
                generated_mean += err / partition.num_generated() as f32;
            }
        }

        // Right panel: ratio/NRMSE curve with the error-bound sweep.
        let mut best_ratio_at_1e2 = 0.0f64;
        for &target in &NRMSE_TARGETS {
            let (_, ratio, err) = compressor.compress_variable(&dataset.variables[0], Some(target));
            curve_csv.push_str(&format!("{interval},{ratio},{err}\n"));
            if target == 1e-2 {
                best_ratio_at_1e2 = ratio;
            }
        }
        println!(
            "interval {interval}: keyframes {}/{}  mean generated-frame NRMSE {generated_mean:.3e}  ratio @ NRMSE 1e-2 = {best_ratio_at_1e2:.1}x",
            partition.num_conditioning(),
            config.block_frames
        );
        summary.push((interval, generated_mean, best_ratio_at_1e2));
    }

    // Paper finding: smaller intervals give lower error; interval 3 is the
    // best accuracy/ratio trade-off.
    let best_err = summary
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let best_tradeoff = summary
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .unwrap();
    println!("\nlowest per-frame error: interval {}", best_err.0);
    println!("best ratio at NRMSE 1e-2: interval {}", best_tradeoff.0);
    write_result("fig4_interval_per_frame.csv", &per_frame_csv);
    write_result("fig4_interval_curve.csv", &curve_csv);
}
