//! PCA-based error-bound guarantee (paper §3.5).
//!
//! After the learned pipeline produces a reconstruction `x_R`, the residual
//! `r = x − x_R` is chopped into fixed-size vectors, projected onto an
//! orthonormal basis `U`, and per vector the largest-magnitude coefficients
//! are quantised and stored until the remaining ℓ2 error drops below the
//! requested threshold τ.  The corrected reconstruction is
//! `x_G = x_R + U_s·c_q` (Eq. 9–10) and satisfies `‖x − x_G‖₂ ≤ τ` by
//! construction.
//!
//! The basis is either fitted with PCA on residual samples collected during
//! training ([`PcaErrorBound::fit`]) and shared between encoder and decoder,
//! or — when no residual samples are available — an orthonormal DCT basis is
//! used.  In both cases the basis is *not* stored per block, matching the
//! shared-basis setup of the papers this module follows; only the selected
//! coefficients, their indices and per-chunk counts are entropy-coded into
//! the auxiliary stream whose size enters the compression ratio (Eq. 11).

use gld_entropy::{HistogramModel, RangeDecoder, RangeEncoder};
use gld_tensor::eig::principal_components;
use gld_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Configuration of the error-bound module.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ErrorBoundConfig {
    /// Dimensionality of the residual vectors (a flattened patch).
    pub chunk: usize,
}

impl Default for ErrorBoundConfig {
    fn default() -> Self {
        ErrorBoundConfig { chunk: 16 }
    }
}

/// Diagnostics of one error-bound application.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ErrorBoundOutcome {
    /// Requested ℓ2 bound τ.
    pub tau: f32,
    /// Achieved ℓ2 error after correction.
    pub achieved: f32,
    /// Number of coefficients stored across all chunks.
    pub coefficients: usize,
    /// Size of the auxiliary (correction) stream in bytes.
    pub aux_bytes: usize,
}

/// The PCA/DCT residual-correction module.
#[derive(Clone, Debug)]
pub struct PcaErrorBound {
    config: ErrorBoundConfig,
    /// Orthonormal basis, columns are basis vectors (`[chunk, chunk]`).
    basis: Tensor,
}

impl PcaErrorBound {
    /// Creates the module with the deterministic orthonormal DCT basis.
    pub fn new(config: ErrorBoundConfig) -> Self {
        PcaErrorBound {
            basis: dct_basis(config.chunk),
            config,
        }
    }

    /// Fits the basis with PCA on residual sample vectors (rows of length
    /// `config.chunk`), as done offline in the papers this follows.  Falls
    /// back to the DCT basis when too few samples are provided.
    pub fn fit(config: ErrorBoundConfig, residual_samples: &Tensor) -> Self {
        assert_eq!(residual_samples.rank(), 2, "samples must be [n, chunk]");
        assert_eq!(
            residual_samples.dim(1),
            config.chunk,
            "sample width mismatch"
        );
        if residual_samples.dim(0) < config.chunk {
            return Self::new(config);
        }
        let (components, _) = principal_components(residual_samples, config.chunk);
        PcaErrorBound {
            config,
            basis: orthonormalize(&components),
        }
    }

    /// The module configuration.
    pub fn config(&self) -> &ErrorBoundConfig {
        &self.config
    }

    /// Applies the correction so that `‖original − corrected‖₂ ≤ tau`.
    /// Returns the corrected tensor, the serialised auxiliary stream and
    /// diagnostics.
    pub fn apply(
        &self,
        original: &Tensor,
        reconstruction: &Tensor,
        tau: f32,
    ) -> (Tensor, Vec<u8>, ErrorBoundOutcome) {
        assert_eq!(original.shape(), reconstruction.shape(), "shape mismatch");
        assert!(tau > 0.0, "tau must be positive");
        let d = self.config.chunk;
        let n_values = original.numel();
        let n_chunks = n_values.div_ceil(d);
        let residual = original.sub(reconstruction);

        // Per-chunk ℓ2² budget and quantisation step chosen so that the
        // quantisation error alone can never exhaust the budget.
        let per_chunk_budget = tau * tau / n_chunks as f32;
        let step = (tau / ((n_chunks * d) as f32).sqrt()).max(1e-30);

        let res_data = residual.data();
        let basis = self.basis.data(); // [d, d], column-major access via index
        let mut counts: Vec<u16> = Vec::with_capacity(n_chunks);
        let mut indices: Vec<i32> = Vec::new();
        let mut codes: Vec<i32> = Vec::new();
        let mut corrected = reconstruction.clone();
        let corr_data = corrected.data_mut();
        let mut total_sq_err = 0.0f64;

        for chunk_idx in 0..n_chunks {
            let start = chunk_idx * d;
            let end = (start + d).min(n_values);
            let len = end - start;
            // Residual vector (zero-padded to d).
            let mut r = vec![0.0f32; d];
            r[..len].copy_from_slice(&res_data[start..end]);
            // Coefficients c = Uᵀ r.
            let mut coeffs = vec![0.0f32; d];
            for (j, c) in coeffs.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for i in 0..d {
                    acc += basis[i * d + j] * r[i];
                }
                *c = acc;
            }
            // Greedy selection by magnitude until the chunk error fits.
            let mut order: Vec<usize> = (0..d).collect();
            order.sort_by(|&a, &b| coeffs[b].abs().partial_cmp(&coeffs[a].abs()).unwrap());
            let mut correction = vec![0.0f32; d];
            let mut err: f32 = r.iter().map(|v| v * v).sum();
            let mut kept = 0u16;
            for &j in &order {
                if err <= per_chunk_budget {
                    break;
                }
                // Clamp so the stored i32 code and the applied correction
                // always agree, even for pathological residual magnitudes.
                let q = (coeffs[j] / step).round().clamp(-2.0e9, 2.0e9);
                if q == 0.0 {
                    // A zero code cannot reduce the error; with the chosen
                    // step the remaining error is already within budget.
                    continue;
                }
                let cq = q * step;
                for i in 0..d {
                    correction[i] += basis[i * d + j] * cq;
                }
                err = (0..d).map(|i| (r[i] - correction[i]).powi(2)).sum();
                indices.push(j as i32);
                codes.push(q as i32);
                kept += 1;
            }
            counts.push(kept);
            total_sq_err += err as f64;
            for i in 0..len {
                corr_data[start + i] += correction[i];
            }
        }

        // Serialise the auxiliary stream: header + entropy-coded counts,
        // indices and codes.
        let mut aux = Vec::new();
        aux.extend_from_slice(&tau.to_le_bytes());
        aux.extend_from_slice(&(n_chunks as u32).to_le_bytes());
        let count_syms: Vec<i32> = counts.iter().map(|&c| c as i32).collect();
        let count_model = HistogramModel::fit(&count_syms);
        let index_model = HistogramModel::fit(if indices.is_empty() { &[0] } else { &indices });
        let code_model = HistogramModel::fit(if codes.is_empty() { &[0] } else { &codes });
        for model in [&count_model, &index_model, &code_model] {
            let b = model.to_bytes();
            aux.extend_from_slice(&(b.len() as u32).to_le_bytes());
            aux.extend_from_slice(&b);
        }
        let mut enc = RangeEncoder::new();
        count_model.encode(&mut enc, &count_syms);
        if !indices.is_empty() {
            index_model.encode(&mut enc, &indices);
            code_model.encode(&mut enc, &codes);
        }
        let stream = enc.finish();
        aux.extend_from_slice(&(stream.len() as u32).to_le_bytes());
        aux.extend_from_slice(&stream);

        let outcome = ErrorBoundOutcome {
            tau,
            achieved: (total_sq_err as f32).sqrt(),
            coefficients: codes.len(),
            aux_bytes: aux.len(),
        };
        (corrected, aux, outcome)
    }

    /// Rebuilds the corrected reconstruction from the auxiliary stream (the
    /// decoder-side counterpart of [`PcaErrorBound::apply`]).
    pub fn apply_from_aux(&self, reconstruction: &Tensor, aux: &[u8]) -> Tensor {
        let d = self.config.chunk;
        let tau = f32::from_le_bytes(aux[0..4].try_into().unwrap());
        let n_chunks = u32::from_le_bytes(aux[4..8].try_into().unwrap()) as usize;
        let step = (tau / ((n_chunks * d) as f32).sqrt()).max(1e-30);
        let mut off = 8;
        let mut models = Vec::with_capacity(3);
        for _ in 0..3 {
            let len = u32::from_le_bytes(aux[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            let (m, used) = HistogramModel::from_bytes(&aux[off..off + len]);
            assert_eq!(used, len);
            models.push(m);
            off += len;
        }
        let stream_len = u32::from_le_bytes(aux[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        let stream = &aux[off..off + stream_len];
        let mut dec = RangeDecoder::new(stream);
        let counts = models[0].decode(&mut dec, n_chunks);
        let total_coeffs: usize = counts.iter().map(|&c| c as usize).sum();
        let (indices, codes) = if total_coeffs > 0 {
            (
                models[1].decode(&mut dec, total_coeffs),
                models[2].decode(&mut dec, total_coeffs),
            )
        } else {
            (Vec::new(), Vec::new())
        };

        let basis = self.basis.data();
        let mut corrected = reconstruction.clone();
        let n_values = corrected.numel();
        let corr_data = corrected.data_mut();
        let mut cursor = 0usize;
        for (chunk_idx, &count) in counts.iter().enumerate() {
            let start = chunk_idx * d;
            let len = (start + d).min(n_values) - start;
            for _ in 0..count {
                let j = indices[cursor] as usize;
                let cq = codes[cursor] as f32 * step;
                for (i, item) in corr_data[start..start + len].iter_mut().enumerate() {
                    *item += basis[i * d + j] * cq;
                }
                cursor += 1;
            }
        }
        corrected
    }

    /// Converts an NRMSE target into the ℓ2 threshold τ used by
    /// [`PcaErrorBound::apply`] (inverts paper Eq. 12).
    pub fn tau_for_nrmse(original: &Tensor, nrmse_target: f32) -> f32 {
        let range = (original.max() - original.min()).max(1e-30);
        nrmse_target * range * (original.numel() as f32).sqrt()
    }
}

/// Orthonormal DCT-II basis of size `d × d` with basis vectors as columns.
fn dct_basis(d: usize) -> Tensor {
    let mut m = Tensor::zeros(&[d, d]);
    for k in 0..d {
        let scale = if k == 0 {
            (1.0 / d as f32).sqrt()
        } else {
            (2.0 / d as f32).sqrt()
        };
        for n in 0..d {
            let v = scale * ((std::f32::consts::PI / d as f32) * (n as f32 + 0.5) * k as f32).cos();
            m.set(&[n, k], v);
        }
    }
    m
}

/// Gram–Schmidt re-orthonormalisation (defensive: the Jacobi eigenvectors are
/// already orthonormal up to numerical noise).
fn orthonormalize(basis: &Tensor) -> Tensor {
    let d = basis.dim(0);
    let k = basis.dim(1);
    let mut cols: Vec<Vec<f32>> = (0..k)
        .map(|j| (0..d).map(|i| basis.at(&[i, j])).collect())
        .collect();
    for j in 0..k {
        let (done, rest) = cols.split_at_mut(j);
        let col = &mut rest[0];
        for prev in done.iter() {
            let dot: f32 = col.iter().zip(prev.iter()).map(|(a, b)| a * b).sum();
            for (v, p) in col.iter_mut().zip(prev.iter()) {
                *v -= dot * p;
            }
        }
        let norm: f32 = col.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
        for v in col.iter_mut() {
            *v /= norm;
        }
    }
    let mut out = Tensor::zeros(&[d, k]);
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            out.set(&[i, j], v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gld_tensor::TensorRng;
    use proptest::prelude::*;

    #[test]
    fn dct_basis_is_orthonormal() {
        let b = dct_basis(16);
        let gram = b.transpose2().matmul(&b);
        let err = gram.sub(&Tensor::eye(16)).abs().max();
        assert!(err < 1e-4, "orthonormality error {err}");
    }

    #[test]
    fn bound_is_met_and_correction_is_decodable() {
        let mut rng = TensorRng::new(1);
        let original = rng.randn(&[4, 16, 16]).scale(3.0);
        let reconstruction = original.add(&rng.randn(&[4, 16, 16]).scale(0.4));
        let eb = PcaErrorBound::new(ErrorBoundConfig::default());
        let before = original.sub(&reconstruction).l2_norm();
        let tau = before * 0.25;
        let (corrected, aux, outcome) = eb.apply(&original, &reconstruction, tau);
        let after = original.sub(&corrected).l2_norm();
        assert!(
            after <= tau * 1.001,
            "corrected error {after} exceeds tau {tau}"
        );
        assert!((outcome.achieved - after).abs() < tau * 0.05);
        assert!(outcome.coefficients > 0);
        // Decoder-side reconstruction from the aux stream matches.
        let decoded = eb.apply_from_aux(&reconstruction, &aux);
        let diff = decoded.sub(&corrected).abs().max();
        assert!(diff < 1e-4, "aux decode mismatch {diff}");
    }

    #[test]
    fn already_good_reconstruction_needs_no_coefficients() {
        let mut rng = TensorRng::new(2);
        let original = rng.randn(&[2, 8, 8]);
        let reconstruction = original.add(&rng.randn(&[2, 8, 8]).scale(1e-4));
        let eb = PcaErrorBound::new(ErrorBoundConfig::default());
        let tau = 1.0;
        let (_, aux, outcome) = eb.apply(&original, &reconstruction, tau);
        assert_eq!(outcome.coefficients, 0);
        // Aux stream still decodable and tiny.
        assert!(aux.len() < 200);
    }

    #[test]
    fn tighter_bound_costs_more_bytes() {
        let mut rng = TensorRng::new(3);
        let original = rng.randn(&[4, 16, 16]);
        let reconstruction = original.add(&rng.randn(&[4, 16, 16]).scale(0.3));
        let eb = PcaErrorBound::new(ErrorBoundConfig::default());
        let before = original.sub(&reconstruction).l2_norm();
        let (_, aux_loose, _) = eb.apply(&original, &reconstruction, before * 0.5);
        let (_, aux_tight, _) = eb.apply(&original, &reconstruction, before * 0.05);
        assert!(aux_tight.len() > aux_loose.len());
    }

    #[test]
    fn fitted_pca_basis_beats_dct_on_structured_residuals() {
        // Residuals that live in a low-dimensional subspace: a PCA basis
        // fitted on samples needs fewer coefficients than the generic DCT.
        let mut rng = TensorRng::new(4);
        let d = 16;
        let dir1 = rng.randn(&[d]);
        let dir2 = rng.randn(&[d]);
        let make_residual = |rng: &mut TensorRng, rows: usize| -> Tensor {
            let mut data = Vec::with_capacity(rows * d);
            for _ in 0..rows {
                let a = rng.sample_normal();
                let b = rng.sample_normal();
                for i in 0..d {
                    data.push(a * dir1.data()[i] + b * dir2.data()[i]);
                }
            }
            Tensor::from_vec(data, &[rows, d])
        };
        let train = make_residual(&mut rng, 64);
        let cfg = ErrorBoundConfig { chunk: d };
        let fitted = PcaErrorBound::fit(cfg, &train);
        let generic = PcaErrorBound::new(cfg);

        let test_res = make_residual(&mut rng, 16).reshape(&[16 * d]);
        let original = rng.randn(&[16 * d]);
        let reconstruction = original.sub(&test_res);
        let tau = test_res.l2_norm() * 0.1;
        let (_, _, out_fitted) = fitted.apply(&original, &reconstruction, tau);
        let (_, _, out_generic) = generic.apply(&original, &reconstruction, tau);
        assert!(
            out_fitted.coefficients <= out_generic.coefficients,
            "fitted {} vs generic {}",
            out_fitted.coefficients,
            out_generic.coefficients
        );
    }

    #[test]
    fn tau_for_nrmse_inverts_the_metric() {
        let mut rng = TensorRng::new(5);
        let original = rng.randn(&[4, 16, 16]).scale(7.0);
        let reconstruction = original.add(&rng.randn(&[4, 16, 16]).scale(1.0));
        let target = 1e-3;
        let tau = PcaErrorBound::tau_for_nrmse(&original, target);
        let eb = PcaErrorBound::new(ErrorBoundConfig::default());
        let (corrected, _, _) = eb.apply(&original, &reconstruction, tau);
        let achieved = gld_tensor::stats::nrmse(&original, &corrected);
        assert!(
            achieved <= target * 1.001,
            "NRMSE {achieved} exceeds target {target}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_bound_always_met(seed in 0u64..300, noise in 0.05f32..1.0, frac in 0.05f32..0.9) {
            let mut rng = TensorRng::new(seed);
            let original = rng.randn(&[2, 8, 8]).scale(2.0);
            let reconstruction = original.add(&rng.randn(&[2, 8, 8]).scale(noise));
            let eb = PcaErrorBound::new(ErrorBoundConfig { chunk: 16 });
            let before = original.sub(&reconstruction).l2_norm();
            let tau = (before * frac).max(1e-4);
            let (corrected, _, _) = eb.apply(&original, &reconstruction, tau);
            prop_assert!(original.sub(&corrected).l2_norm() <= tau * 1.001);
        }
    }
}
