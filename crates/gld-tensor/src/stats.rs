//! Error metrics shared by every compressor and benchmark: MSE, PSNR, NRMSE
//! (the paper's primary reconstruction-quality metric, Eq. 12) and norms.

use crate::tensor::Tensor;

impl Tensor {
    /// Euclidean (ℓ2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        (self
            .data()
            .iter()
            .map(|&x| x as f64 * x as f64)
            .sum::<f64>())
        .sqrt() as f32
    }

    /// Maximum absolute value (ℓ∞ norm).
    pub fn linf_norm(&self) -> f32 {
        self.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

/// Mean squared error between two equally-shaped tensors.
pub fn mse(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "mse shape mismatch");
    let n = a.numel().max(1) as f64;
    (a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / n) as f32
}

/// Root mean squared error.
pub fn rmse(a: &Tensor, b: &Tensor) -> f32 {
    mse(a, b).sqrt()
}

/// Normalised root mean squared error (paper Eq. 12):
/// `sqrt(||a - b||² / N) / (max(a) - min(a))`.
///
/// The normalisation uses the range of the *original* data `a`.  Returns 0
/// for a constant original signal that is reconstructed exactly, and treats a
/// degenerate range as 1 to avoid division by zero.
pub fn nrmse(original: &Tensor, reconstruction: &Tensor) -> f32 {
    let range = original.max() - original.min();
    let denom = if range > 0.0 { range } else { 1.0 };
    rmse(original, reconstruction) / denom
}

/// Peak signal-to-noise ratio in dB, using the range of the original data as
/// the peak value.
pub fn psnr(original: &Tensor, reconstruction: &Tensor) -> f32 {
    let range = original.max() - original.min();
    let peak = if range > 0.0 { range } else { 1.0 };
    let m = mse(original, reconstruction);
    if m == 0.0 {
        return f32::INFINITY;
    }
    10.0 * ((peak as f64 * peak as f64) / m as f64).log10() as f32
}

/// Maximum absolute point-wise error.
pub fn max_abs_error(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "max_abs_error shape mismatch");
    a.data()
        .iter()
        .zip(b.data().iter())
        .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_tensors_have_zero_error() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(nrmse(&a, &a), 0.0);
        assert_eq!(max_abs_error(&a, &a), 0.0);
        assert!(psnr(&a, &a).is_infinite());
    }

    #[test]
    fn mse_known_value() {
        let a = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((mse(&a, &b) - 12.5).abs() < 1e-6);
        assert!((rmse(&a, &b) - 12.5f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn nrmse_is_scale_invariant() {
        // Scaling both signal and error by the same factor leaves NRMSE fixed.
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[4]);
        let b = Tensor::from_vec(vec![0.1, 1.1, 1.9, 3.0], &[4]);
        let a_big = a.scale(1e9);
        let b_big = b.scale(1e9);
        assert!((nrmse(&a, &b) - nrmse(&a_big, &b_big)).abs() < 1e-6);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a = Tensor::linspace(0.0, 1.0, 100);
        let small = a.add_scalar(1e-3);
        let large = a.add_scalar(1e-1);
        assert!(psnr(&a, &small) > psnr(&a, &large));
    }

    #[test]
    fn norms() {
        let a = Tensor::from_vec(vec![3.0, -4.0], &[2]);
        assert!((a.l2_norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.linf_norm(), 4.0);
    }

    #[test]
    fn max_abs_error_picks_worst_point() {
        let a = Tensor::from_vec(vec![0.0, 0.0, 0.0], &[3]);
        let b = Tensor::from_vec(vec![0.1, -0.5, 0.2], &[3]);
        assert!((max_abs_error(&a, &b) - 0.5).abs() < 1e-6);
    }
}
