//! Workspace facade crate: re-exports the public API of every GLD crate so
//! the root-level `tests/` and `examples/` build against one dependency
//! graph.  See `README.md` for the crate map.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gld_baselines;
pub use gld_core;
pub use gld_datasets;
pub use gld_diffusion;
pub use gld_entropy;
pub use gld_service;
pub use gld_tensor;
pub use gld_vae;
