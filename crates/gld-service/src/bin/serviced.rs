//! `gld-serviced` — the standalone sharded compression server.
//!
//! Serves the rule-based codec registry (SZ3-like, ZFP-like) until a wire
//! `Shutdown` request arrives, then drains in-flight work, joins every
//! thread it spawned, and — on Linux — verifies via `/proc/self/status`
//! that nothing leaked, exiting non-zero otherwise (CI's boot-the-binary
//! job keys off the exit codes).
//!
//! ```text
//! gld-serviced [--addr HOST:PORT] [--shards N] [--window N]
//!              [--queue-depth N] [--round-robin]
//!              [--max-outstanding N] [--rate-limit CAPACITY:PER_SEC]
//!              [--idle-timeout SECS] [--op-deadline MS]
//!              [--metrics-addr HOST:PORT] [--flight-dump PATH]
//! ```
//!
//! All diagnostics go through the `gld-obs` structured logger (stderr,
//! `GLD_LOG=level[,json]`).  `--metrics-addr` serves Prometheus text
//! exposition over HTTP/1.0; `--flight-dump PATH` routes flight-recorder
//! dumps (panic, fatal I/O) to a file instead of stderr.

use gld_service::{CodecRegistry, RateLimit, Server, ServiceConfig, ShardPolicy};

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let value = args
        .next()
        .unwrap_or_else(|| panic!("{flag} requires a value"));
    value
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: cannot parse {value:?}"))
}

fn main() {
    gld_obs::flight::install_panic_hook();
    let mut config = ServiceConfig {
        addr: "127.0.0.1:7171".into(),
        ..ServiceConfig::default()
    };
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse_flag(&mut args, "--addr"),
            "--metrics-addr" => config.metrics_addr = Some(parse_flag(&mut args, "--metrics-addr")),
            "--flight-dump" => {
                gld_obs::flight::set_dump_path(Some(parse_flag(&mut args, "--flight-dump")))
            }
            "--shards" => config.shards = parse_flag(&mut args, "--shards"),
            "--window" => config.shard_window = parse_flag(&mut args, "--window"),
            "--queue-depth" => config.stream.queue_depth = parse_flag(&mut args, "--queue-depth"),
            "--round-robin" => config.policy = ShardPolicy::RoundRobin,
            "--max-outstanding" => {
                config.max_outstanding = parse_flag(&mut args, "--max-outstanding")
            }
            "--rate-limit" => {
                let spec: String = parse_flag(&mut args, "--rate-limit");
                let (capacity, per_sec) = spec
                    .split_once(':')
                    .expect("--rate-limit takes CAPACITY:PER_SEC");
                config.rate_limit = Some(RateLimit {
                    capacity: capacity.parse().expect("--rate-limit capacity"),
                    refill_per_sec: per_sec.parse().expect("--rate-limit per-second refill"),
                });
            }
            "--idle-timeout" => {
                config.idle_timeout = Some(std::time::Duration::from_secs(parse_flag(
                    &mut args,
                    "--idle-timeout",
                )));
            }
            "--op-deadline" => {
                config.op_deadline = Some(std::time::Duration::from_millis(parse_flag(
                    &mut args,
                    "--op-deadline",
                )));
            }
            other => panic!("unknown flag {other:?} (see the crate docs)"),
        }
    }

    let shards = config.shards.max(1);
    let window = config.shard_window.max(1);
    #[cfg(target_os = "linux")]
    let fds_at_boot = open_fds();
    // Resolve (and report) the kernel backend before accepting work so an
    // invalid `GLD_KERNEL_BACKEND` fails at boot, not mid-request.
    gld_obs::log_info!(
        "serviced",
        backend = gld_kernels::active(),
        cpu = gld_kernels::cpu_features();
        "kernel backend resolved"
    );
    let server = Server::start(config, CodecRegistry::rule_based()).expect("bind and start server");
    // The readiness line CI and scripts wait for (stdout, not the logger:
    // it is machine-scraped and must survive GLD_LOG=off).
    println!(
        "gld-serviced listening on {} ({shards} shards, window {window})",
        server.local_addr()
    );
    if let Some(metrics_addr) = server.metrics_addr() {
        println!("gld-serviced metrics on http://{metrics_addr}/metrics");
    }

    let metrics = server.wait();
    gld_obs::log_info!(
        "serviced",
        requests = metrics.completed(),
        blocks = metrics.blocks(),
        connections = metrics.connections_opened,
        rejected = metrics.requests_rejected;
        "drained"
    );
    for (index, shard) in metrics.shards.iter().enumerate() {
        gld_obs::log_info!(
            "serviced",
            shard = index,
            completed = shard.completed,
            peak_in_flight = shard.peak_in_flight,
            peak_resident_blocks = shard.peak_resident_blocks;
            "shard drained"
        );
    }
    assert!(
        metrics.shards.iter().all(|s| s.in_flight == 0),
        "drained server still reports in-flight work"
    );

    #[cfg(target_os = "linux")]
    {
        // Everything the server spawned is joined; only the main thread and
        // the process-lifetime rayon pool may remain.
        let expected = 1 + rayon::current_num_threads();
        let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
        let threads: usize = status
            .lines()
            .find_map(|line| line.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if threads > expected {
            gld_obs::log_error!(
                "serviced",
                live = threads,
                expected = expected;
                "thread leak after shutdown"
            );
            std::process::exit(1);
        }
        gld_obs::log_info!(
            "serviced",
            live = threads,
            expected = expected;
            "no leaked threads"
        );

        // Every connection, the listener, the epoll instance and the waker
        // are closed by the drain; the fd table must be back to its boot
        // size (the probe itself opens one fd in both measurements).
        let fds_after = open_fds();
        if fds_after > fds_at_boot {
            gld_obs::log_error!(
                "serviced",
                open = fds_after,
                at_boot = fds_at_boot;
                "fd leak after shutdown"
            );
            std::process::exit(1);
        }
        gld_obs::log_info!(
            "serviced",
            open = fds_after,
            at_boot = fds_at_boot;
            "no leaked fds"
        );
    }
}

/// Counts `/proc/self/fd` entries (includes the readdir fd itself — equally
/// in both the boot and post-drain measurements, so the comparison holds).
#[cfg(target_os = "linux")]
fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|entries| entries.count())
        .unwrap_or(0)
}
