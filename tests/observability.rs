//! End-to-end coverage for the observability layer: the `--metrics-addr`
//! Prometheus endpoint cross-checked against the wire `Status` summaries,
//! the per-stage latency decomposition of the op histograms, the
//! backward-compatible summaries negotiation, and the flight recorder.
//!
//! The latency histograms live in the **process-global** registry, so every
//! test here works with cumulative totals (both sides of each comparison
//! read the same histograms) and the tests serialize on one mutex so no
//! GLDS request is mid-flight while a test reads the registry.

use gld_core::CodecId;
use gld_datasets::{generate, DatasetKind, FieldSpec};
use gld_service::protocol::{self, FrameHeader, Op, StatusResponse};
use gld_service::{CodecRegistry, Server, ServiceClient, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes the tests in this binary: the registry is process-global, and
/// the stage-sum identity below only holds when no request is in flight.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn start_server(config: ServiceConfig) -> Server {
    Server::start(
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            metrics_addr: Some("127.0.0.1:0".into()),
            ..config
        },
        CodecRegistry::rule_based(),
    )
    .expect("start server")
}

/// One HTTP/1.0 GET against the metrics endpoint, returning the exposition
/// body — the same scrape CI's smoke job performs with curl.
fn scrape(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP header/body split");
    assert!(
        head.starts_with("HTTP/1.0 200"),
        "endpoint refused the scrape: {head}"
    );
    assert!(
        head.contains("text/plain"),
        "exposition content type missing: {head}"
    );
    body.to_string()
}

#[test]
fn metrics_endpoint_cross_checks_the_wire_status_summaries() {
    let _guard = obs_lock();
    let server = start_server(ServiceConfig::default());
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("endpoint is up");

    let mut client = ServiceClient::connect(addr).expect("connect");
    client.hello(&[CodecId::SzLike]).expect("hello");
    for _ in 0..20 {
        client.ping().expect("ping");
    }
    let ds = generate(DatasetKind::E3sm, &FieldSpec::new(1, 8, 8, 8), 11);
    client
        .compress_as(CodecId::SzLike, "obs/x", &ds.variables[0], 4, None)
        .expect("compress");

    // The wire summaries and the scrape read the same cumulative
    // histograms; with no traffic between the two reads (the status
    // request itself is the only moving part, and its own response has
    // flushed by the time `status()` returns) every non-status row must
    // agree exactly.
    let status = client.status().expect("status with summaries");
    let summaries = status.summaries.expect("server echoes the summaries bit");
    assert!(!summaries.ops.is_empty(), "served ops produce summary rows");
    let body = scrape(metrics_addr);

    for row in &summaries.ops {
        let op = Op::from_u8(row.op).expect("summary rows carry valid ops");
        if op == Op::Status {
            // The in-flight status request itself lands in the histogram
            // after its summaries were built; its row lags the scrape.
            continue;
        }
        let name = match op {
            Op::Hello => "hello",
            Op::Compress => "compress",
            Op::Decompress => "decompress",
            Op::Ping => "ping",
            Op::Shutdown => "shutdown",
            Op::Status => unreachable!(),
        };
        let needle = format!("op=\"{name}\"");
        let count = protocol_scrape(&body, "glds_request_duration_ns", "_count", &[&needle])
            .unwrap_or_else(|| panic!("endpoint misses the {name} histogram"));
        assert_eq!(count as u64, row.count, "{name}: count disagrees");
        for (q, expected) in [("0.5", row.p50_ns), ("0.99", row.p99_ns)] {
            let got = protocol_scrape(
                &body,
                "glds_request_duration_ns",
                "_quantile",
                &[&needle, &format!("q=\"{q}\"")],
            )
            .unwrap_or_else(|| panic!("endpoint misses the {name} q={q} gauge"));
            assert_eq!(got as u64, expected, "{name}: q={q} disagrees");
        }
    }

    // The service families the smoke job requires are all present.
    for family in [
        "glds_request_duration_ns",
        "glds_stage_duration_ns",
        "glds_connections_active",
        "glds_connections_opened_total",
        "glds_requests_completed_total",
        "glds_requests_rejected_total",
        "glds_requests_rate_limited_total",
        "glds_deadlines_exceeded_total",
        "glds_rejected_other_total",
        "glds_shard_in_flight",
    ] {
        assert!(
            body.contains(&format!("# TYPE {family} ")),
            "family {family} missing from the exposition"
        );
    }
    // ...and the endpoint's roll-up matches the wire trailer's cause split.
    let rejected = protocol_scrape(&body, "glds_requests_rejected_total", "", &[]).unwrap();
    let rate_limited = protocol_scrape(&body, "glds_requests_rate_limited_total", "", &[]).unwrap();
    let deadlines = protocol_scrape(&body, "glds_deadlines_exceeded_total", "", &[]).unwrap();
    let other = protocol_scrape(&body, "glds_rejected_other_total", "", &[]).unwrap();
    assert_eq!(rejected, rate_limited + deadlines + other);
    assert_eq!(other as u64, summaries.rejected_other);

    drop(client);
    server.shutdown();
}

/// `gld_obs::registry::scrape_value`, re-exported under a test-local name
/// so the assertions read as "scrape the endpoint".
fn protocol_scrape(text: &str, family: &str, suffix: &str, needles: &[&str]) -> Option<f64> {
    gld_obs::registry::scrape_value(text, family, suffix, needles)
}

#[test]
fn stage_sums_decompose_the_op_totals_within_ten_percent() {
    let _guard = obs_lock();
    let server = start_server(ServiceConfig::default());
    let addr = server.local_addr();

    let ds = generate(DatasetKind::S3d, &FieldSpec::new(1, 16, 16, 16), 13);
    let mut client = ServiceClient::connect(addr).expect("connect");
    client.hello(&[CodecId::SzLike]).expect("hello");
    for i in 0..8 {
        client
            .compress_as(
                CodecId::SzLike,
                &format!("decomp/{i}"),
                &ds.variables[0],
                8,
                None,
            )
            .expect("compress");
        client.ping().expect("ping");
    }
    drop(client);
    server.shutdown();

    // Every response in this process has flushed (the servers above are
    // drained), so the per-request identity
    //   total = parse + queue_wait + execute + write
    // — enforced by construction with shared boundary timestamps — must
    // survive summation over all requests.  10% is the acceptance bound;
    // the sums in practice agree to the nanosecond.
    let ops = [
        "hello",
        "compress",
        "decompress",
        "ping",
        "shutdown",
        "status",
    ];
    let total: u64 = ops
        .iter()
        .map(|op| {
            gld_obs::registry::histogram("glds_request_duration_ns", &[("op", op)])
                .snapshot()
                .sum
        })
        .sum();
    let stages = ["parse", "queue_wait", "execute", "write"];
    let stage_sum: u64 = stages
        .iter()
        .map(|stage| {
            gld_obs::registry::histogram("glds_stage_duration_ns", &[("stage", stage)])
                .snapshot()
                .sum
        })
        .sum();
    assert!(total > 0, "the run recorded op totals");
    let diff = total.abs_diff(stage_sum) as f64;
    assert!(
        diff <= 0.10 * total as f64,
        "stage sums {stage_sum} ns fail to decompose op totals {total} ns within 10%"
    );
}

#[test]
fn legacy_status_requests_still_get_the_bare_body() {
    let _guard = obs_lock();
    let server = start_server(ServiceConfig::default());
    let addr = server.local_addr();

    // A hand-rolled status request WITHOUT the summaries bit: the response
    // must not echo the bit and must decode to a trailer-free body —
    // byte-compatible with pre-summaries clients.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let header = FrameHeader::request(Op::Status, 0, 7, 0);
    protocol::write_frame(&mut stream, &header, &[]).expect("write status frame");
    stream.flush().expect("flush");
    let (response, body) = protocol::read_frame(&mut stream, protocol::MAX_BODY_LEN)
        .expect("read frame")
        .expect("response frame");
    assert_eq!(response.request_id, 7);
    assert_eq!(
        response.ext & protocol::EXT_STATUS_SUMMARIES,
        0,
        "server must not volunteer the summaries bit"
    );
    let decoded = StatusResponse::decode_body(&body).expect("legacy body decodes");
    assert!(decoded.summaries.is_none(), "no trailer without the bit");

    // The negotiating client on the same server gets the trailer.
    let mut client = ServiceClient::connect(addr).expect("connect");
    let status = client.status().expect("status");
    assert!(status.summaries.is_some(), "negotiated trailer present");

    drop(stream);
    drop(client);
    server.shutdown();
}

#[test]
fn flight_recorder_dumps_spans_and_logs_as_json_lines() {
    let _guard = obs_lock();
    let dir = std::env::temp_dir().join(format!("gld-obs-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("flight.jsonl");
    let path_str = path.to_string_lossy().into_owned();

    gld_obs::flight::set_dump_path(Some(path_str.clone()));
    {
        let _span = gld_obs::span::SpanGuard::enter("flight.test", 1, 2);
    }
    gld_obs::log::emit(
        gld_obs::Level::Info,
        "flight-test",
        vec![("conn", "1".to_string())],
        "about to dump".to_string(),
    );
    let rendered = gld_obs::flight::dump("observability-test");
    gld_obs::flight::set_dump_path(None);

    let on_disk = std::fs::read_to_string(&path).expect("dump file written");
    assert_eq!(on_disk, rendered, "file carries the rendered record");
    let mut lines = on_disk.lines();
    let header = lines.next().expect("header line");
    assert!(header.contains("\"kind\":\"flight\""), "{header}");
    assert!(header.contains("observability-test"), "{header}");
    assert!(
        on_disk
            .lines()
            .any(|l| l.contains("\"kind\":\"span\"") && l.contains("flight.test")),
        "span feed present"
    );
    assert!(
        on_disk
            .lines()
            .any(|l| l.contains("\"kind\":\"log\"") && l.contains("about to dump")),
        "log feed present"
    );
    // Every line is an object: JSON-lines, parseable one at a time.
    for line in on_disk.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
