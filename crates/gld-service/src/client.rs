//! Small blocking client for the `GLDS` protocol — what the integration
//! tests, the `gld-service-check` binary, the `service_throughput` bench and
//! the root example speak through.
//!
//! One [`ServiceClient`] owns one connection and issues one request at a
//! time (the server processes a connection's requests in order anyway);
//! concurrency comes from opening more clients, exactly like the tests do.

use crate::protocol::{
    self, decode_blocks_body, DecompressRequest, FrameHeader, HelloRequest, HelloResponse, Op,
    ProtocolError, Status, EXT_CONTAINER_STAGE, EXT_SHARED_PROFILES,
};
use gld_core::{CodecId, ErrorTarget};
use gld_datasets::Variable;
use gld_tensor::Tensor;
use std::fmt;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// The server's bytes violated the protocol.
    Protocol(ProtocolError),
    /// The server answered with a non-`Ok` status and a diagnostic.
    Server {
        /// The response status.
        status: Status,
        /// The server's UTF-8 diagnostic.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::Server { status, message } => {
                write!(f, "server refused ({status:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Server info returned by [`ServiceClient::hello`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// The negotiated codec — the session default for later requests.
    pub codec: CodecId,
    /// Whether the session negotiated the container v3 per-frame stage:
    /// `true` means compress responses arrive as staged v3 containers,
    /// `false` (an old or opted-out peer on either side) means stage-free
    /// v2 streams.
    pub stage: bool,
    /// Whether the session negotiated container v4 shared entropy-model
    /// profiles: `true` means compress responses arrive as v4 containers
    /// (one coding profile fitted per variable, every frame coded warm
    /// against it), and takes precedence over `stage`.  `false` downgrades
    /// to whatever `stage` says.
    pub profiles: bool,
    /// Number of shards the server routes across.
    pub shards: u32,
    /// Per-shard bounded in-flight request window.
    pub shard_window: u32,
    /// Streaming-executor queue depth per compress call.
    pub queue_depth: u32,
}

/// A blocking `GLDS` connection.
pub struct ServiceClient {
    stream: TcpStream,
    /// The connected peer, kept so `hello` can reconnect for its
    /// legacy-server downgrade retry.
    addr: SocketAddr,
    next_id: u64,
    negotiated: Option<CodecId>,
    stage: bool,
    profiles: bool,
}

impl ServiceClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let addr = stream.peer_addr()?;
        Ok(ServiceClient {
            stream,
            addr,
            next_id: 1,
            negotiated: None,
            stage: false,
            profiles: false,
        })
    }

    /// The codec negotiated by the last [`ServiceClient::hello`], if any.
    pub fn negotiated_codec(&self) -> Option<CodecId> {
        self.negotiated
    }

    /// Whether the session negotiated staged (container v3) compress
    /// responses in the last [`ServiceClient::hello`].
    pub fn stage_enabled(&self) -> bool {
        self.stage
    }

    /// Whether the session negotiated shared-profile (container v4)
    /// compress responses in the last [`ServiceClient::hello`].
    pub fn profiles_enabled(&self) -> bool {
        self.profiles
    }

    /// Negotiates a codec (client preference order) and fetches server
    /// info, advertising container-stage and shared-profile support.  The
    /// chosen codec becomes the session default for
    /// [`ServiceClient::compress`] calls made without an explicit codec.
    ///
    /// Servers predating the stage treat the advertisement byte as a
    /// framing violation and close the connection; when that happens the
    /// client reconnects once and retries the `Hello` without the bits, so
    /// negotiation degrades to a stage-free session instead of failing.
    /// (A server that knows the stage but not the profiles simply echoes
    /// the profile bit clear — no retry needed.)
    pub fn hello(&mut self, preferences: &[CodecId]) -> Result<ServerInfo, ClientError> {
        match self.hello_with_options(preferences, true, true) {
            Ok(info) => Ok(info),
            // A pre-stage server rejects the non-zero reserved byte with a
            // well-formed error frame that echoes request id 0 and a
            // Malformed status, then hard-closes — surfacing here as a
            // protocol violation (wrong request-id echo) or a Malformed
            // refusal.  Re-dial and speak exactly like a pre-stage client.
            // Transient I/O failures and statuses a stage-aware server can
            // answer (NoCommonCodec, ...) are NOT downgraded: the bit was
            // not the problem, and a silent stage-free session would cost
            // every later response body — the caller retries those.
            Err(
                ClientError::Protocol(_)
                | ClientError::Server {
                    status: Status::Malformed,
                    ..
                },
            ) => {
                let stream = TcpStream::connect(self.addr)?;
                let _ = stream.set_nodelay(true);
                self.stream = stream;
                self.hello_with_options(preferences, false, false)
            }
            Err(other) => Err(other),
        }
    }

    /// [`ServiceClient::hello`] with the feature advertisements explicit
    /// (and no downgrade retry): `request_stage: false` speaks exactly like
    /// a pre-stage client, so compress responses come back as stage-free v2
    /// containers; `request_profiles: false` speaks like a pre-profile
    /// client and caps the session at v3.
    pub fn hello_with_options(
        &mut self,
        preferences: &[CodecId],
        request_stage: bool,
        request_profiles: bool,
    ) -> Result<ServerInfo, ClientError> {
        let request = HelloRequest {
            proposals: preferences.iter().map(|&c| c as u8).collect(),
        };
        let mut ext = 0u8;
        if request_stage {
            ext |= EXT_CONTAINER_STAGE;
        }
        if request_profiles {
            ext |= EXT_SHARED_PROFILES;
        }
        let (header, body) = self.request_ext(Op::Hello, 0, ext, &request.encode_body())?;
        let codec = CodecId::from_u8(header.codec)
            .map_err(|_| ClientError::Protocol(ProtocolError::UnknownCodec(header.codec)))?;
        let info = HelloResponse::decode_body(&body)?;
        self.negotiated = Some(codec);
        // A feature holds only when the server echoed its bit (an old
        // server leaves the bit — or the whole byte — zero).
        self.stage = request_stage && header.ext & EXT_CONTAINER_STAGE != 0;
        self.profiles = request_profiles && header.ext & EXT_SHARED_PROFILES != 0;
        Ok(ServerInfo {
            codec,
            stage: self.stage,
            profiles: self.profiles,
            shards: info.shards,
            shard_window: info.shard_window,
            queue_depth: info.queue_depth,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(Op::Ping, 0, &[])?;
        Ok(())
    }

    /// Compresses `variable` on the server with the session codec from the
    /// last [`ServiceClient::hello`], returning the encoded `GLDC`
    /// container — byte-identical to `Codec::compress_variable(...).0.encode()`
    /// run locally.
    pub fn compress(
        &mut self,
        key: &str,
        variable: &Variable,
        block_frames: u32,
        target: Option<ErrorTarget>,
    ) -> Result<Vec<u8>, ClientError> {
        // Codec byte 0 = session default; the server rejects it if no Hello
        // happened, which maps to the same error as an unknown codec here.
        self.compress_impl(0, key, variable, block_frames, target)
    }

    /// [`ServiceClient::compress`] with an explicit codec, independent of
    /// any negotiation.
    pub fn compress_as(
        &mut self,
        codec: CodecId,
        key: &str,
        variable: &Variable,
        block_frames: u32,
        target: Option<ErrorTarget>,
    ) -> Result<Vec<u8>, ClientError> {
        self.compress_impl(codec as u8, key, variable, block_frames, target)
    }

    fn compress_impl(
        &mut self,
        codec_byte: u8,
        key: &str,
        variable: &Variable,
        block_frames: u32,
        target: Option<ErrorTarget>,
    ) -> Result<Vec<u8>, ClientError> {
        let frames = &variable.frames;
        assert_eq!(frames.rank(), 3, "variable frames must be [T, H, W]");
        // Serialise straight from the variable's buffer: no intermediate
        // owned `Vec<f32>` copy of a possibly huge frame stack.
        let body = protocol::encode_compress_body(
            key,
            block_frames,
            target,
            [
                frames.dim(0) as u32,
                frames.dim(1) as u32,
                frames.dim(2) as u32,
            ],
            frames.data(),
        );
        let (_, body) = self.request(Op::Compress, codec_byte, &body)?;
        Ok(body)
    }

    /// Decompresses an encoded `GLDC` container on the server, returning
    /// the block tensors in temporal order.  `key` must be the variable's
    /// key so the request lands on the same shard as its compress.
    pub fn decompress(&mut self, key: &str, container: &[u8]) -> Result<Vec<Tensor>, ClientError> {
        let request = DecompressRequest {
            key: key.to_string(),
            container: container.to_vec(),
        };
        let (_, body) = self.request(Op::Decompress, 0, &request.encode_body())?;
        Ok(decode_blocks_body(&body)?)
    }

    /// Asks the server to drain in-flight work and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.request(Op::Shutdown, 0, &[])?;
        Ok(())
    }

    /// One request/response round trip: write the frame, read the reply,
    /// check the id echo, and turn non-`Ok` statuses into
    /// [`ClientError::Server`].
    fn request(
        &mut self,
        op: Op,
        codec_byte: u8,
        body: &[u8],
    ) -> Result<(FrameHeader, Vec<u8>), ClientError> {
        self.request_ext(op, codec_byte, 0, body)
    }

    fn request_ext(
        &mut self,
        op: Op,
        codec_byte: u8,
        ext: u8,
        body: &[u8],
    ) -> Result<(FrameHeader, Vec<u8>), ClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        let header =
            FrameHeader::request(op, codec_byte, request_id, body.len() as u64).with_ext(ext);
        protocol::write_frame(&mut self.stream, &header, body)?;
        self.stream.flush()?;
        let (response, response_body) =
            protocol::read_frame(&mut self.stream, protocol::MAX_BODY_LEN)??;
        if response.request_id != request_id {
            return Err(ClientError::Protocol(ProtocolError::Malformed(
                "response echoes the wrong request id",
            )));
        }
        if response.status != Status::Ok {
            return Err(ClientError::Server {
                status: response.status,
                message: String::from_utf8_lossy(&response_body).into_owned(),
            });
        }
        Ok((response, response_body))
    }
}
