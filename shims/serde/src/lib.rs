//! Minimal serde facade for offline builds: marker traits plus the no-op
//! derive macros from `serde_derive`.  See `shims/README.md`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
