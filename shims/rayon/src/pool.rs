//! The persistent work-stealing thread pool behind every terminal op.
//!
//! One global pool is lazily initialised on first use (honouring
//! `RAYON_NUM_THREADS`, exactly like real rayon's global pool) and lives for
//! the rest of the process, so parallel terminal ops dispatch onto long-lived
//! workers instead of spawning and joining OS threads per call.
//!
//! Architecture:
//!
//! * **Per-worker deques.**  Each worker owns a deque of [`Batch`] handles.
//!   Submitting a batch pushes a handle onto every worker's deque and wakes
//!   the sleepers; a worker pops from the *front* of its own deque and, when
//!   that is empty, steals from the *back* of a sibling's.  A batch handle is
//!   only a participation ticket — the jobs themselves live in the batch's
//!   own queue, so any number of workers can chip away at one batch and a
//!   drained handle is skipped in O(1).
//! * **Chunked task splitting.**  Callers split work into more pieces than
//!   workers (see `split_for_drive` in the crate root): a batch is a bag of
//!   independent jobs, and whichever worker is free next takes the next job,
//!   so skewed per-piece costs even out instead of idling workers.
//! * **Park / unpark.**  A worker that finds every deque empty parks on a
//!   condvar; submissions bump a generation counter under the same lock
//!   before notifying, which makes the lost-wakeup race impossible (the
//!   worker re-checks the generation before sleeping).
//! * **Caller helping.**  [`scope`] runs its closure on the calling thread,
//!   then the caller drains the batch's remaining jobs itself before
//!   blocking.  Two consequences: a terminal op completes even if every pool
//!   worker is busy (no starvation deadlock — the submitter can always
//!   finish its own batch), and nested parallelism from inside a worker job
//!   is safe for the same reason.
//!
//! # Safety
//!
//! This module contains the crate's only `unsafe` code: the lifetime erasure
//! that lets borrowing closures run on the persistent workers
//! (`erase_lifetime`).  Soundness rests on one invariant, upheld by
//! [`scope`]: **a scope never returns — not even by panic — before every job
//! of its batch has finished running.**  The borrowed environment therefore
//! strictly outlives every use.  This is the same contract real rayon's
//! scopes implement.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of work queued on the pool.  `'static` because the pool workers
/// outlive any caller; borrowing closures are admitted through the scoped
/// lifetime erasure in [`scope`], which guarantees completion-before-return.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A submitted collection of jobs plus its completion latch.
struct Batch {
    /// Jobs not yet started.  Workers and the submitting thread both pop
    /// from the front.
    jobs: Mutex<VecDeque<Job>>,
    /// Jobs not yet finished (started or not).
    pending: AtomicUsize,
    /// Wakes the submitter when `pending` reaches zero.
    done: Condvar,
    /// Paired with [`Batch::done`]; holds the first captured panic payload.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn new(jobs: VecDeque<Job>) -> Arc<Self> {
        Arc::new(Batch {
            pending: AtomicUsize::new(jobs.len()),
            jobs: Mutex::new(jobs),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// Pops and runs one job; returns false when the batch queue is empty.
    /// Panics are captured into the batch, never propagated here (a pool
    /// worker must survive arbitrary job panics).
    fn run_one(&self) -> bool {
        let job = self
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front();
        let Some(job) = job else { return false };
        let result = catch_unwind(AssertUnwindSafe(job));
        if let Err(payload) = result {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(payload);
            drop(slot);
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last job out: wake the submitter.  The lock orders this with
            // the submitter's re-check of `pending` under the same mutex.
            let _guard = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            self.done.notify_all();
        }
        true
    }

    /// Blocks until every job has finished, then propagates the first panic.
    fn wait(&self) {
        let mut guard = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        while self.pending.load(Ordering::Acquire) != 0 {
            guard = self.done.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(payload) = guard.take() {
            drop(guard);
            resume_unwind(payload);
        }
    }
}

/// State shared by the workers and submitters.
struct Shared {
    /// One deque of batch handles per worker.
    deques: Vec<Mutex<VecDeque<Arc<Batch>>>>,
    /// Wakeup generation; bumped under [`Shared::sleep_lock`] on submit.
    sleep_lock: Mutex<u64>,
    /// Parked workers wait here.
    wake: Condvar,
}

impl Shared {
    /// Pops a batch for worker `who`: own deque from the front, then steal
    /// from siblings' backs.
    fn find_batch(&self, who: usize) -> Option<Arc<Batch>> {
        if let Some(batch) = self.deques[who]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(batch);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (who + offset) % n;
            if let Some(batch) = self.deques[victim]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
            {
                return Some(batch);
            }
        }
        None
    }
}

/// The persistent pool: worker threads plus the shared deques.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: usize,
}

impl ThreadPool {
    fn with_threads(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep_lock: Mutex::new(0),
            wake: Condvar::new(),
        });
        for who in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("gld-rayon-{who}"))
                .spawn(move || worker_loop(&shared, who))
                .expect("failed to spawn pool worker");
        }
        ThreadPool { shared, workers }
    }

    /// Number of worker threads (excluding helping submitters).
    pub fn num_threads(&self) -> usize {
        self.workers
    }

    /// Queues a batch on every worker deque and wakes the sleepers.
    fn submit(&self, batch: &Arc<Batch>) {
        for deque in &self.shared.deques {
            deque
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(Arc::clone(batch));
        }
        let mut generation = self
            .shared
            .sleep_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *generation = generation.wrapping_add(1);
        drop(generation);
        self.shared.wake.notify_all();
    }
}

fn worker_loop(shared: &Shared, who: usize) {
    loop {
        if let Some(batch) = shared.find_batch(who) {
            while batch.run_one() {}
            continue;
        }
        // Park: snapshot the generation, re-scan once under no lock, then
        // sleep unless a submission raced in (generation moved).
        let generation = *shared.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(batch) = shared.find_batch(who) {
            while batch.run_one() {}
            continue;
        }
        let mut guard = shared.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        while *guard == generation {
            guard = shared.wake.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Worker-thread count override, read once at pool initialisation — the same
/// env var real rayon's global pool honours.
fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The lazily-initialised global pool.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::with_threads(configured_threads()))
}

/// Number of threads in the global pool (rayon-compatible entry point).
pub fn current_num_threads() -> usize {
    global().num_threads()
}

/// Erases a borrowing job's lifetime so it can sit in the pool's queues.
///
/// # Safety
///
/// The caller must guarantee the job has *finished running* (or been dropped)
/// before `'env` ends.  [`scope`] upholds this by draining and then waiting
/// on the batch before returning, on both the normal and the panic path.
unsafe fn erase_lifetime<'env>(job: Box<dyn FnOnce() + Send + 'env>) -> Job {
    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job)
}

/// A scope handle for spawning borrowing jobs onto the persistent pool.
///
/// Unlike the fork-join [`join_all`], spawned jobs **start immediately** —
/// they run on the pool concurrently with the rest of the scope closure.
/// This is what lets the streaming executor run its collector loop on the
/// calling thread while worker jobs are already compressing blocks.
pub struct Scope<'scope, 'env: 'scope> {
    batches: std::cell::RefCell<Vec<Arc<Batch>>>,
    marker: std::marker::PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Submits `job` to the pool right away.  Jobs may borrow from `'env`.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, job: F) {
        // SAFETY: `scope` drains and waits on every spawned batch before
        // returning (on the panic path too), so the `'env` borrows inside
        // `job` outlive its execution.
        let job = unsafe { erase_lifetime(Box::new(job)) };
        let batch = Batch::new(VecDeque::from([job]));
        global().submit(&batch);
        self.batches.borrow_mut().push(batch);
    }
}

/// Runs `f` on the calling thread while its spawned jobs execute on the
/// persistent pool, and returns `f`'s result once **all** jobs finished.
///
/// After `f` returns, the calling thread helps drain any not-yet-started
/// jobs itself, so the scope completes even when every pool worker is
/// occupied (this is what makes nested parallelism deadlock-free).  Panics —
/// from `f` or from any job — are re-thrown here, after the completion wait.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    let scope_handle = Scope {
        batches: std::cell::RefCell::new(Vec::new()),
        marker: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope_handle)));
    // The completion wait is unconditional — it is what makes the lifetime
    // erasure in `spawn` sound, so it must run even when `f` panicked.
    let batches = scope_handle.batches.into_inner();
    for batch in &batches {
        while batch.run_one() {}
    }
    let mut first_panic = None;
    for batch in &batches {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| batch.wait())) {
            first_panic.get_or_insert(payload);
        }
    }
    match result {
        Ok(value) => match first_panic {
            None => value,
            Some(payload) => resume_unwind(payload),
        },
        Err(payload) => resume_unwind(payload),
    }
}

/// Fork-join entry used by the terminal ops: runs every closure in `jobs`
/// (potentially borrowing) to completion across the pool, helping from the
/// calling thread.
pub fn join_all<'env>(jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
    if jobs.is_empty() {
        return;
    }
    // SAFETY: the batch is drained and waited on before this function
    // returns (including the panic path inside `Batch::wait`), so every
    // borrow in `jobs` outlives its use.
    let erased: VecDeque<Job> = jobs
        .into_iter()
        .map(|job| unsafe { erase_lifetime(job) })
        .collect();
    let batch = Batch::new(erased);
    global().submit(&batch);
    while batch.run_one() {}
    batch.wait();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_all_runs_every_job_once() {
        let counter = AtomicU64::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|i| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(i + 1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        join_all(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), (1..=64).sum::<u64>());
    }

    #[test]
    fn scope_spawn_borrows_locals() {
        let data: Vec<u64> = (0..100).collect();
        let total = AtomicU64::new(0);
        scope(|s| {
            for chunk in data.chunks(7) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn nested_scopes_complete() {
        let total = AtomicU64::new(0);
        scope(|outer| {
            for _ in 0..8 {
                let total = &total;
                outer.spawn(move || {
                    scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panics_propagate_after_completion() {
        let finished = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                let finished = &finished;
                s.spawn(|| panic!("boom"));
                for _ in 0..16 {
                    s.spawn(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "job panic must surface at the scope");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            16,
            "all sibling jobs still ran to completion"
        );
    }

    #[test]
    fn pool_size_is_stable() {
        assert_eq!(current_num_threads(), current_num_threads());
        assert!(current_num_threads() >= 1);
    }
}
