//! Synthetic S3D-like combustion fields.
//!
//! The S3D benchmark in the paper is a homogeneous-charge compression
//! ignition DNS: smooth temperature/pressure backgrounds punctured by sharp
//! reaction fronts that nucleate at hot spots and propagate outward, with 58
//! chemical species tracking the fronts at different offsets and widths.
//!
//! This generator integrates a Gray–Scott reaction–diffusion system (a
//! standard stand-in for front-propagation chemistry) from randomly seeded
//! ignition kernels and derives the species channels as nonlinear functions
//! of the two reactants, which reproduces the compressor-relevant structure:
//! sharp moving interfaces over smooth backgrounds, strongly correlated
//! across channels and time.

use crate::field::{DatasetKind, FieldSpec, ScientificDataset, Variable};
use gld_tensor::{Tensor, TensorRng};

/// Gray–Scott parameters in the "spots and fronts" regime.
const DIFFUSION_U: f32 = 0.16;
const DIFFUSION_V: f32 = 0.08;
const FEED: f32 = 0.035;
const KILL: f32 = 0.060;
/// Integration sub-steps between stored frames; more sub-steps = smoother
/// temporal evolution (the regime where keyframe interpolation shines).
const SUBSTEPS: usize = 12;

/// Generates an S3D-like dataset.
pub fn generate(spec: &FieldSpec, rng: &mut TensorRng) -> ScientificDataset {
    let (h, w) = (spec.height, spec.width);
    // Reactant fields: u ~ fuel, v ~ radical/product marker.
    let mut u = vec![1.0f32; h * w];
    let mut v = vec![0.0f32; h * w];
    // Seed a few ignition kernels.
    let kernels = 2 + rng.sample_index(3);
    for _ in 0..kernels {
        let cy = rng.sample_index(h);
        let cx = rng.sample_index(w);
        let radius = 1.0 + rng.sample_uniform(0.0, 2.0);
        for y in 0..h {
            for x in 0..w {
                let dy = wrap_dist(y as i32, cy as i32, h as i32) as f32;
                let dx = wrap_dist(x as i32, cx as i32, w as i32) as f32;
                if (dx * dx + dy * dy).sqrt() < radius + 1.5 {
                    u[y * w + x] = 0.50;
                    v[y * w + x] = 0.25 + rng.sample_uniform(0.0, 0.05);
                }
            }
        }
    }

    // Burn in so fronts form before we start recording.
    for _ in 0..40 {
        gray_scott_step(&mut u, &mut v, h, w);
    }

    let mut u_frames = Vec::with_capacity(spec.timesteps * h * w);
    let mut v_frames = Vec::with_capacity(spec.timesteps * h * w);
    for _ in 0..spec.timesteps {
        u_frames.extend_from_slice(&u);
        v_frames.extend_from_slice(&v);
        for _ in 0..SUBSTEPS {
            gray_scott_step(&mut u, &mut v, h, w);
        }
    }
    let u_t = Tensor::from_vec(u_frames, &[spec.timesteps, h, w]);
    let v_t = Tensor::from_vec(v_frames, &[spec.timesteps, h, w]);

    // Derive the requested number of "species" channels.  Each species is a
    // distinct nonlinear function of (u, v) with its own physical scale,
    // mimicking the 58-species reduced mechanism: all species track the same
    // fronts but with different amplitudes, offsets and sharpness.
    let mut variables = Vec::with_capacity(spec.variables);
    for vi in 0..spec.variables {
        let sharpness = 1.0 + (vi % 5) as f32;
        let scale = 10f32.powi((vi % 4) as i32 - 2); // 1e-2 .. 1e1
        let mix = (vi as f32 * 0.37).sin() * 0.5 + 0.5;
        let frames = u_t
            .scale(1.0 - mix)
            .add(&v_t.scale(mix))
            .map(move |x| scale * (sharpness * x).tanh());
        let name = if vi == 0 {
            "temperature_proxy".to_string()
        } else {
            format!("species_{vi:02}")
        };
        variables.push(Variable::new(name, frames));
    }
    ScientificDataset {
        kind: DatasetKind::S3d,
        spec: *spec,
        variables,
    }
}

/// Periodic (wrapped) distance between two grid indices.
fn wrap_dist(a: i32, b: i32, n: i32) -> i32 {
    let d = (a - b).abs();
    d.min(n - d)
}

/// One explicit-Euler Gray–Scott update with periodic boundaries.
fn gray_scott_step(u: &mut [f32], v: &mut [f32], h: usize, w: usize) {
    let lap = |f: &[f32], y: usize, x: usize| -> f32 {
        let ym = (y + h - 1) % h;
        let yp = (y + 1) % h;
        let xm = (x + w - 1) % w;
        let xp = (x + 1) % w;
        f[ym * w + x] + f[yp * w + x] + f[y * w + xm] + f[y * w + xp] - 4.0 * f[y * w + x]
    };
    let mut nu = vec![0.0f32; u.len()];
    let mut nv = vec![0.0f32; v.len()];
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let uvv = u[i] * v[i] * v[i];
            nu[i] = u[i] + DIFFUSION_U * lap(u, y, x) - uvv + FEED * (1.0 - u[i]);
            nv[i] = v[i] + DIFFUSION_V * lap(v, y, x) + uvv - (FEED + KILL) * v[i];
            nu[i] = nu[i].clamp(0.0, 1.5);
            nv[i] = nv[i].clamp(0.0, 1.0);
        }
    }
    u.copy_from_slice(&nu);
    v.copy_from_slice(&nv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gld_tensor::stats::nrmse;

    fn small() -> ScientificDataset {
        // Seed chosen so the randomly placed ignition kernels of the two
        // species overlap enough for the correlation property below to be
        // comfortably inside its threshold.
        let mut rng = TensorRng::new(7);
        generate(&FieldSpec::tiny(), &mut rng)
    }

    #[test]
    fn shape_and_determinism() {
        let mut r1 = TensorRng::new(5);
        let mut r2 = TensorRng::new(5);
        let a = generate(&FieldSpec::tiny(), &mut r1);
        let b = generate(&FieldSpec::tiny(), &mut r2);
        assert_eq!(a.variables.len(), 2);
        assert_eq!(a.variables[0].frames.dims(), &[16, 16, 16]);
        assert_eq!(a.variables[0].frames, b.variables[0].frames);
    }

    #[test]
    fn fronts_evolve_over_time() {
        // The reaction must actually move: late frames differ from early
        // frames, but consecutive frames stay close.
        let ds = small();
        let frames = &ds.variables[0].frames;
        let f0 = frames.slice_axis(0, 0, 1);
        let f1 = frames.slice_axis(0, 1, 2);
        let flast = frames.slice_axis(0, 15, 16);
        let near = nrmse(&f0, &f1);
        let far = nrmse(&f0, &flast);
        assert!(far > 2.0 * near, "near {near} far {far}");
        assert!(far > 1e-3, "field is static");
    }

    #[test]
    fn values_stay_in_physical_bounds() {
        let ds = small();
        for v in &ds.variables {
            assert!(v.frames.data().iter().all(|x| x.is_finite()));
        }
        // The raw reactant-derived channels are bounded by the tanh mapping
        // times their per-species scale (≤ 10).
        let (lo, hi) = ds.range();
        assert!(lo >= -10.5 && hi <= 10.5, "range ({lo}, {hi})");
    }

    #[test]
    fn species_are_correlated_but_not_identical() {
        let ds = small();
        let a = &ds.variables[0].frames;
        let b = &ds.variables[1].frames;
        assert_ne!(a, b);
        // Normalised correlation between species must be high (same fronts).
        let am = a.mean();
        let bm = b.mean();
        let ac = a.add_scalar(-am);
        let bc = b.add_scalar(-bm);
        let corr = ac.dot(&bc) / (ac.l2_norm() * bc.l2_norm()).max(1e-12);
        assert!(corr.abs() > 0.5, "species correlation {corr}");
    }

    #[test]
    fn fields_contain_sharp_fronts() {
        // Unlike the climate generator, combustion frames must contain steep
        // local gradients (front interfaces).
        let ds = small();
        let f = ds.variables[0].frame(8);
        let (h, w) = (f.dim(0), f.dim(1));
        let range = f.max() - f.min();
        let mut max_step = 0.0f32;
        for y in 0..h {
            for x in 1..w {
                max_step = max_step.max((f.at(&[y, x]) - f.at(&[y, x - 1])).abs());
            }
        }
        assert!(
            max_step > 0.1 * range,
            "no sharp front found: max step {max_step} vs range {range}"
        );
    }
}
